//! Periodic benefit/size filter selection (§6.2).

use crate::generalize::Generalizer;
use crate::greedy::{candidate_key, greedy_pick, Scored};
use fbdr_ldap::SearchRequest;
use fbdr_obs::{event, span, Obs};
use fbdr_replica::FilterReplica;
use fbdr_resync::{SyncError, SyncMaster, SyncTraffic};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Configuration for the periodic selector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectorConfig {
    /// Queries between revolutions (the paper's `R`, e.g. 6000 or 10000).
    pub revolution_interval: u64,
    /// Replica entry budget: selected filters' total estimated size must
    /// stay within it.
    pub entry_budget: usize,
    /// Upper bound on candidates tracked (cheapest-benefit candidates are
    /// dropped beyond it).
    pub max_candidates: usize,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        SelectorConfig { revolution_interval: 6000, entry_budget: 5000, max_candidates: 4096 }
    }
}

#[derive(Debug)]
struct Candidate {
    request: SearchRequest,
    hits: u64,
    /// Lazily computed entry count at the master.
    size: Option<usize>,
}

/// Outcome of one revolution.
#[derive(Debug, Clone, Default)]
pub struct RevolutionReport {
    /// Filters newly installed into the replica.
    pub installed: Vec<SearchRequest>,
    /// Filters evicted from the replica.
    pub removed: Vec<SearchRequest>,
    /// Traffic spent loading the new filters' content — component (ii) of
    /// the filter replica's update traffic (§7.3).
    pub traffic: SyncTraffic,
}

/// The paper's filter selection scheme: maintain hit statistics for
/// candidate (generalized) filters and periodically update the replica's
/// stored set, choosing candidates by benefit-to-size ratio.
///
/// *Benefit* is the number of hits for a candidate since the last update;
/// *size* is the estimated number of entries matching the filter. This is
/// the paper's "simple means of approximating the expensive revolutions
/// of \[12\]".
#[derive(Debug)]
pub struct FilterSelector {
    config: SelectorConfig,
    generalizers: Vec<Box<dyn Generalizer + Send>>,
    candidates: HashMap<String, Candidate>,
    /// Keys of filters this selector installed; revolutions only ever
    /// evict managed filters, never statically configured ones.
    managed: HashSet<String>,
    queries_seen: u64,
    revolutions: u64,
    /// Observability handle; [`Obs::off`] unless attached via
    /// [`FilterSelector::with_obs`].
    obs: Obs,
}

impl FilterSelector {
    /// Creates a selector with the given generalization rules.
    pub fn new(config: SelectorConfig, generalizers: Vec<Box<dyn Generalizer + Send>>) -> Self {
        FilterSelector {
            config,
            generalizers,
            candidates: HashMap::new(),
            managed: HashSet::new(),
            queries_seen: 0,
            revolutions: 0,
            obs: Obs::off(),
        }
    }

    /// Attaches observability: each revolution is timed into the
    /// `fbdr_selection_revolve_ns` histogram, increments
    /// `fbdr_selection_{revolutions,installed,evicted}_total`, and emits
    /// `selection.{revolution,promote,evict}` trace events.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The observability handle this selector records through.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Queries observed so far.
    pub fn queries_seen(&self) -> u64 {
        self.queries_seen
    }

    /// Revolutions performed so far.
    pub fn revolutions(&self) -> u64 {
        self.revolutions
    }

    /// Number of candidates currently tracked.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Observes one user query: generalizes it and credits a hit to every
    /// candidate that would have answered it.
    pub fn observe(&mut self, query: &SearchRequest) {
        self.queries_seen += 1;
        for g in &self.generalizers {
            for cand in g.generalize(query) {
                let key = candidate_key(&cand);
                let entry = self
                    .candidates
                    .entry(key)
                    .or_insert(Candidate { request: cand, hits: 0, size: None });
                entry.hits += 1;
            }
        }
        if self.candidates.len() > self.config.max_candidates {
            self.prune();
        }
    }

    /// True when a revolution is due (every `revolution_interval` queries).
    pub fn revolution_due(&self) -> bool {
        self.queries_seen > 0 && self.queries_seen.is_multiple_of(self.config.revolution_interval)
    }

    /// Performs a revolution if one is due: selects the best
    /// benefit-to-size candidates within the entry budget and swaps the
    /// replica's stored filter set accordingly.
    ///
    /// # Errors
    ///
    /// Propagates [`SyncError`] from installing filters at the master.
    pub fn maybe_revolve(
        &mut self,
        master: &mut SyncMaster,
        replica: &mut FilterReplica,
    ) -> Result<Option<RevolutionReport>, SyncError> {
        if !self.revolution_due() {
            return Ok(None);
        }
        self.revolve(master, replica).map(Some)
    }

    /// Unconditionally performs a revolution.
    ///
    /// # Errors
    ///
    /// Propagates [`SyncError`] from installing filters at the master.
    pub fn revolve(
        &mut self,
        master: &mut SyncMaster,
        replica: &mut FilterReplica,
    ) -> Result<RevolutionReport, SyncError> {
        let _span = span!(self.obs, "selection", "revolve");
        self.revolutions += 1;
        let scored = self.candidates.values().filter(|c| c.hits > 0).count();
        let selected = self.select(master.dit());
        let selected_keys: Vec<String> = selected.iter().map(candidate_key).collect();

        let mut report = RevolutionReport::default();
        // Evict *managed* filters that fell out of the selection; filters
        // installed statically by the operator are never touched.
        let current: Vec<SearchRequest> = replica.filters().map(|(r, _)| r.clone()).collect();
        for r in &current {
            let key = candidate_key(r);
            if self.managed.contains(&key) && !selected_keys.contains(&key) {
                replica.remove_filter(master, r);
                self.managed.remove(&key);
                event!(self.obs, "selection", "evict", filter = key.as_str());
                report.removed.push(r.clone());
            }
        }
        // Install newly selected filters.
        let current_keys: Vec<String> = current.iter().map(candidate_key).collect();
        for r in selected {
            let key = candidate_key(&r);
            if !current_keys.contains(&key) {
                let t = replica.install_filter(master, r.clone())?;
                event!(
                    self.obs,
                    "selection",
                    "promote",
                    filter = key.as_str(),
                    load_entries = t.full_entries,
                );
                report.traffic.absorb(&t);
                report.installed.push(r);
            }
            self.managed.insert(key);
        }
        // Benefit is "hits since the last update": reset counters.
        for c in self.candidates.values_mut() {
            c.hits = 0;
            c.size = None; // re-estimate next time; the directory changes
        }
        if self.obs.is_active() {
            let reg = self.obs.registry();
            reg.counter("fbdr_selection_revolutions_total").inc();
            reg.counter("fbdr_selection_installed_total").add(report.installed.len() as u64);
            reg.counter("fbdr_selection_evicted_total").add(report.removed.len() as u64);
        }
        event!(
            self.obs,
            "selection",
            "revolution",
            revolution = self.revolutions,
            candidates = scored,
            installed = report.installed.len(),
            evicted = report.removed.len(),
        );
        Ok(report)
    }

    /// Greedy benefit/size selection within the entry budget (also usable
    /// standalone for static, train-then-freeze configurations — Figure 4).
    ///
    /// The ranking, tie-breaks and containment skip live in the shared
    /// greedy core (the crate-private `greedy` module) so that the
    /// budgeted online selector provably computes the same target set
    /// from the same frozen statistics.
    pub fn select(&mut self, master: &fbdr_dit::DitStore) -> Vec<SearchRequest> {
        let budget = self.config.entry_budget;
        let mut scored: Vec<Scored> = Vec::new();
        for c in self.candidates.values_mut() {
            if c.hits == 0 {
                continue;
            }
            let size = *c.size.get_or_insert_with(|| master.count_matching(c.request.filter()));
            if size == 0 || size > budget {
                continue;
            }
            scored.push(Scored {
                key: candidate_key(&c.request),
                request: c.request.clone(),
                ratio: c.hits as f64 / size as f64,
                size,
            });
        }
        greedy_pick(scored, budget).into_iter().map(|s| s.request).collect()
    }

    /// All candidates with at least one hit, ranked by benefit/size ratio
    /// (best first), with their hit counts and size estimates. Used by the
    /// "hit ratio vs number of stored filters" sweeps (Figures 8–9), which
    /// take the top *k* regardless of an entry budget.
    pub fn ranked_candidates(&mut self, master: &fbdr_dit::DitStore) -> Vec<(SearchRequest, u64, usize)> {
        let mut out: Vec<(SearchRequest, u64, usize)> = Vec::new();
        for c in self.candidates.values_mut() {
            if c.hits == 0 {
                continue;
            }
            let size = *c.size.get_or_insert_with(|| master.count_matching(c.request.filter()));
            if size == 0 {
                continue;
            }
            out.push((c.request.clone(), c.hits, size));
        }
        out.sort_by(|a, b| {
            let ra = a.1 as f64 / a.2 as f64;
            let rb = b.1 as f64 / b.2 as f64;
            rb.partial_cmp(&ra)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.to_string().cmp(&b.0.to_string()))
        });
        out
    }

    fn prune(&mut self) {
        let mut hits: Vec<u64> = self.candidates.values().map(|c| c.hits).collect();
        hits.sort_unstable();
        let cutoff = hits[hits.len() / 4];
        self.candidates.retain(|_, c| c.hits > cutoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generalize::ValuePrefix;
    use fbdr_ldap::{Entry, Filter};

    fn master() -> SyncMaster {
        let mut m = SyncMaster::new();
        m.dit_mut().add_suffix("o=xyz".parse().unwrap());
        m.dit_mut().add(Entry::new("o=xyz".parse().unwrap())).unwrap();
        // Serial numbers: cluster 0456xx (popular, 10 entries) and
        // 12xxxx (unpopular, 10 entries).
        for i in 0..10 {
            m.dit_mut()
                .add(
                    Entry::new(format!("cn=a{i},o=xyz").parse().unwrap())
                        .with("objectclass", "person")
                        .with("serialNumber", &format!("04560{i}")),
                )
                .unwrap();
            m.dit_mut()
                .add(
                    Entry::new(format!("cn=b{i},o=xyz").parse().unwrap())
                        .with("objectclass", "person")
                        .with("serialNumber", &format!("12000{i}")),
                )
                .unwrap();
        }
        m
    }

    fn query(sn: &str) -> SearchRequest {
        SearchRequest::from_root(Filter::parse(&format!("(serialNumber={sn})")).unwrap())
    }

    fn selector(interval: u64, budget: usize) -> FilterSelector {
        FilterSelector::new(
            SelectorConfig {
                revolution_interval: interval,
                entry_budget: budget,
                max_candidates: 100,
            },
            vec![Box::new(ValuePrefix::new("serialNumber", vec![4]))],
        )
    }

    #[test]
    fn observe_accumulates_candidate_hits() {
        let mut s = selector(100, 100);
        for i in 0..5 {
            s.observe(&query(&format!("04560{i}")));
        }
        s.observe(&query("120001"));
        assert_eq!(s.candidate_count(), 2);
        assert_eq!(s.queries_seen(), 6);
    }

    #[test]
    fn select_prefers_benefit_per_size() {
        let m = master();
        let mut s = selector(100, 10);
        // 0456* gets 5 hits, 1200* gets 1: both size 10, budget 10 → only
        // the popular one fits.
        for i in 0..5 {
            s.observe(&query(&format!("04560{i}")));
        }
        s.observe(&query("120001"));
        let picked = s.select(m.dit());
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].filter().to_string(), "(serialNumber=0456*)");
    }

    #[test]
    fn select_respects_budget() {
        let m = master();
        let mut s = selector(100, 20);
        for i in 0..5 {
            s.observe(&query(&format!("04560{i}")));
        }
        s.observe(&query("120001"));
        // Budget 20 fits both clusters.
        assert_eq!(s.select(m.dit()).len(), 2);
        // Budget 5 fits neither (each cluster has 10 entries).
        let mut small = selector(100, 5);
        small.observe(&query("045601"));
        assert!(small.select(m.dit()).is_empty());
    }

    #[test]
    fn revolution_installs_and_evicts() {
        let mut m = master();
        let mut replica = FilterReplica::new(0);
        let mut s = selector(3, 10);

        for i in 0..3 {
            s.observe(&query(&format!("04560{i}")));
        }
        assert!(s.revolution_due());
        let report = s.maybe_revolve(&mut m, &mut replica).unwrap().expect("due");
        assert_eq!(report.installed.len(), 1);
        assert_eq!(report.traffic.full_entries, 10);
        assert_eq!(replica.filter_count(), 1);
        assert!(replica.try_answer(&query("045607")).is_some());

        // Access pattern shifts to the 1200xx cluster: next revolution
        // swaps the stored filter.
        for i in 0..3 {
            s.observe(&query(&format!("12000{i}")));
        }
        let report = s.maybe_revolve(&mut m, &mut replica).unwrap().expect("due");
        assert_eq!(report.installed.len(), 1);
        assert_eq!(report.removed.len(), 1);
        assert!(replica.try_answer(&query("120005")).is_some());
        assert!(replica.try_answer(&query("045607")).is_none());
        assert_eq!(s.revolutions(), 2);
    }

    #[test]
    fn no_revolution_between_intervals() {
        let mut m = master();
        let mut replica = FilterReplica::new(0);
        let mut s = selector(10, 10);
        s.observe(&query("045601"));
        assert!(!s.revolution_due());
        assert!(s.maybe_revolve(&mut m, &mut replica).unwrap().is_none());
    }

    #[test]
    fn select_skips_contained_candidates() {
        let m = master();
        let mut s = FilterSelector::new(
            SelectorConfig { revolution_interval: 1000, entry_budget: 50, max_candidates: 100 },
            vec![Box::new(ValuePrefix::new("serialNumber", vec![4, 5]))],
        );
        // Queries generate both a coarse 4-digit prefix (0456*, size 10)
        // and fine 5-digit prefixes (04560*, size 10 here as well since
        // all serials share 04560x). The fine one is contained in the
        // coarse one; only one of them should be selected.
        for i in 0..6 {
            s.observe(&query(&format!("04560{i}")));
        }
        let picked = s.select(m.dit());
        assert_eq!(picked.len(), 1, "contained duplicate selected: {picked:?}");
    }

    #[test]
    fn pruning_caps_candidates() {
        let mut s = FilterSelector::new(
            SelectorConfig { revolution_interval: 1000, entry_budget: 10, max_candidates: 8 },
            vec![Box::new(ValuePrefix::new("serialNumber", vec![4]))],
        );
        for i in 0..40 {
            s.observe(&query(&format!("{:06}", i * 137)));
        }
        assert!(s.candidate_count() <= 9, "got {}", s.candidate_count());
    }
}
