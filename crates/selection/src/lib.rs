#![warn(missing_docs)]
//! Replica content determination (§6 of the paper): generalizing user
//! queries into candidate filters and selecting which to replicate.
//!
//! * [`generalize`] — rules that map a user query to *generalized*
//!   candidate filters describing regions of semantic/spatial locality:
//!   value prefixes (`(serialNumber=0456*)`), predicate widening
//!   (`(&(div=X)(dept=*))` for "all departments of division X"), and
//!   constant regions (the whole location tree).
//! * [`FilterSelector`] — the paper's §6.2 scheme: candidates accrue *hit*
//!   statistics; every `R` queries (the *revolution interval*) the
//!   candidates with the best benefit/size ratios are installed into the
//!   replica, within an entry budget. Benefit = hits since the last
//!   revolution; size = number of entries matching the filter at the
//!   master.
//! * [`EvolutionSelector`] — the evolution/revolution baseline of
//!   Kapitskaia, Ng and Srivastava \[12\], which updates the stored set on
//!   *every* query; its filter churn shows why per-query evolutions are
//!   unsuitable for a replication scenario (§6.2).
//! * [`OnlineSelector`] — the incremental, budgeted online revolution:
//!   decayed benefits updated on `observe`, and every `step_every`
//!   queries a re-rank of only the *changed* candidates followed by at
//!   most `move_budget` promote/evict moves with hysteresis, so the
//!   stored set tracks the workload continuously without install storms.
//!   All three selectors share one greedy benefit/size core, which is
//!   what makes the online ≡ batch equivalence property checkable.

pub mod generalize;

mod evolution;
mod greedy;
mod online;
mod selector;

pub use evolution::{EvolutionReport, EvolutionSelector};
pub use online::{OnlineConfig, OnlineReport, OnlineSelector, StepReport};
pub use selector::{FilterSelector, RevolutionReport, SelectorConfig};
