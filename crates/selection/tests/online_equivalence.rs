//! Property: the budgeted online revolution with an unlimited move
//! budget, zero hysteresis, no decay and no update charge computes the
//! **same stored filter set** as the batch selector's greedy selection
//! on frozen statistics — order-insensitively, for any query stream and
//! any entry budget.
//!
//! This is the contract that makes the online selector a faithful
//! *incrementalization* of §6 rather than a different policy: every
//! knob (move budget, hysteresis, dwell, decay, update weight) only
//! *relaxes* batch behaviour, never redefines the target.

use fbdr_ldap::{Entry, Filter, SearchRequest};
use fbdr_replica::FilterReplica;
use fbdr_resync::SyncMaster;
use fbdr_selection::generalize::{Generalizer, ValuePrefix};
use fbdr_selection::{FilterSelector, OnlineConfig, OnlineSelector, SelectorConfig};
use proptest::prelude::*;
use std::collections::HashSet;

const CLUSTERS: usize = 6;
const CLUSTER_SIZE: usize = 30;

/// Six 30-entry serial clusters `(10+c)0000 ..`: a 4-digit prefix covers
/// a whole cluster, a 5-digit prefix a 10-entry sub-region — candidates
/// of different sizes that also semantically contain one another.
fn master() -> SyncMaster {
    let mut m = SyncMaster::new();
    m.dit_mut().add_suffix("o=xyz".parse().unwrap());
    m.dit_mut().add(Entry::new("o=xyz".parse().unwrap())).unwrap();
    for c in 0..CLUSTERS {
        for i in 0..CLUSTER_SIZE {
            m.dit_mut()
                .add(
                    Entry::new(format!("cn=e{c}x{i},o=xyz").parse().unwrap())
                        .with("objectclass", "person")
                        .with("serialNumber", &format!("{:02}{:04}", 10 + c, i)),
                )
                .unwrap();
        }
    }
    m
}

fn query(c: usize, i: usize) -> SearchRequest {
    SearchRequest::from_root(
        Filter::parse(&format!("(serialNumber={:02}{:04})", 10 + c, i)).unwrap(),
    )
}

fn gens() -> Vec<Box<dyn Generalizer + Send>> {
    vec![Box::new(ValuePrefix::new("serialNumber", vec![4, 5]))]
}

fn key(r: &SearchRequest) -> String {
    format!("{r}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same observations, frozen → one unbudgeted online step stores
    /// exactly the batch selection.
    #[test]
    fn unbudgeted_online_step_equals_batch_select(
        picks in prop::collection::vec((0usize..CLUSTERS, 0usize..CLUSTER_SIZE), 1..160),
        budget_tens in 1usize..13,
    ) {
        let budget = budget_tens * 10;
        let mut m = master();
        let mut batch = FilterSelector::new(
            SelectorConfig {
                revolution_interval: u64::MAX,
                entry_budget: budget,
                max_candidates: 4096,
            },
            gens(),
        );
        let mut online = OnlineSelector::new(OnlineConfig::unbudgeted(budget), gens());
        for (c, i) in &picks {
            let q = query(*c, *i);
            batch.observe(&q);
            online.observe(&q);
        }

        let batch_set: HashSet<String> = batch.select(m.dit()).iter().map(key).collect();
        let mut replica = FilterReplica::new(0);
        let step = online.step(&mut m, &mut replica).unwrap();
        let online_set: HashSet<String> = replica.filters().map(|(r, _)| key(&r)).collect();

        prop_assert_eq!(&batch_set, &online_set,
            "batch {:?} vs online {:?}", batch_set, online_set);
        // The step's work equals exactly the installs it reported.
        prop_assert_eq!(step.moves, step.promoted.len());
    }

    /// Invariants of the *budgeted* production path, under arbitrary
    /// streams, step placement and knob settings: the stored set never
    /// exceeds the entry budget, no step ever makes more than
    /// `move_budget` moves, and the selector's view of what is managed
    /// always matches what the replica actually stores.
    #[test]
    fn budgeted_steps_respect_budgets_and_stay_consistent(
        picks in prop::collection::vec((0usize..CLUSTERS, 0usize..CLUSTER_SIZE), 1..200),
        budget_tens in 1usize..13,
        move_budget in 1usize..5,
        hysteresis in 0u8..3,
        decay_pct in 70u8..101,
        step_every in 5u64..40,
    ) {
        let budget = budget_tens * 10;
        let config = OnlineConfig {
            entry_budget: budget,
            step_every,
            move_budget,
            hysteresis: f64::from(hysteresis) * 0.25,
            decay: f64::from(decay_pct) / 100.0,
            upd_weight: 0.0,
            min_dwell_steps: 1,
            pending_cap: 16,
            max_candidates: 4096,
        };
        let mut m = master();
        let mut online = OnlineSelector::new(config, gens());
        let mut replica = FilterReplica::new(0);
        for (c, i) in &picks {
            online.observe(&query(*c, *i));
            if online.step_due() {
                let step = online.step(&mut m, &mut replica).unwrap();
                prop_assert!(step.moves <= move_budget,
                    "step made {} moves, budget {}", step.moves, move_budget);
                let stored: usize = replica
                    .filters()
                    .map(|(r, _)| m.dit().count_matching(r.filter()))
                    .sum();
                prop_assert!(stored <= budget,
                    "stored {} entries, budget {}", stored, budget);
            }
        }
        prop_assert_eq!(online.managed_count(), replica.filters().count());
        prop_assert!(online.report().max_moves <= move_budget);
    }
}
