//! Update-traffic experiments: Figures 6 and 7.

use crate::setup::Params;
use fbdr_core::experiment::{
    build_context_replica, replay_filter, replay_subtree, select_static_filters,
    select_subtree_contexts, ReplayConfig, Routing,
};
use fbdr_core::Replicator;
use fbdr_resync::SyncMaster;
use fbdr_selection::generalize::{Generalizer, Identity, ValuePrefix, WidenToPresence};
use fbdr_selection::{FilterSelector, SelectorConfig};
use fbdr_workload::QueryKind;

/// One point of Figure 6: update traffic vs hit ratio for the
/// serial-number query.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Entry budget (fraction of person entries).
    pub budget_frac: f64,
    /// Filter model: achieved serial hit ratio.
    pub filter_hit: f64,
    /// Filter model: update traffic in full entries shipped.
    pub filter_entries: u64,
    /// Filter model: DN-only PDUs shipped.
    pub filter_dns: u64,
    /// Subtree model: achieved serial hit ratio.
    pub subtree_hit: f64,
    /// Subtree model: update traffic in full entries shipped.
    pub subtree_entries: u64,
    /// Subtree model: DN-only PDUs shipped.
    pub subtree_dns: u64,
}

/// Figure 6: for replicas sized to increasing hit ratios, measure the
/// synchronization traffic over a day with interleaved updates. ReSync
/// ships only changes to stored *filter content*; the subtree replica
/// ships every change inside its subtrees.
pub fn fig6(params: &Params) -> Vec<Fig6Row> {
    let dir = params.directory();
    let (day1, day2) = params.two_days(&dir);
    let updates = params.updates(&dir);
    let persons = dir.employee_count() as f64;
    let cfg = ReplayConfig { sync_every: params.sync_every, update_every: params.update_every() };
    let gens: Vec<Box<dyn Generalizer + Send>> =
        vec![Box::new(ValuePrefix::new("serialNumber", vec![5, 4, 3]))];

    let mut rows = Vec::new();
    for &frac in &params.size_fractions {
        let budget = (frac * persons) as usize;

        let filters = select_static_filters(dir.dit(), &day1, gens_clone(&gens), budget);
        let mut repl = Replicator::new(SyncMaster::with_dit(dir.dit().clone()), 0);
        for f in filters {
            repl.install_filter(f).expect("fresh master accepts filters");
        }
        let f_out = replay_filter(&mut repl, &day2, &updates, cfg);

        let countries = select_subtree_contexts(&dir, &day1, budget);
        let mut master = dir.dit().clone();
        let mut sub = build_context_replica(&master, &countries);
        let s_out = replay_subtree(&mut master, &mut sub, &day2, &updates, cfg, Routing::Oracle);

        rows.push(Fig6Row {
            budget_frac: frac,
            filter_hit: f_out.kind_hit_ratio(QueryKind::SerialNumber),
            filter_entries: f_out.resync_traffic.full_entries,
            filter_dns: f_out.resync_traffic.dn_only,
            subtree_hit: s_out.kind_hit_ratio(QueryKind::SerialNumber),
            subtree_entries: s_out.resync_traffic.full_entries,
            subtree_dns: s_out.resync_traffic.dn_only,
        });
    }
    rows
}

fn gens_clone(_template: &[Box<dyn Generalizer + Send>]) -> Vec<Box<dyn Generalizer + Send>> {
    // Generalizer isn't Clone as a trait object; rebuild the serial rules.
    vec![Box::new(ValuePrefix::new("serialNumber", vec![5, 4, 3]))]
}

/// One point of Figure 7: update traffic vs hit ratio for the department
/// query under dynamic selection.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Department-entry budget.
    pub budget: usize,
    /// Hit ratio with the short revolution interval.
    pub hit_r_small: f64,
    /// Update traffic (entries, resync + revolutions) with the short
    /// interval.
    pub traffic_r_small: u64,
    /// Hit ratio with the long revolution interval.
    pub hit_r_large: f64,
    /// Update traffic with the long interval.
    pub traffic_r_large: u64,
    /// Subtree model traffic (department entries are rarely updated, so
    /// this is near zero — the §7.3(b) observation).
    pub subtree_traffic: u64,
}

/// Figure 7: the filter model's department-query update traffic is
/// dominated by revolution content loads; a longer interval R lowers
/// traffic (and hit ratio — Figure 5).
pub fn fig7(params: &Params) -> Vec<Fig7Row> {
    let dir = params.directory();
    let (day1, day2) = params.two_days(&dir);
    let updates = params.updates(&dir);
    let cfg = ReplayConfig { sync_every: params.sync_every, update_every: params.update_every() };
    let dept_total = dir.departments().len();

    let mut rows = Vec::new();
    for frac in [0.2, 0.4, 0.6] {
        let budget = ((dept_total as f64) * frac) as usize;
        let mut hit = [0.0f64; 2];
        let mut traffic = [0u64; 2];
        for (i, r) in [params.r_small, params.r_large].into_iter().enumerate() {
            let selector = FilterSelector::new(
                SelectorConfig {
                    revolution_interval: r,
                    entry_budget: budget.max(1),
                    max_candidates: 4096,
                },
                vec![Box::new(WidenToPresence::new("dept")), Box::new(Identity::new())],
            );
            let mut repl =
                Replicator::new(SyncMaster::with_dit(dir.dit().clone()), 0).with_selector(selector);
            let _ = replay_filter(&mut repl, &day1, &[], ReplayConfig { sync_every: 0, update_every: 0 });
            let out = replay_filter(&mut repl, &day2, &updates, cfg);
            hit[i] = out.kind_hit_ratio(QueryKind::DeptDiv);
            traffic[i] =
                out.resync_traffic.full_entries + out.revolution_traffic.full_entries;
        }

        // Subtree: replicate the whole division tree; updates never touch
        // department entries, so sync traffic is (near) zero.
        let mut master = dir.dit().clone();
        let mut sub = fbdr_replica::SubtreeReplica::new();
        sub.replicate_context(
            &master,
            fbdr_dit::NamingContext::new("ou=divisions,o=xyz".parse().expect("valid dn")),
        );
        let s_out = replay_subtree(&mut master, &mut sub, &day2, &updates, cfg, Routing::Oracle);

        rows.push(Fig7Row {
            budget,
            hit_r_small: hit[0],
            traffic_r_small: traffic[0],
            hit_r_large: hit[1],
            traffic_r_large: traffic[1],
            subtree_traffic: s_out.resync_traffic.full_entries,
        });
    }
    rows
}

/// One row of the latency analysis (the paper's §1/§7 motivation:
/// partial replication improves performance for remote users).
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Deployment configuration.
    pub config: String,
    /// Replica entries held.
    pub replica_entries: usize,
    /// Overall hit ratio achieved on the evaluation day.
    pub hit_ratio: f64,
    /// Mean query latency in milliseconds: hits cost one LAN round trip,
    /// misses a LAN round trip (the referral) plus a WAN round trip to
    /// the master.
    pub mean_latency_ms: f64,
}

/// Mean remote-user query latency for: no replica, a subtree replica of
/// the geography, and filter replicas (with and without query caching) of
/// comparable size.
pub fn latency(params: &Params) -> Vec<LatencyRow> {
    use fbdr_net::CostModel;
    let lan = CostModel::lan();
    let wan = CostModel::default();
    let mean = |hit: f64| hit * lan.rtt_ms + (1.0 - hit) * (lan.rtt_ms + wan.rtt_ms);

    let dir = params.directory();
    let (day1, day2) = params.two_days(&dir);
    let budget = dir.employee_count() / 10;
    let mut rows = Vec::new();

    rows.push(LatencyRow {
        config: "no replica (all queries to the master)".into(),
        replica_entries: 0,
        hit_ratio: 0.0,
        mean_latency_ms: wan.rtt_ms,
    });

    // Subtree replica of the best countries within budget.
    {
        let countries = select_subtree_contexts(&dir, &day1, budget);
        let mut master = dir.dit().clone();
        let mut sub = build_context_replica(&master, &countries);
        let out = replay_subtree(
            &mut master,
            &mut sub,
            &day2,
            &[],
            ReplayConfig { sync_every: 0, update_every: 0 },
            Routing::Oracle,
        );
        rows.push(LatencyRow {
            config: format!("subtree replica ({} countries)", countries.len()),
            replica_entries: sub.entry_count(),
            hit_ratio: out.overall.hit_ratio(),
            mean_latency_ms: mean(out.overall.hit_ratio()),
        });
    }

    // Filter replicas, without and with the query cache.
    for (label, cache) in [("filter replica (no cache)", 0usize), ("filter replica + 100-query cache", 100)] {
        let filters = select_static_filters(
            dir.dit(),
            &day1,
            vec![Box::new(ValuePrefix::new("serialNumber", vec![5, 4, 3]))],
            budget,
        );
        let mut repl = Replicator::new(SyncMaster::with_dit(dir.dit().clone()), cache);
        repl.install_filter(
            fbdr_ldap::SearchRequest::from_root(
                fbdr_ldap::Filter::parse("(location=*)").expect("static"),
            ),
        )
        .expect("fresh master");
        for f in filters {
            repl.install_filter(f).expect("fresh master");
        }
        let out = replay_filter(
            &mut repl,
            &day2,
            &[],
            ReplayConfig { sync_every: 0, update_every: 0 },
        );
        rows.push(LatencyRow {
            config: label.into(),
            replica_entries: repl.replica().entry_count(),
            hit_ratio: out.overall.hit_ratio(),
            mean_latency_ms: mean(out.overall.hit_ratio()),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::Scale;

    #[test]
    fn fig6_filter_traffic_below_subtree_at_same_hit_ratio() {
        let params = Params::new(Scale::Small);
        let rows = fig6(&params);
        // The paper's comparison is traffic *for a given hit ratio*: find,
        // for each subtree point, the cheapest filter point reaching at
        // least that hit ratio — it must ship no more entries.
        for s in rows.iter().filter(|r| r.subtree_hit > 0.05) {
            let Some(f) = rows
                .iter()
                .filter(|r| r.filter_hit >= s.subtree_hit - 0.05)
                .min_by_key(|r| r.filter_entries)
            else {
                continue; // subtree exceeded the filter curve's reach
            };
            assert!(
                f.filter_entries <= s.subtree_entries,
                "filter ships {} entries for hit {} but subtree ships {} for hit {}",
                f.filter_entries,
                f.filter_hit,
                s.subtree_entries,
                s.subtree_hit
            );
        }
    }

    #[test]
    fn latency_improves_with_filter_replication() {
        let rows = latency(&Params::new(Scale::Small));
        assert_eq!(rows.len(), 4);
        let none = rows[0].mean_latency_ms;
        let filter = rows[2].mean_latency_ms;
        let cached = rows[3].mean_latency_ms;
        assert!(filter < none, "filter replica should cut latency");
        assert!(cached < filter, "query caching should cut it further");
        // Latency is a direct function of hit ratio here.
        assert!(rows[3].hit_ratio > rows[2].hit_ratio);
    }

    #[test]
    fn fig7_longer_interval_cheaper() {
        let params = Params::new(Scale::Small);
        let rows = fig7(&params);
        for r in &rows {
            assert!(
                r.traffic_r_large <= r.traffic_r_small,
                "R={} traffic {} should be <= R={} traffic {}",
                params.r_large,
                r.traffic_r_large,
                params.r_small,
                r.traffic_r_small
            );
            // Subtree traffic negligible.
            assert!(r.subtree_traffic <= 2);
        }
    }
}
