//! Master fan-out benchmark: the routed update path
//! (`SyncMaster::apply`, candidate sessions from the routing index)
//! versus the pre-index reference (`SyncMaster::apply_naive`, every
//! session evaluated against every update), across a ladder of session
//! counts. Emits `BENCH_master_fanout.json`.
//!
//! The workload models a replica fleet: `sessions` live ReSync sessions,
//! each holding a department slice of a person directory
//! (`(&(objectclass=person)(dept=i))`), plus a couple of residual
//! (non-indexable, `(!(mail=*))`) sessions that exercise the scan-list.
//! Each update moves one entry to the next department: exactly two
//! sessions are affected (one departure, one arrival), so the routed
//! path's per-op work is O(affected) while the reference's grows with
//! the session count. The gate is the throughput ratio at the largest
//! configured session count.
//!
//! Both masters see byte-identical op streams, and after the timed phase
//! every session is drained on both sides and the action batches
//! compared — the benchmark refuses to report a speedup for a path that
//! stopped being equivalent.

use fbdr_dit::{Modification, UpdateOp};
use fbdr_ldap::{Entry, Filter, Scope, SearchRequest};
use fbdr_obs::{HistogramSnapshot, Obs};
use fbdr_resync::{Cookie, ReSyncControl, SyncMaster};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct FanoutConfig {
    /// Person entries in the directory.
    pub entries: usize,
    /// Updates applied per timed run (same stream on both paths).
    pub updates: usize,
    /// Session-count ladder; the speedup gate reads the largest.
    pub session_counts: Vec<usize>,
    /// Residual (non-indexable) sessions added on top of each count.
    pub residual_sessions: usize,
    /// Timed repetitions per rung; each path's best run is reported
    /// (standard microbenchmark noise suppression).
    pub repeats: usize,
}

impl Default for FanoutConfig {
    fn default() -> Self {
        FanoutConfig {
            entries: 2_000,
            updates: 4_000,
            session_counts: vec![16, 64, 256],
            residual_sessions: 2,
            repeats: 3,
        }
    }
}

/// One session-count rung's measurement.
#[derive(Debug, Clone, Serialize)]
pub struct FanoutRung {
    /// Indexable sessions installed (department slices).
    pub sessions: usize,
    /// Residual sessions installed on top.
    pub residual_sessions: usize,
    /// Updates applied per path.
    pub updates: usize,
    /// Routed path (`apply`) throughput, ops/s.
    pub routed_ops_per_sec: f64,
    /// Reference path (`apply_naive`) throughput, ops/s.
    pub naive_ops_per_sec: f64,
    /// `routed_ops_per_sec / naive_ops_per_sec`.
    pub speedup: f64,
    /// Wall time of the routed timed run, milliseconds.
    pub routed_elapsed_ms: f64,
    /// Wall time of the reference timed run, milliseconds.
    pub naive_elapsed_ms: f64,
    /// Mean microseconds to install one session (`start_session` through
    /// the DIT's indexed streaming path, initial content included).
    pub install_us_per_session: f64,
    /// Drained sync actions compared equal across both paths.
    pub actions_compared: usize,
}

/// The emitted `BENCH_master_fanout.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct FanoutReport {
    /// Directory size.
    pub entries: usize,
    /// Updates per timed run.
    pub updates: usize,
    /// Per-rung results keyed by session count (stringified for JSON).
    pub rungs: BTreeMap<String, FanoutRung>,
    /// The CI-gated headline: speedup at the largest session count.
    pub speedup_at_max_sessions: f64,
    /// The session count the headline was measured at.
    pub max_sessions: usize,
    /// Routing counters from the routed master's registry
    /// (`fbdr_resync_route_indexed_total`, `…_route_scan_total`,
    /// `…_route_skipped_total`), summed across rungs.
    pub counters: BTreeMap<String, u64>,
    /// `fbdr_resync_route_candidates` histogram (candidate-set sizes the
    /// routed path evaluated), summed across rungs.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

fn entry_of(i: usize, dept: usize) -> Entry {
    Entry::new(format!("cn=e{i},o=xyz").parse().expect("dn"))
        .with("objectclass", "person")
        .with("cn", &format!("e{i}"))
        .with("dept", &dept.to_string())
        .with("mail", &format!("u{i}@xyz.com"))
}

fn build_master(entries: usize, depts: usize) -> SyncMaster {
    let mut m = SyncMaster::new();
    m.dit_mut().add_suffix("o=xyz".parse().expect("dn"));
    m.dit_mut().add(Entry::new("o=xyz".parse().expect("dn"))).expect("suffix entry");
    for i in 0..entries {
        m.dit_mut().add(entry_of(i, i % depts)).expect("person entry");
    }
    m
}

fn sub(filter: &str) -> SearchRequest {
    SearchRequest::new(
        "o=xyz".parse().expect("dn"),
        Scope::Subtree,
        Filter::parse(filter).expect("bench filter parses"),
    )
}

/// The `k`-th update of the stream: entry `k % entries` moves to the next
/// department. Regenerated per path so both masters see identical ops.
fn update_at(k: usize, entries: usize, depts: usize) -> UpdateOp {
    let i = k % entries;
    let pass = k / entries + 1;
    let dept = (i + pass) % depts;
    UpdateOp::Modify {
        dn: format!("cn=e{i},o=xyz").parse().expect("dn"),
        mods: vec![Modification::Replace("dept".into(), vec![dept.to_string().into()])],
    }
}

/// Installs the session ladder on a master; returns cookies and the mean
/// per-session install time in microseconds.
fn install_sessions(
    m: &mut SyncMaster,
    sessions: usize,
    residual: usize,
) -> (Vec<(SearchRequest, Cookie)>, f64) {
    let mut out = Vec::with_capacity(sessions + residual);
    let t = Instant::now();
    for s in 0..sessions {
        let req = sub(&format!("(&(objectclass=person)(dept={s}))"));
        let resp = m.resync(&req, ReSyncControl::poll(None)).expect("install");
        out.push((req, resp.cookie.expect("cookie")));
    }
    for _ in 0..residual {
        let req = sub("(!(mail=*))");
        let resp = m.resync(&req, ReSyncControl::poll(None)).expect("install residual");
        out.push((req, resp.cookie.expect("cookie")));
    }
    let us = t.elapsed().as_micros() as f64 / (sessions + residual).max(1) as f64;
    (out, us)
}

/// Runs one rung `cfg.repeats` times and keeps each path's best run —
/// per-path minima are the standard way to strip scheduler noise from a
/// throughput comparison.
fn run_rung(cfg: &FanoutConfig, sessions: usize, obs: &Obs) -> FanoutRung {
    let mut best: Option<FanoutRung> = None;
    for _ in 0..cfg.repeats.max(1) {
        let r = run_rung_once(cfg, sessions, obs);
        best = Some(match best.take() {
            None => r,
            Some(b) => {
                let (routed_ops_per_sec, routed_elapsed_ms) =
                    if r.routed_ops_per_sec > b.routed_ops_per_sec {
                        (r.routed_ops_per_sec, r.routed_elapsed_ms)
                    } else {
                        (b.routed_ops_per_sec, b.routed_elapsed_ms)
                    };
                let (naive_ops_per_sec, naive_elapsed_ms) =
                    if r.naive_ops_per_sec > b.naive_ops_per_sec {
                        (r.naive_ops_per_sec, r.naive_elapsed_ms)
                    } else {
                        (b.naive_ops_per_sec, b.naive_elapsed_ms)
                    };
                FanoutRung {
                    routed_ops_per_sec,
                    routed_elapsed_ms,
                    naive_ops_per_sec,
                    naive_elapsed_ms,
                    speedup: routed_ops_per_sec / naive_ops_per_sec.max(1e-9),
                    install_us_per_session: r.install_us_per_session.min(b.install_us_per_session),
                    ..r
                }
            }
        });
    }
    best.expect("repeats >= 1")
}

/// One timed measurement: identical masters and op streams, routed vs
/// naive, then a full drain-and-compare across every session.
fn run_rung_once(cfg: &FanoutConfig, sessions: usize, obs: &Obs) -> FanoutRung {
    let mut routed = build_master(cfg.entries, sessions);
    routed.set_obs(obs.clone());
    let mut naive = build_master(cfg.entries, sessions);
    let (routed_sessions, install_us) =
        install_sessions(&mut routed, sessions, cfg.residual_sessions);
    let (naive_sessions, _) = install_sessions(&mut naive, sessions, cfg.residual_sessions);

    // Ops are pre-built so the timed loops measure only apply-path work,
    // not DN parsing.
    let routed_ops: Vec<UpdateOp> =
        (0..cfg.updates).map(|k| update_at(k, cfg.entries, sessions)).collect();
    let naive_ops: Vec<UpdateOp> =
        (0..cfg.updates).map(|k| update_at(k, cfg.entries, sessions)).collect();

    let t = Instant::now();
    for op in routed_ops {
        routed.apply(op).expect("routed apply");
    }
    let routed_elapsed = t.elapsed();

    let t = Instant::now();
    for op in naive_ops {
        naive.apply_naive(op).expect("naive apply");
    }
    let naive_elapsed = t.elapsed();

    // Equivalence: every session drains the same batch on both paths.
    let mut actions_compared = 0usize;
    for ((req, rc), (_, nc)) in routed_sessions.iter().zip(naive_sessions.iter()) {
        let r = routed.resync(req, ReSyncControl::poll(Some(*rc))).expect("routed drain");
        let n = naive.resync(req, ReSyncControl::poll(Some(*nc))).expect("naive drain");
        assert_eq!(
            r.actions, n.actions,
            "routed and naive fan-out diverged for {req} at {sessions} sessions"
        );
        actions_compared += r.actions.len();
    }

    let routed_s = routed_elapsed.as_secs_f64();
    let naive_s = naive_elapsed.as_secs_f64();
    let routed_ops = cfg.updates as f64 / routed_s.max(1e-9);
    let naive_ops = cfg.updates as f64 / naive_s.max(1e-9);
    FanoutRung {
        sessions,
        residual_sessions: cfg.residual_sessions,
        updates: cfg.updates,
        routed_ops_per_sec: routed_ops,
        naive_ops_per_sec: naive_ops,
        speedup: routed_ops / naive_ops.max(1e-9),
        routed_elapsed_ms: routed_s * 1e3,
        naive_elapsed_ms: naive_s * 1e3,
        install_us_per_session: install_us,
        actions_compared,
    }
}

/// Runs the full ladder and assembles the report.
pub fn run(cfg: &FanoutConfig) -> FanoutReport {
    assert!(!cfg.session_counts.is_empty(), "need at least one session count");
    let obs = Obs::new();
    let mut rungs = BTreeMap::new();
    for &sessions in &cfg.session_counts {
        let rung = run_rung(cfg, sessions, &obs);
        rungs.insert(format!("{sessions:04}"), rung);
    }
    let max_sessions = *cfg.session_counts.iter().max().expect("non-empty");
    let speedup_at_max_sessions = rungs
        .get(&format!("{max_sessions:04}"))
        .expect("max rung present")
        .speedup;
    let snap = obs.registry().snapshot();
    FanoutReport {
        entries: cfg.entries,
        updates: cfg.updates,
        rungs,
        speedup_at_max_sessions,
        max_sessions,
        counters: snap.counters,
        histograms: snap.histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shape-only check at a tiny scale: both paths agree action-for-action,
    /// every rung carries both throughput fields, and the routed master's
    /// routing counters moved. (The 5× throughput floor is asserted by the
    /// `master_fanout` binary / CI smoke job, not here — unit tests stay
    /// timing-independent.)
    #[test]
    fn report_shape() {
        let cfg = FanoutConfig {
            entries: 120,
            updates: 240,
            session_counts: vec![4, 8],
            residual_sessions: 1,
            repeats: 2,
        };
        let report = run(&cfg);
        assert_eq!(report.max_sessions, 8);
        assert_eq!(report.rungs.len(), 2);
        for rung in report.rungs.values() {
            assert!(rung.routed_ops_per_sec > 0.0);
            assert!(rung.naive_ops_per_sec > 0.0);
            assert!(rung.speedup > 0.0);
            assert!(rung.actions_compared > 0, "drain comparison saw no actions");
        }
        assert!(report.counters["fbdr_resync_route_indexed_total"] > 0);
        assert!(report.histograms.contains_key("fbdr_resync_route_candidates"));
        let json = serde_json::to_string_pretty(&report).unwrap();
        for field in [
            "\"routed_ops_per_sec\"",
            "\"naive_ops_per_sec\"",
            "\"speedup_at_max_sessions\"",
            "\"install_us_per_session\"",
        ] {
            assert!(json.contains(field), "missing {field}");
        }
    }

    /// `apply_batch` is semantically identical to op-at-a-time `apply`.
    #[test]
    fn apply_batch_matches_apply() {
        let mut a = build_master(40, 4);
        let mut b = build_master(40, 4);
        let (sa, _) = install_sessions(&mut a, 4, 1);
        let (sb, _) = install_sessions(&mut b, 4, 1);
        let ops: Vec<UpdateOp> = (0..80).map(|k| update_at(k, 40, 4)).collect();
        let recs = a.apply_batch(ops).expect("batch applies");
        assert_eq!(recs.len(), 80);
        for k in 0..80 {
            b.apply(update_at(k, 40, 4)).expect("apply");
        }
        for ((req, ca), (_, cb)) in sa.iter().zip(sb.iter()) {
            let ra = a.resync(req, ReSyncControl::poll(Some(*ca))).expect("drain a");
            let rb = b.resync(req, ReSyncControl::poll(Some(*cb))).expect("drain b");
            assert_eq!(ra.actions, rb.actions, "batch vs single diverged for {req}");
        }
    }
}
