//! Recovery-cost benchmark: what a lost session costs to repair, across
//! a ladder of divergence sizes. Emits `BENCH_recovery.json`.
//!
//! Three recovery strategies are measured against byte-identical masters
//! and update streams at each divergence rung `N` (updates applied while
//! the replica was detached):
//!
//! - **cookie replay** — the session survived; an incremental poll ships
//!   just the batched changes. The lower bound, available only while the
//!   master still holds the session and its replay buffer.
//! - **reconcile** — the session is gone; the replica sends a Bloom
//!   digest over its (entry, version) set and receives only the entries
//!   the master cannot prove it has, plus the deletes found by the range
//!   fallback round. Cost is divergence-proportional.
//! - **reinstall** — the pre-reconciliation ladder: a fresh `poll(None)`
//!   reloads the entire filter content regardless of how little changed.
//!
//! Each rung verifies the reconcile outcome converges the held content
//! to the master's evaluation byte-for-byte before reporting a single
//! number — the benchmark refuses to price a recovery that is wrong.
//! The gate is `reinstall_bytes / reconcile_bytes` at the 10-update rung
//! (the paper-motivated case: a short outage on a large filter).

use fbdr_dit::{Modification, UpdateOp};
use fbdr_ldap::{Entry, Filter, Scope, SearchRequest};
use fbdr_resync::reconcile::entry_item_hash;
use fbdr_resync::{
    entry_key, ReSyncControl, ReconcileConfig, ReconcileItem, RetryConfig, SyncDriver,
    SyncMaster, SyncTraffic,
};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Person entries in the directory (all inside the replicated filter).
    pub entries: usize,
    /// Divergence ladder: updates applied while the session is detached.
    pub rungs: Vec<usize>,
    /// Bloom digest false-positive rate for the reconcile leg.
    pub fpr: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            entries: 2_000,
            rungs: vec![1, 10, 100, 1_000, 10_000],
            fpr: 0.01,
        }
    }
}

/// One divergence rung's measurement.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryRung {
    /// Updates applied while detached.
    pub divergence: usize,
    /// Distinct entries the updates actually touched.
    pub diverged_entries: usize,
    /// Incremental poll with a live cookie: bytes / PDUs shipped.
    pub replay_bytes: u64,
    /// PDUs in the replay batch.
    pub replay_pdus: u64,
    /// Reconcile exchange: total bytes both directions.
    pub reconcile_bytes: u64,
    /// Round trips the exchange took (1 = Bloom round settled it).
    pub reconcile_round_trips: u64,
    /// Bytes of the Bloom digest sent in round one.
    pub reconcile_digest_bytes: u64,
    /// Full entries shipped by the master.
    pub reconcile_shipped_entries: u64,
    /// Deletes conveyed (as item hashes).
    pub reconcile_deletes: u64,
    /// Exact hashes probed in the fallback round.
    pub reconcile_fallback_probes: u64,
    /// Full reinstall: bytes of a fresh `poll(None)` of the same filter.
    pub reinstall_bytes: u64,
    /// Entries the reinstall shipped (the whole filter content).
    pub reinstall_entries: u64,
    /// `reinstall_bytes / reconcile_bytes` — the headline ratio.
    pub reinstall_over_reconcile: f64,
    /// `reconcile_bytes / replay_bytes` — overhead versus the lower bound.
    pub reconcile_over_replay: f64,
}

/// The emitted `BENCH_recovery.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryReport {
    /// Directory size.
    pub entries: usize,
    /// Digest false-positive rate used.
    pub fpr: f64,
    /// Per-rung results keyed by divergence (stringified for JSON).
    pub rungs: BTreeMap<String, RecoveryRung>,
    /// The CI-gated headline: reinstall/reconcile byte ratio at the
    /// 10-update rung (or the smallest rung ≥ 10 configured).
    pub reinstall_over_reconcile_at_10: f64,
    /// The rung the headline was measured at.
    pub headline_rung: usize,
}

fn entry_of(i: usize) -> Entry {
    Entry::new(format!("cn=e{i},o=xyz").parse().expect("dn"))
        .with("objectclass", "person")
        .with("cn", &format!("e{i}"))
        .with("serialNumber", &format!("{:08}", 10_000_000 + i))
        .with("description", "a replicated person entry with a realistic payload size")
}

fn build_master(entries: usize) -> SyncMaster {
    let mut m = SyncMaster::new();
    m.dit_mut().add_suffix("o=xyz".parse().expect("dn"));
    m.dit_mut().add(Entry::new("o=xyz".parse().expect("dn"))).expect("suffix entry");
    for i in 0..entries {
        m.dit_mut().add(entry_of(i)).expect("person entry");
    }
    m
}

fn filter_request() -> SearchRequest {
    SearchRequest::new(
        "o=xyz".parse().expect("dn"),
        Scope::Subtree,
        Filter::parse("(objectclass=person)").expect("bench filter parses"),
    )
}

/// The `k`-th divergence update: mostly in-place modifies, every seventh
/// a delete — lost deletions are the case reconciliation must not miss.
/// Regenerated per leg so every master sees the identical stream; ops
/// against already-deleted entries are skipped on every leg alike.
fn update_at(k: usize, entries: usize) -> UpdateOp {
    let i = k % entries;
    if k % 7 == 3 {
        UpdateOp::Delete(format!("cn=e{i},o=xyz").parse().expect("dn"))
    } else {
        UpdateOp::Modify {
            dn: format!("cn=e{i},o=xyz").parse().expect("dn"),
            mods: vec![Modification::Replace(
                "serialNumber".into(),
                vec![format!("{:08}", 20_000_000 + k).into()],
            )],
        }
    }
}

fn apply_divergence(m: &mut SyncMaster, n: usize, entries: usize) -> usize {
    let mut touched = std::collections::BTreeSet::new();
    for k in 0..n {
        if m.apply(update_at(k, entries)).is_ok() {
            touched.insert(k % entries);
        }
    }
    touched.len()
}

fn traffic_of(actions: &[fbdr_resync::SyncAction]) -> SyncTraffic {
    let mut t = SyncTraffic::default();
    for a in actions {
        t.count(a);
    }
    t
}

/// Measures one rung: replay, reconcile, reinstall, each on its own
/// identically-built master.
fn measure_rung(cfg: &RecoveryConfig, n: usize) -> RecoveryRung {
    let request = filter_request();

    // Leg 1 — cookie replay: install a session, diverge, poll it.
    let mut m = build_master(cfg.entries);
    let resp = m.resync(&request, ReSyncControl::poll(None)).expect("install");
    let cookie = resp.cookie.expect("cookie");
    apply_divergence(&mut m, n, cfg.entries);
    let resp = m.resync(&request, ReSyncControl::poll(Some(cookie))).expect("replay poll");
    let replay = traffic_of(&resp.actions);

    // Leg 2 — reconcile: the session is dead; only the held content
    // (the pre-divergence filter evaluation) survives replica-side.
    let mut m = build_master(cfg.entries);
    let mut held: Vec<Entry> = m.dit().search(&request);
    held.sort_by(|a, b| a.dn().cmp(b.dn()));
    let diverged_entries = apply_divergence(&mut m, n, cfg.entries);

    let items: Vec<ReconcileItem> = held
        .iter()
        .enumerate()
        .map(|(id, e)| ReconcileItem { hash: entry_item_hash(e), id: id as u32 })
        .collect();
    let by_key: HashMap<String, u32> =
        held.iter().enumerate().map(|(id, e)| (entry_key(e), id as u32)).collect();
    let resolve = |key: &str| by_key.get(key).copied();

    let mut driver = SyncDriver::new(RetryConfig::default())
        .with_reconcile(ReconcileConfig { fpr: cfg.fpr, ..Default::default() });
    let outcome =
        driver.reconcile(&mut m, &request, &items, &resolve).expect("reconcile exchange");

    // Refuse to price a wrong recovery: applying the outcome to the held
    // content must reproduce the master's current evaluation exactly.
    let mut recovered: BTreeMap<String, Entry> =
        held.iter().map(|e| (entry_key(e), e.clone())).collect();
    for &id in &outcome.delete_ids {
        recovered.remove(&entry_key(&held[id as usize]));
    }
    for e in &outcome.upserts {
        recovered.insert(entry_key(e), e.clone());
    }
    let mut want = m.dit().search(&request);
    want.sort_by(|a, b| a.dn().cmp(b.dn()));
    let got: Vec<&Entry> = recovered.values().collect();
    assert_eq!(got.len(), want.len(), "reconcile diverged at N={n}: entry count");
    for (g, w) in got.iter().zip(want.iter()) {
        assert_eq!(
            entry_item_hash(g),
            entry_item_hash(w),
            "reconcile diverged at N={n}: {} differs",
            w.dn()
        );
    }
    let cost = outcome.cost;

    // Leg 3 — reinstall: diverge, then reload the filter from scratch.
    let mut m = build_master(cfg.entries);
    apply_divergence(&mut m, n, cfg.entries);
    let resp = m.resync(&request, ReSyncControl::poll(None)).expect("reinstall");
    let reinstall = traffic_of(&resp.actions);

    let reconcile_bytes = cost.stats.bytes_total();
    RecoveryRung {
        divergence: n,
        diverged_entries,
        replay_bytes: replay.bytes,
        replay_pdus: replay.full_entries + replay.dn_only,
        reconcile_bytes,
        reconcile_round_trips: cost.stats.round_trips,
        reconcile_digest_bytes: cost.digest_bytes,
        reconcile_shipped_entries: cost.shipped_entries,
        reconcile_deletes: cost.deletes,
        reconcile_fallback_probes: cost.fallback_probes,
        reinstall_bytes: reinstall.bytes,
        reinstall_entries: reinstall.full_entries,
        reinstall_over_reconcile: reinstall.bytes as f64 / reconcile_bytes.max(1) as f64,
        reconcile_over_replay: reconcile_bytes as f64 / replay.bytes.max(1) as f64,
    }
}

/// Runs the full divergence ladder and assembles the report.
pub fn run(cfg: &RecoveryConfig) -> RecoveryReport {
    assert!(!cfg.rungs.is_empty(), "need at least one divergence rung");
    let mut rungs = BTreeMap::new();
    for &n in &cfg.rungs {
        let rung = measure_rung(cfg, n);
        rungs.insert(format!("{n:06}"), rung);
    }
    // Headline at N=10, or the smallest configured rung ≥ 10 (so reduced
    // smoke-scale runs still gate something meaningful).
    let headline_rung = cfg
        .rungs
        .iter()
        .copied()
        .filter(|&n| n >= 10)
        .min()
        .unwrap_or_else(|| cfg.rungs.iter().copied().max().expect("non-empty"));
    let reinstall_over_reconcile_at_10 =
        rungs.get(&format!("{headline_rung:06}")).expect("headline rung").reinstall_over_reconcile;
    RecoveryReport {
        entries: cfg.entries,
        fpr: cfg.fpr,
        rungs,
        reinstall_over_reconcile_at_10,
        headline_rung,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shape-only check at a tiny scale: every leg produced bytes, the
    /// reconcile leg converged (asserted inside `measure_rung`), and the
    /// report carries the CI-grepped fields. (The 10x byte floor is
    /// asserted by the `recovery_cost` binary / CI smoke job, not here.)
    #[test]
    fn report_shape() {
        let cfg = RecoveryConfig { entries: 120, rungs: vec![1, 10, 60], fpr: 0.01 };
        let report = run(&cfg);
        assert_eq!(report.rungs.len(), 3);
        assert_eq!(report.headline_rung, 10);
        for rung in report.rungs.values() {
            assert!(rung.replay_bytes > 0);
            assert!(rung.reconcile_bytes > 0);
            assert!(rung.reinstall_bytes > 0);
            assert!(rung.reconcile_round_trips >= 1);
            assert!(rung.reinstall_entries as usize <= cfg.entries);
        }
        // Divergence-proportionality at small N: the reconcile exchange
        // undercuts the full reload by a wide margin even at toy scale.
        let small = &report.rungs["000010"];
        assert!(
            small.reinstall_over_reconcile > 2.0,
            "reconcile should undercut reinstall at N=10: {small:?}"
        );
        let json = serde_json::to_string_pretty(&report).unwrap();
        for field in [
            "\"reconcile_bytes\"",
            "\"reconcile_round_trips\"",
            "\"reinstall_bytes\"",
            "\"replay_bytes\"",
            "\"reinstall_over_reconcile_at_10\"",
        ] {
            assert!(json.contains(field), "missing {field}");
        }
    }

    /// Deletes while detached are part of every rung's stream; the
    /// equivalence assertion inside `measure_rung` would fail if the
    /// reconcile leg lost one. This pins that the stream really contains
    /// them at the headline rung.
    #[test]
    fn divergence_stream_contains_deletes() {
        let deletes =
            (0..10).filter(|&k| matches!(update_at(k, 120), UpdateOp::Delete(_))).count();
        assert!(deletes > 0, "the 10-update rung must exercise deletions");
    }
}
