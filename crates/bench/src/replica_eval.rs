//! Replica-local answer-latency benchmark: the indexed/planned evaluation
//! path versus a brute-force posting-list scan, per query class. Emits
//! `BENCH_replica_eval.json`.
//!
//! Four classes exercise the planner's regimes:
//!
//! * `point` — equality on an indexed attribute: the plan is a one-entry
//!   (borrowed) posting list; the headline win and the CI-gated one.
//! * `prefix` — initial-substring: the plan unions a text-range of lists.
//! * `range` — `>=` on a numeric attribute: the plan unions an ord-range.
//! * `scan` — a final-substring pattern with no initial component: the
//!   planner returns `None` and the path degrades to scanning the stored
//!   filter's posting list (the floor the other classes are measured
//!   against).
//!
//! Both sides run end-to-end (`try_answer` vs `try_answer_scan`): query
//! preparation, containment gate, evaluation, projection. Latencies are
//! **exact** percentiles over raw nanosecond samples, not histogram-bucket
//! approximations (the registry's log2 histograms would quantize a 3×
//! ratio away).

use fbdr_ldap::{Entry, Filter, SearchRequest};
use fbdr_obs::{HistogramSnapshot, Obs};
use fbdr_replica::FilterReplica;
use fbdr_resync::SyncMaster;
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct ReplicaEvalConfig {
    /// Person entries in the directory (all land in the stored filters).
    pub entries: usize,
    /// Timed samples per class and path.
    pub samples: usize,
    /// Untimed warmup iterations per class and path.
    pub warmup: usize,
}

impl Default for ReplicaEvalConfig {
    fn default() -> Self {
        ReplicaEvalConfig { entries: 5_000, samples: 400, warmup: 40 }
    }
}

/// Exact latency summary over raw samples.
#[derive(Debug, Clone, Serialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Exact 50th percentile in nanoseconds.
    pub p50_ns: u64,
    /// Exact 90th percentile in nanoseconds.
    pub p90_ns: u64,
    /// Exact 99th percentile in nanoseconds.
    pub p99_ns: u64,
    /// Maximum in nanoseconds.
    pub max_ns: u64,
    /// Arithmetic mean in nanoseconds.
    pub mean_ns: u64,
}

impl LatencySummary {
    fn from_samples(mut ns: Vec<u64>) -> LatencySummary {
        assert!(!ns.is_empty(), "no samples");
        ns.sort_unstable();
        let q = |p: f64| ns[((ns.len() - 1) as f64 * p).round() as usize];
        LatencySummary {
            count: ns.len(),
            p50_ns: q(0.50),
            p90_ns: q(0.90),
            p99_ns: q(0.99),
            max_ns: *ns.last().expect("non-empty"),
            mean_ns: ns.iter().sum::<u64>() / ns.len() as u64,
        }
    }
}

/// One query class's measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ClassResult {
    /// Class name: `point`, `prefix`, `range` or `scan`.
    pub class: String,
    /// Example query of the class (canonical filter text).
    pub example: String,
    /// Distinct queries cycled through.
    pub distinct_queries: usize,
    /// Mean result-set size across the timed runs.
    pub mean_result_size: f64,
    /// Indexed path (`try_answer`) latency.
    pub indexed: LatencySummary,
    /// Scan path (`try_answer_scan`) latency.
    pub scan: LatencySummary,
    /// `scan.p50_ns / indexed.p50_ns`.
    pub speedup_p50: f64,
    /// `scan.p99_ns / indexed.p99_ns`.
    pub speedup_p99: f64,
}

/// The emitted `BENCH_replica_eval.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct ReplicaEvalReport {
    /// Entries stored in the replica.
    pub entries: usize,
    /// Samples per class and path.
    pub samples: usize,
    /// The installed stored filters (canonical text).
    pub filters: Vec<String>,
    /// Per-class results keyed by class name.
    pub classes: BTreeMap<String, ClassResult>,
    /// The CI-gated headline: `classes["point"].speedup_p50`.
    pub point_speedup_p50: f64,
    /// Decision-cache hits across the run.
    pub decision_cache_hits: u64,
    /// Decision-cache misses across the run.
    pub decision_cache_misses: u64,
    /// Observability counters accumulated during the run
    /// (`fbdr_replica_plan_indexed_total`, `…_plan_scan_total`, …).
    pub counters: BTreeMap<String, u64>,
    /// Observability histograms (`fbdr_replica_try_answer_ns`,
    /// `fbdr_replica_index_build_ns`, `fbdr_replica_plan_candidates`);
    /// log2-bucketed — informational, the gate uses the exact summaries.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// A directory of `n` person entries under two country subtrees, with
/// serial numbers `100000..100000+n`, departments `i % 50` and mail
/// `u{i}@xyz.com`.
fn build_master(n: usize) -> SyncMaster {
    let mut m = SyncMaster::new();
    m.dit_mut().add_suffix("o=xyz".parse().expect("dn"));
    m.dit_mut().add(Entry::new("o=xyz".parse().expect("dn"))).expect("suffix entry");
    for c in ["us", "in"] {
        m.dit_mut()
            .add(Entry::new(format!("c={c},o=xyz").parse().expect("dn")))
            .expect("country entry");
    }
    for i in 0..n {
        let c = if i % 2 == 0 { "us" } else { "in" };
        let e = Entry::new(format!("cn=e{i},c={c},o=xyz").parse().expect("dn"))
            .with("objectclass", "inetOrgPerson")
            .with("cn", &format!("e{i}"))
            .with("serialNumber", &format!("{}", 100_000 + i))
            .with("departmentNumber", &format!("{}", i % 50))
            .with("mail", &format!("u{i}@xyz.com"));
        m.dit_mut().add(e).expect("person entry");
    }
    m
}

fn root(f: &str) -> SearchRequest {
    SearchRequest::from_root(Filter::parse(f).expect("bench filter parses"))
}

/// The query pool for one class: distinct queries cycled round-robin so
/// repeated timings touch different values (the decision cache still hits
/// after the first lap — that is part of the measured path).
fn class_pool(class: &str, n: usize) -> Vec<SearchRequest> {
    let distinct = 128.min(n);
    let stride = (n / distinct).max(1);
    match class {
        "point" => (0..distinct)
            .map(|k| root(&format!("(serialNumber={})", 100_000 + k * stride)))
            .collect(),
        // 4-digit serial prefixes: each covers ~n/10 of the entries.
        "prefix" => (0..10)
            .map(|k| root(&format!("(serialNumber=10{k}*)")))
            .collect(),
        // High lower bounds: ~50-entry tails of the numeric range.
        "range" => (0..distinct)
            .map(|k| {
                let lo = 100_000 + n.saturating_sub(50 + k % 32);
                root(&format!("(serialNumber>={lo})"))
            })
            .collect(),
        // Final-substring (no initial component): unplannable, the
        // indexed path falls back to scanning the stored filter's list.
        "scan" => (0..distinct)
            .map(|k| root(&format!("(mail=*u{}@xyz.com)", k * stride)))
            .collect(),
        other => unreachable!("unknown class {other}"),
    }
}

/// Times `f` over the pool round-robin, returning raw ns samples.
fn time_pool<F: FnMut(&SearchRequest) -> usize>(
    pool: &[SearchRequest],
    warmup: usize,
    samples: usize,
    mut f: F,
) -> (Vec<u64>, f64) {
    for q in pool.iter().cycle().take(warmup) {
        f(q);
    }
    let mut ns = Vec::with_capacity(samples);
    let mut result_total = 0usize;
    for q in pool.iter().cycle().take(samples) {
        let t = Instant::now();
        let len = f(q);
        ns.push(t.elapsed().as_nanos() as u64);
        result_total += len;
    }
    (ns, result_total as f64 / samples as f64)
}

/// Runs the full benchmark: builds the directory, installs the stored
/// filters, measures every class on both paths.
pub fn run(cfg: &ReplicaEvalConfig) -> ReplicaEvalReport {
    let obs = Obs::new();
    let mut master = build_master(cfg.entries);
    let replica = FilterReplica::with_obs(0, obs.clone());
    // Containing filters for every class: all serials start with "1";
    // the numeric floor covers every range query; mail presence covers
    // the scan class's final-substring patterns.
    let filters = [
        root("(serialNumber=1*)"),
        root("(serialNumber>=100000)"),
        root("(mail=*)"),
    ];
    for f in &filters {
        replica.install_filter(&mut master, f.clone()).expect("install succeeds");
    }
    assert_eq!(replica.entry_count(), cfg.entries, "filters load the whole directory");

    let mut classes = BTreeMap::new();
    for class in ["point", "prefix", "range", "scan"] {
        let pool = class_pool(class, cfg.entries);
        // Sanity: every query must be a containment hit on both paths.
        for q in &pool {
            assert!(replica.try_answer(q).is_some(), "{class} query not answerable: {q:?}");
        }
        let (indexed_ns, mean_size) = time_pool(&pool, cfg.warmup, cfg.samples, |q| {
            replica.try_answer(q).expect("hit").len()
        });
        let (scan_ns, _) = time_pool(&pool, cfg.warmup, cfg.samples, |q| {
            replica.try_answer_scan(q).expect("hit").len()
        });
        let indexed = LatencySummary::from_samples(indexed_ns);
        let scan = LatencySummary::from_samples(scan_ns);
        let speedup_p50 = scan.p50_ns as f64 / indexed.p50_ns.max(1) as f64;
        let speedup_p99 = scan.p99_ns as f64 / indexed.p99_ns.max(1) as f64;
        classes.insert(
            class.to_owned(),
            ClassResult {
                class: class.to_owned(),
                example: pool[0].filter().to_string(),
                distinct_queries: pool.len(),
                mean_result_size: mean_size,
                indexed,
                scan,
                speedup_p50,
                speedup_p99,
            },
        );
    }

    let dc = replica.decision_cache_stats();
    let snap = obs.registry().snapshot();
    let point_speedup_p50 = classes["point"].speedup_p50;
    ReplicaEvalReport {
        entries: cfg.entries,
        samples: cfg.samples,
        filters: filters.iter().map(|f| f.filter().to_string()).collect(),
        classes,
        point_speedup_p50,
        decision_cache_hits: dc.hits,
        decision_cache_misses: dc.misses,
        counters: snap.counters,
        histograms: snap.histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shape-only check at a tiny scale: every class is present with both
    /// summaries, both paths agree on result sizes, the planner counters
    /// moved, and the JSON carries the gated fields. (The 3× point-query
    /// floor is asserted by the `replica_eval` binary / CI smoke job, not
    /// here — unit tests stay timing-independent.)
    #[test]
    fn report_shape() {
        let cfg = ReplicaEvalConfig { entries: 300, samples: 24, warmup: 4 };
        let report = run(&cfg);
        assert_eq!(report.entries, 300);
        assert_eq!(report.filters.len(), 3);
        for class in ["point", "prefix", "range", "scan"] {
            let c = &report.classes[class];
            assert_eq!(c.indexed.count, 24);
            assert_eq!(c.scan.count, 24);
            assert!(c.indexed.p99_ns >= c.indexed.p50_ns);
            assert!(c.speedup_p50 > 0.0);
        }
        assert!(report.classes["point"].mean_result_size >= 1.0);
        // The planner served the plannable classes and fell back for scan.
        assert!(report.counters["fbdr_replica_plan_indexed_total"] > 0);
        assert!(report.counters["fbdr_replica_plan_scan_total"] > 0);
        assert!(report.decision_cache_hits > 0, "pools are cycled, repeats must hit");
        assert!(report.histograms.contains_key("fbdr_replica_try_answer_ns"));
        assert!(report.histograms.contains_key("fbdr_replica_index_build_ns"));
        let json = serde_json::to_string_pretty(&report).unwrap();
        for field in ["\"point_speedup_p50\"", "\"p50_ns\"", "\"p99_ns\"", "\"classes\""] {
            assert!(json.contains(field), "missing {field}");
        }
    }
}
