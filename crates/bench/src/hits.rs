//! Hit-ratio experiments: Figures 4, 5, 8 and 9.

use crate::setup::Params;
use fbdr_core::experiment::{
    build_context_replica, replay_filter, replay_subtree, select_static_filters, ReplayConfig,
    Routing,
};
use fbdr_core::Replicator;
use fbdr_dit::NamingContext;
use fbdr_ldap::SearchRequest;
use fbdr_replica::SubtreeReplica;
use fbdr_resync::SyncMaster;
use fbdr_selection::generalize::{Generalizer, Identity, ValuePrefix, WidenToPresence};
use fbdr_selection::{FilterSelector, SelectorConfig};
use fbdr_workload::{EnterpriseDirectory, QueryKind, TracedQuery};

fn serial_generalizers() -> Vec<Box<dyn Generalizer + Send>> {
    // Three region granularities: blocks of 10, 100 and 1000 serials.
    vec![Box::new(ValuePrefix::new("serialNumber", vec![5, 4, 3]))]
}

/// Fine-grained candidates only (blocks of 10), for the
/// hit-ratio-vs-#filters sweeps where the x-axis is the filter count.
fn serial_fine_generalizers() -> Vec<Box<dyn Generalizer + Send>> {
    vec![Box::new(ValuePrefix::new("serialNumber", vec![5]))]
}

fn dept_generalizers() -> Vec<Box<dyn Generalizer + Send>> {
    vec![Box::new(WidenToPresence::new("dept")), Box::new(Identity::new())]
}

fn only_kind(trace: &[TracedQuery], kind: QueryKind) -> Vec<TracedQuery> {
    trace.iter().filter(|q| q.kind == kind).cloned().collect()
}

fn no_updates() -> ReplayConfig {
    ReplayConfig { sync_every: 0, update_every: 0 }
}

// ---------------------------------------------------------------------
// Figure 4: hit ratio vs replica size, serial-number query
// ---------------------------------------------------------------------

/// One point of Figure 4.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Entry budget as a fraction of all person entries.
    pub budget_frac: f64,
    /// Actual filter-replica size (fraction of person entries).
    pub filter_size_frac: f64,
    /// Serial-query hit ratio of the filter replica.
    pub filter_hit: f64,
    /// Actual subtree-replica size (fraction of person entries).
    pub subtree_size_frac: f64,
    /// Serial-query hit ratio of the (oracle-routed) subtree replica.
    pub subtree_hit: f64,
}

/// Figure 4: train on day 1, freeze the selection, evaluate day 2.
pub fn fig4(params: &Params) -> Vec<Fig4Row> {
    let dir = params.directory();
    let (day1, day2) = params.two_days(&dir);
    let persons = dir.employee_count() as f64;
    let mut rows = Vec::new();
    for &frac in &params.size_fractions {
        let budget = (frac * persons) as usize;

        let filters = select_static_filters(dir.dit(), &day1, serial_generalizers(), budget);
        let mut repl = Replicator::new(SyncMaster::with_dit(dir.dit().clone()), 0);
        for f in filters {
            repl.install_filter(f).expect("fresh master accepts filters");
        }
        let f_out = replay_filter(&mut repl, &day2, &[], no_updates());

        let countries = fbdr_core::experiment::select_subtree_contexts(&dir, &day1, budget);
        let mut master = dir.dit().clone();
        let mut sub = build_context_replica(&master, &countries);
        let s_out =
            replay_subtree(&mut master, &mut sub, &day2, &[], no_updates(), Routing::Oracle);

        rows.push(Fig4Row {
            budget_frac: frac,
            filter_size_frac: repl.replica().entry_count() as f64 / persons,
            filter_hit: f_out.kind_hit_ratio(QueryKind::SerialNumber),
            subtree_size_frac: sub.entry_count() as f64 / persons,
            subtree_hit: s_out.kind_hit_ratio(QueryKind::SerialNumber),
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Figure 5: hit ratio vs replica size, department query, dynamic
// selection with two revolution intervals
// ---------------------------------------------------------------------

/// One point of Figure 5.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Department-entry budget.
    pub budget: usize,
    /// Dept-query hit ratio with the short revolution interval.
    pub hit_r_small: f64,
    /// Dept-query hit ratio with the long revolution interval.
    pub hit_r_large: f64,
    /// Dept-query hit ratio of a per-division subtree replica of
    /// comparable size.
    pub subtree_hit: f64,
    /// Subtree replica size (entries).
    pub subtree_size: usize,
}

/// Figure 5: department queries under dynamic filter selection; the
/// shorter interval tracks popularity drift better.
pub fn fig5(params: &Params) -> Vec<Fig5Row> {
    let dir = params.directory();
    let (day1, day2) = params.two_days(&dir);
    let dept_total = dir.departments().len();
    let mut rows = Vec::new();
    for frac in [0.1, 0.2, 0.4, 0.6] {
        let budget = ((dept_total as f64) * frac) as usize;
        let mut hit = [0.0f64; 2];
        for (i, r) in [params.r_small, params.r_large].into_iter().enumerate() {
            let selector = FilterSelector::new(
                SelectorConfig {
                    revolution_interval: r,
                    entry_budget: budget.max(1),
                    max_candidates: 4096,
                },
                dept_generalizers(),
            );
            let mut repl =
                Replicator::new(SyncMaster::with_dit(dir.dit().clone()), 0).with_selector(selector);
            // Day 1 warms the selector and replica; day 2 is measured.
            let _ = replay_filter(&mut repl, &day1, &[], no_updates());
            let out = replay_filter(&mut repl, &day2, &[], no_updates());
            hit[i] = out.kind_hit_ratio(QueryKind::DeptDiv);
        }

        let (mut master, sub_size, mut sub) = division_replica(&dir, &day1, budget);
        let s_out =
            replay_subtree(&mut master, &mut sub, &day2, &[], no_updates(), Routing::Oracle);
        rows.push(Fig5Row {
            budget,
            hit_r_small: hit[0],
            hit_r_large: hit[1],
            subtree_hit: s_out.kind_hit_ratio(QueryKind::DeptDiv),
            subtree_size: sub_size,
        });
    }
    rows
}

/// Greedy per-division subtree selection for the department workload: a
/// subtree replica stores all or none of a division's departments.
fn division_replica(
    dir: &EnterpriseDirectory,
    trace: &[TracedQuery],
    budget: usize,
) -> (fbdr_dit::DitStore, usize, SubtreeReplica) {
    use std::collections::HashMap;
    let mut benefit: HashMap<&str, u64> = HashMap::new();
    for tq in trace.iter().filter(|q| q.kind == QueryKind::DeptDiv) {
        let f = tq.request.filter().to_string();
        // (&(dept=D)(div=V)) — extract V.
        if let Some(div) = f.split("(div=").nth(1) {
            let div = div.trim_end_matches("))");
            if let Some((d, _)) = dir.departments().iter().find(|(_, v)| v == div) {
                let _ = d;
                *benefit.entry(
                    dir.departments()
                        .iter()
                        .find(|(_, v)| v == div)
                        .map(|(_, v)| v.as_str())
                        .expect("division exists"),
                )
                .or_default() += 1;
            }
        }
    }
    let mut divisions: Vec<(String, usize, u64)> = Vec::new();
    for (_, div) in dir.departments() {
        if !divisions.iter().any(|(d, _, _)| d == div) {
            let size = dir.departments().iter().filter(|(_, v)| v == div).count();
            divisions.push((div.clone(), size, benefit.get(div.as_str()).copied().unwrap_or(0)));
        }
    }
    divisions.sort_by(|a, b| {
        let ra = a.2 as f64 / a.1 as f64;
        let rb = b.2 as f64 / b.1 as f64;
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
    });
    let master = dir.dit().clone();
    let mut sub = SubtreeReplica::new();
    let mut used = 0usize;
    for (div, size, benefit) in divisions {
        if benefit == 0 || used + size > budget {
            continue;
        }
        used += size;
        let suffix = format!("ou={div},ou=divisions,o=xyz").parse().expect("valid dn");
        sub.replicate_context(&master, NamingContext::new(suffix));
    }
    let size = sub.entry_count();
    (master, size, sub)
}

// ---------------------------------------------------------------------
// Figures 8 and 9: hit ratio vs number of stored filters
// ---------------------------------------------------------------------

/// One point of Figure 8/9.
#[derive(Debug, Clone)]
pub struct FigFiltersRow {
    /// Stored queries (filters and/or cached user queries).
    pub stored: usize,
    /// Hit ratio with only cached user queries.
    pub cache_only: f64,
    /// Hit ratio with only generalized filters.
    pub generalized_only: f64,
    /// Hit ratio with both (half filters, half cache window).
    pub both: f64,
}

/// Figure 8: serial-number query, the three §7.4 configurations.
pub fn fig8(params: &Params) -> Vec<FigFiltersRow> {
    let dir = params.directory();
    let (day1, day2) = params.two_days(&dir);
    fig_filters(
        &dir,
        &only_kind(&day1, QueryKind::SerialNumber),
        &only_kind(&day2, QueryKind::SerialNumber),
        serial_fine_generalizers(),
        &params.filter_counts,
    )
}

/// Figure 9: department query, the same three configurations.
pub fn fig9(params: &Params) -> Vec<FigFiltersRow> {
    let dir = params.directory();
    let (day1, day2) = params.two_days(&dir);
    fig_filters(
        &dir,
        &only_kind(&day1, QueryKind::DeptDiv),
        &only_kind(&day2, QueryKind::DeptDiv),
        dept_generalizers(),
        &params.filter_counts,
    )
}

fn fig_filters(
    dir: &EnterpriseDirectory,
    day1: &[TracedQuery],
    day2: &[TracedQuery],
    generalizers: Vec<Box<dyn Generalizer + Send>>,
    counts: &[usize],
) -> Vec<FigFiltersRow> {
    // Rank candidates from the *recent* part of day 1 — benefit in the
    // paper is hits since the last update, a recency window, which is
    // what keeps the selection relevant under popularity drift.
    let recent = &day1[day1.len() - day1.len() / 3..];
    let mut selector = FilterSelector::new(
        SelectorConfig {
            revolution_interval: u64::MAX,
            entry_budget: usize::MAX,
            max_candidates: 1 << 20,
        },
        generalizers,
    );
    for tq in recent {
        selector.observe(&tq.request);
    }
    let ranked: Vec<SearchRequest> = selector
        .ranked_candidates(dir.dit())
        .into_iter()
        .map(|(r, _, _)| r)
        .collect();

    let mut rows = Vec::new();
    for &k in counts {
        let cache_only = {
            let mut repl = Replicator::new(SyncMaster::with_dit(dir.dit().clone()), k);
            let out = replay_filter(&mut repl, day2, &[], no_updates());
            out.overall.hit_ratio()
        };
        let generalized_only = {
            let mut repl = Replicator::new(SyncMaster::with_dit(dir.dit().clone()), 0);
            for f in ranked.iter().take(k) {
                repl.install_filter(f.clone()).expect("fresh master accepts filters");
            }
            let out = replay_filter(&mut repl, day2, &[], no_updates());
            out.overall.hit_ratio()
        };
        let both = {
            let half = k / 2;
            let mut repl = Replicator::new(SyncMaster::with_dit(dir.dit().clone()), k - half);
            for f in ranked.iter().take(half) {
                repl.install_filter(f.clone()).expect("fresh master accepts filters");
            }
            let out = replay_filter(&mut repl, day2, &[], no_updates());
            out.overall.hit_ratio()
        };
        rows.push(FigFiltersRow { stored: k, cache_only, generalized_only, both });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::Scale;

    #[test]
    fn fig4_small_shapes() {
        let params = Params::new(Scale::Small);
        let rows = fig4(&params);
        assert_eq!(rows.len(), params.size_fractions.len());
        // Hit ratio grows with budget for the filter model.
        assert!(rows.last().expect("rows").filter_hit >= rows[0].filter_hit);
        for r in &rows {
            // The paper's claim is the small/medium-size regime: the
            // filter model clearly wins up to ~20% replica size. (At very
            // large sizes the oracle-routed subtree upper bound becomes
            // competitive — both curves approach the popularity mass.)
            if r.budget_frac <= 0.2 {
                assert!(
                    r.filter_hit >= r.subtree_hit,
                    "filter {} vs subtree {} at {}",
                    r.filter_hit,
                    r.subtree_hit,
                    r.budget_frac
                );
            }
            assert!(r.filter_size_frac <= r.budget_frac + 0.01);
        }
    }

    #[test]
    fn fig8_small_shapes() {
        let params = Params::new(Scale::Small);
        let rows = fig8(&params);
        // The cache-only curve saturates; combined beats cache-only at the
        // largest count.
        let last = rows.last().expect("rows");
        assert!(last.generalized_only > 0.0);
        assert!(last.both >= last.cache_only - 0.05);
    }
}
