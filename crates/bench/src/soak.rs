//! Long-run soak benchmark: bounded memory and sustained throughput for
//! a GC'd sharded master fleet under 10× the chaos-suite's churn. Emits
//! `BENCH_soak.json`.
//!
//! Two arms run the *identical* seeded op stream in lockstep against
//! identical fleets:
//!
//! * **gc** — causal-stability GC on (periodic collection, a session
//!   eviction deadline, replay expiry at the master default);
//! * **ablation** — [`GcConfig::disabled()`]: nothing is ever reclaimed.
//!
//! The workload is the chaos suite's shape scaled up: base entries
//! toggle across the filter boundary while a rolling window of *fresh*
//! DNs is added in-filter and deleted a few steps later, so departed
//! posting lists, replay buffers and retired interner slots all accrue
//! garbage continuously. A fleet of live poll sessions acks on a fixed
//! cadence (advancing the stability watermark); a few **dead** sessions
//! install and never poll again — the gc arm evicts them at the
//! deadline, the ablation arm lets them pin memory forever, which is
//! what makes its footprint provably monotonic.
//!
//! Memory is measured with the master's own deterministic byte
//! accounting ([`fbdr_resync::MasterFootprint`]) — no allocator stats —
//! so the per-segment high-water series is reproducible for a seed.
//! Throughput is wall-clock and therefore not byte-stable, but the
//! *ratios* the gates check (flatness, monotonicity, sustain) are
//! robust to host speed.
//!
//! Before any number is reported, the harness asserts the two arms are
//! observationally identical for live sessions: every poll (and every
//! duplicate-cookie redelivery probe) must return byte-for-byte equal
//! responses, and the final directory content must match entry for
//! entry. A GC that changed an answer would panic here, not ship a
//! pretty graph.

use fbdr_dit::{DitStore, Modification, UpdateOp};
use fbdr_ldap::{Dn, Entry, Filter, Scope, SearchRequest};
use fbdr_obs::Obs;
use fbdr_resync::{
    Cookie, GcConfig, ReSyncControl, ShardId, ShardMap, ShardedMaster, SyncMaster,
};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Sync-master shards (one or more countries each).
    pub shards: usize,
    /// Country containers (partition grain; ≥ `shards`).
    pub countries: usize,
    /// Long-lived base entries per country, toggling across the filter
    /// boundary.
    pub entries_per_country: usize,
    /// Live poll sessions (spread round-robin across countries).
    pub sessions: usize,
    /// Sessions that install and then never poll again — eviction bait
    /// for the gc arm, a memory pin for the ablation arm.
    pub dead_sessions: usize,
    /// Soak steps; each step applies one base-churn op plus one
    /// fresh-DN add (and, past the window, one fresh-DN delete).
    pub updates: usize,
    /// Fresh churn DNs alive at once before deletion catches up.
    pub window: usize,
    /// Each live session polls every this many steps.
    pub poll_every: usize,
    /// Every n-th poll also re-sends the same cookie — a redelivery
    /// probe through the replay buffer, compared across arms.
    pub redeliver_every: usize,
    /// Segments the run is cut into for high-water / throughput series.
    pub segments: usize,
    /// Footprint sample cadence, steps. Byte accounting walks the
    /// interner, so per-step sampling would be quadratic on the
    /// ablation arm.
    pub sample_every: usize,
    /// gc arm: collect every this many applied ops per shard.
    pub gc_every_ops: u64,
    /// gc arm: evict sessions idle longer than this (simulated ms; the
    /// clock advances 1 ms per step).
    pub session_deadline_ms: u64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            shards: 4,
            countries: 4,
            entries_per_country: 50,
            sessions: 32,
            dead_sessions: 8,
            // 10× the chaos suite's total churn (100 seeds × 40 updates).
            updates: 40_000,
            window: 256,
            poll_every: 16,
            redeliver_every: 7,
            segments: 10,
            sample_every: 64,
            gc_every_ops: 256,
            session_deadline_ms: 2_000,
            seed: 42,
        }
    }
}

/// One segment's samples, both arms.
#[derive(Debug, Clone, Serialize)]
pub struct SoakSegment {
    /// Steps covered by this segment.
    pub steps: usize,
    /// gc arm deterministic footprint high-water, bytes.
    pub gc_high_water_bytes: usize,
    /// ablation arm deterministic footprint high-water, bytes.
    pub ablation_high_water_bytes: usize,
    /// gc arm throughput over the segment, steps/s (wall clock).
    pub gc_ops_per_sec: f64,
    /// ablation arm throughput over the segment, steps/s (wall clock).
    pub ablation_ops_per_sec: f64,
}

/// The emitted `BENCH_soak.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct SoakReport {
    /// Shards in the fleet.
    pub shards: usize,
    /// Country containers.
    pub countries: usize,
    /// Base entries per country.
    pub entries_per_country: usize,
    /// Live poll sessions.
    pub sessions: usize,
    /// Never-polling sessions.
    pub dead_sessions: usize,
    /// Soak steps.
    pub updates: usize,
    /// Fresh-DN window.
    pub window: usize,
    /// Poll cadence, steps.
    pub poll_every: usize,
    /// Workload seed.
    pub seed: u64,
    /// Per-segment high-water and throughput series.
    pub segments: Vec<SoakSegment>,
    /// gc arm post-warmup baseline (segment 1 high-water), bytes.
    pub gc_baseline_bytes: usize,
    /// gc arm worst high-water after warmup, bytes.
    pub gc_peak_bytes: usize,
    /// `gc_peak_bytes / gc_baseline_bytes` — the flatness headline.
    pub gc_high_water_ratio: f64,
    /// Did the gc arm stay within 1.10× of its post-warmup baseline?
    pub gc_flat: bool,
    /// `ablation last-segment / first-segment` high-water.
    pub ablation_growth_x: f64,
    /// Was the ablation arm's high-water series non-decreasing?
    pub ablation_monotonic: bool,
    /// gc arm first post-warmup segment throughput, steps/s. Segment 0
    /// is warmup for throughput exactly as it is for memory: the churn
    /// window is still filling (fewer ops per step) and every table is
    /// at cold-start size, so it runs unrepresentatively fast.
    pub gc_first_decile_ops_per_sec: f64,
    /// gc arm last-segment throughput, steps/s.
    pub gc_last_segment_ops_per_sec: f64,
    /// `last / first-decile` — the sustain headline.
    pub throughput_sustain_ratio: f64,
    /// Polls compared byte-for-byte across arms (incl. redeliveries).
    pub polls_compared: usize,
    /// Every compared poll and the final content matched across arms.
    pub arms_equal: bool,
    /// gc arm: sessions the deadline evicted.
    pub sessions_evicted: usize,
    /// gc arm: interned ids released back to the free lists.
    pub ids_recycled: usize,
    /// gc arm: final op-count distance to the stability watermark.
    pub final_stability_lag: u64,
    /// gc arm final footprint, bytes.
    pub gc_final_bytes: usize,
    /// ablation arm final footprint, bytes.
    pub ablation_final_bytes: usize,
}

fn country_dn(c: usize) -> Dn {
    format!("c=s{c},o=xyz").parse().expect("dn")
}

fn base_dn(i: usize, countries: usize) -> Dn {
    format!("cn=e{i},c=s{},o=xyz", i % countries).parse().expect("dn")
}

fn churn_dn(k: usize, countries: usize) -> Dn {
    format!("cn=churn{k},c=s{},o=xyz", k % countries).parse().expect("dn")
}

/// Serial inside the replicated filter region (`04*`) or outside it —
/// the chaos suite's boundary convention.
fn serial(in_filter: bool, n: usize) -> String {
    if in_filter {
        format!("04{n:06}")
    } else {
        format!("99{n:06}")
    }
}

fn map_for(cfg: &SoakConfig) -> ShardMap {
    let mut map = ShardMap::new(ShardId::ZERO);
    for c in 0..cfg.countries {
        map.assign(
            country_dn(c),
            ShardId::new(u16::try_from(c % cfg.shards).expect("shard id fits")),
        );
    }
    map
}

fn build_fleet(cfg: &SoakConfig, map: &ShardMap) -> ShardedMaster {
    let mut dits: Vec<DitStore> = (0..cfg.shards)
        .map(|_| {
            let mut dit = DitStore::new();
            dit.add_suffix("o=xyz".parse().expect("dn"));
            dit.add(Entry::new("o=xyz".parse().expect("dn")).with("objectclass", "organization"))
                .expect("fresh store");
            dit
        })
        .collect();
    for c in 0..cfg.countries {
        let shard = map.shard_of(&country_dn(c));
        dits[shard.index()]
            .add(Entry::new(country_dn(c)).with("objectclass", "country"))
            .expect("country entry");
    }
    for i in 0..cfg.countries * cfg.entries_per_country {
        let shard = map.shard_of(&base_dn(i, cfg.countries));
        dits[shard.index()]
            .add(
                Entry::new(base_dn(i, cfg.countries))
                    .with("objectclass", "person")
                    .with("serialNumber", &serial(i % 2 == 0, i)),
            )
            .expect("person entry");
    }
    ShardedMaster::from_masters(map.clone(), dits.into_iter().map(SyncMaster::with_dit).collect())
}

/// Session `s` watches the in-filter region of one country's subtree.
fn session_request(s: usize, countries: usize) -> SearchRequest {
    SearchRequest::new(
        country_dn(s % countries),
        Scope::Subtree,
        Filter::parse("(serialNumber=04*)").expect("filter"),
    )
}

/// Deterministic workload stream — splitmix64, the repo's usual seeding
/// primitive, kept local so the bench has no RNG dependency.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One arm: a fleet plus its session cookies and per-segment clocks.
struct Arm {
    fleet: ShardedMaster,
    /// Aggregated counters across the arm's shards (GC totals live here).
    obs: Obs,
    /// Live-session cookies, indexed by session.
    cookies: Vec<Option<Cookie>>,
    work: Duration,
}

impl Arm {
    fn new(cfg: &SoakConfig, map: &ShardMap, gc: GcConfig) -> Self {
        let mut fleet = build_fleet(cfg, map);
        fleet.set_gc_config(gc);
        // Both arms carry an active registry so counter bookkeeping
        // burdens their timed work equally.
        let obs = Obs::new();
        fleet.set_obs(obs.clone());
        Arm { fleet, obs, cookies: vec![None; cfg.sessions], work: Duration::ZERO }
    }

    fn counter(&self, name: &str) -> u64 {
        self.obs.registry().snapshot().counters.get(name).copied().unwrap_or(0)
    }

    fn timed<T>(&mut self, f: impl FnOnce(&mut ShardedMaster) -> T) -> T {
        let t = Instant::now();
        let out = f(&mut self.fleet);
        self.work += t.elapsed();
        out
    }
}

/// The step-`k` base-churn op — a pure function of the rolling RNG, so
/// both arms replay the identical stream.
fn base_op(rng: &mut u64, present: &mut [bool], in_filter: &mut [bool], countries: usize) -> UpdateOp {
    let n = present.len();
    let i = (splitmix(rng) % n as u64) as usize;
    let roll = splitmix(rng) % 100;
    if !present[i] {
        present[i] = true;
        in_filter[i] = roll < 50;
        UpdateOp::Add(
            Entry::new(base_dn(i, countries))
                .with("objectclass", "person")
                .with("serialNumber", &serial(in_filter[i], i)),
        )
    } else if roll < 25 {
        present[i] = false;
        UpdateOp::Delete(base_dn(i, countries))
    } else {
        in_filter[i] = !in_filter[i];
        UpdateOp::Modify {
            dn: base_dn(i, countries),
            mods: vec![Modification::Replace(
                "serialNumber".into(),
                vec![serial(in_filter[i], i).into()],
            )],
        }
    }
}

/// Runs the soak and builds the report. Panics — before reporting any
/// number — if the gc arm's responses or final content ever deviate
/// from the ablation arm's.
pub fn run(cfg: &SoakConfig) -> SoakReport {
    assert!(cfg.segments >= 3, "need at least warmup + 2 measured segments");
    assert!(cfg.updates >= cfg.segments * cfg.poll_every, "updates too small for the cadence");
    let map = map_for(cfg);
    let mut gc_arm = Arm::new(
        cfg,
        &map,
        GcConfig {
            session_deadline_ms: Some(cfg.session_deadline_ms),
            every_ops: Some(cfg.gc_every_ops),
            ..GcConfig::default()
        },
    );
    let mut ab_arm = Arm::new(cfg, &map, GcConfig::disabled());

    // Install every session on both arms, in the same order, so session
    // ids — and therefore cookies — correspond across arms. Live
    // sessions first, then the dead ones that never poll again.
    let mut polls_compared = 0usize;
    for s in 0..cfg.sessions {
        let req = session_request(s, cfg.countries);
        let shard = map.shard_of(&country_dn(s % cfg.countries));
        let a = gc_arm
            .timed(|f| f.shard_mut(shard).resync(&req, ReSyncControl::poll(None)))
            .expect("install");
        let b = ab_arm
            .timed(|f| f.shard_mut(shard).resync(&req, ReSyncControl::poll(None)))
            .expect("install");
        assert_eq!(a, b, "install diverged for session {s}");
        polls_compared += 1;
        gc_arm.cookies[s] = a.cookie;
        ab_arm.cookies[s] = b.cookie;
    }
    for d in 0..cfg.dead_sessions {
        let req = session_request(d, cfg.countries);
        let shard = map.shard_of(&country_dn(d % cfg.countries));
        gc_arm
            .timed(|f| f.shard_mut(shard).resync(&req, ReSyncControl::poll(None)))
            .expect("dead install");
        ab_arm
            .timed(|f| f.shard_mut(shard).resync(&req, ReSyncControl::poll(None)))
            .expect("dead install");
    }

    let n_base = cfg.countries * cfg.entries_per_country;
    let mut present = vec![true; n_base];
    let mut in_filter: Vec<bool> = (0..n_base).map(|i| i % 2 == 0).collect();
    let mut rng = cfg.seed ^ 0xABCD_EF01;
    let mut segments: Vec<SoakSegment> = Vec::with_capacity(cfg.segments);
    let mut seg = SoakSegment {
        steps: 0,
        gc_high_water_bytes: 0,
        ablation_high_water_bytes: 0,
        gc_ops_per_sec: 0.0,
        ablation_ops_per_sec: 0.0,
    };
    let (mut gc_mark, mut ab_mark) = (gc_arm.work, ab_arm.work);
    let mut arms_equal = true;
    let mut polls = 0usize;

    for step in 0..cfg.updates {
        // One base-churn op (replayed bit-identically on both arms)...
        let op = base_op(&mut rng, &mut present, &mut in_filter, cfg.countries);
        gc_arm.timed(|f| f.apply(op.clone())).expect("gc apply");
        ab_arm.timed(|f| f.apply(op)).expect("ablation apply");
        // ...one fresh in-filter DN, and the delete that retires the one
        // from `window` steps back.
        let add = UpdateOp::Add(
            Entry::new(churn_dn(step, cfg.countries))
                .with("objectclass", "person")
                .with("serialNumber", &serial(true, n_base + step)),
        );
        gc_arm.timed(|f| f.apply(add.clone())).expect("gc churn add");
        ab_arm.timed(|f| f.apply(add)).expect("ablation churn add");
        if step >= cfg.window {
            let del = UpdateOp::Delete(churn_dn(step - cfg.window, cfg.countries));
            gc_arm.timed(|f| f.apply(del.clone())).expect("gc churn delete");
            ab_arm.timed(|f| f.apply(del)).expect("ablation churn delete");
        }
        // The simulated clock ticks 1 ms per step on both arms; only
        // the gc arm has a deadline wired to it.
        let now = step as u64 + 1;
        gc_arm.timed(|f| f.advance_to(now));
        ab_arm.timed(|f| f.advance_to(now));

        // Poll cadence: each live session acks on its own phase.
        for s in 0..cfg.sessions {
            if step % cfg.poll_every != s % cfg.poll_every {
                continue;
            }
            let req = session_request(s, cfg.countries);
            let shard = map.shard_of(&country_dn(s % cfg.countries));
            let (ca, cb) = (gc_arm.cookies[s], ab_arm.cookies[s]);
            let a = gc_arm.timed(|f| f.shard_mut(shard).resync(&req, ReSyncControl::poll(ca)));
            let b = ab_arm.timed(|f| f.shard_mut(shard).resync(&req, ReSyncControl::poll(cb)));
            arms_equal &= a == b;
            assert_eq!(a, b, "poll diverged for session {s} at step {step}");
            polls_compared += 1;
            polls += 1;
            if polls % cfg.redeliver_every == 0 {
                // Redelivery probe: the same cookie again must replay
                // the same batch on both arms.
                let a2 =
                    gc_arm.timed(|f| f.shard_mut(shard).resync(&req, ReSyncControl::poll(ca)));
                let b2 =
                    ab_arm.timed(|f| f.shard_mut(shard).resync(&req, ReSyncControl::poll(cb)));
                arms_equal &= a2 == b2;
                assert_eq!(a2, b2, "redelivery diverged for session {s} at step {step}");
                polls_compared += 1;
            }
            if let Ok(resp) = a {
                gc_arm.cookies[s] = resp.cookie.or(gc_arm.cookies[s]);
            }
            if let Ok(resp) = b {
                ab_arm.cookies[s] = resp.cookie.or(ab_arm.cookies[s]);
            }
        }

        // Deterministic footprint sample (untimed — measurement, not
        // protocol work), then segment bookkeeping.
        seg.steps += 1;
        let boundary = (step + 1) * cfg.segments / cfg.updates;
        if step % cfg.sample_every == 0 || boundary > segments.len() {
            seg.gc_high_water_bytes =
                seg.gc_high_water_bytes.max(gc_arm.fleet.memory_footprint().total_bytes());
            seg.ablation_high_water_bytes = seg
                .ablation_high_water_bytes
                .max(ab_arm.fleet.memory_footprint().total_bytes());
        }
        if boundary > segments.len() {
            let (gw, aw) = (gc_arm.work - gc_mark, ab_arm.work - ab_mark);
            seg.gc_ops_per_sec = seg.steps as f64 / gw.as_secs_f64().max(1e-9);
            seg.ablation_ops_per_sec = seg.steps as f64 / aw.as_secs_f64().max(1e-9);
            gc_mark = gc_arm.work;
            ab_mark = ab_arm.work;
            segments.push(std::mem::replace(
                &mut seg,
                SoakSegment {
                    steps: 0,
                    gc_high_water_bytes: 0,
                    ablation_high_water_bytes: 0,
                    gc_ops_per_sec: 0.0,
                    ablation_ops_per_sec: 0.0,
                },
            ));
        }
    }

    // Final equivalence: the directories must agree entry for entry.
    let everyone = SearchRequest::from_root(Filter::parse("(objectclass=person)").expect("filter"));
    let (mut got_gc, mut got_ab) = (gc_arm.fleet.search(&everyone), ab_arm.fleet.search(&everyone));
    got_gc.sort_by(|a, b| a.dn().cmp(b.dn()));
    got_ab.sort_by(|a, b| a.dn().cmp(b.dn()));
    arms_equal &= got_gc == got_ab;
    assert_eq!(got_gc, got_ab, "final content diverged between arms");

    // One explicit final collection so the counters include everything
    // the deadline owes, then read the run's cumulative totals.
    gc_arm.fleet.collect_garbage();
    let sessions_evicted = gc_arm.counter("fbdr_resync_gc_sessions_evicted_total") as usize;
    let ids_recycled = gc_arm.counter("fbdr_resync_gc_ids_recycled_total") as usize;

    let gc_baseline_bytes = segments[1].gc_high_water_bytes;
    let gc_peak_bytes =
        segments[2..].iter().map(|s| s.gc_high_water_bytes).max().unwrap_or(0);
    let gc_high_water_ratio = gc_peak_bytes as f64 / gc_baseline_bytes.max(1) as f64;
    let ablation_monotonic = segments
        .windows(2)
        .all(|w| w[1].ablation_high_water_bytes >= w[0].ablation_high_water_bytes);
    let ablation_growth_x = segments.last().expect("segments").ablation_high_water_bytes as f64
        / segments[0].ablation_high_water_bytes.max(1) as f64;
    let gc_first = segments[1].gc_ops_per_sec;
    let gc_last = segments.last().expect("segments").gc_ops_per_sec;

    SoakReport {
        shards: cfg.shards,
        countries: cfg.countries,
        entries_per_country: cfg.entries_per_country,
        sessions: cfg.sessions,
        dead_sessions: cfg.dead_sessions,
        updates: cfg.updates,
        window: cfg.window,
        poll_every: cfg.poll_every,
        seed: cfg.seed,
        gc_baseline_bytes,
        gc_peak_bytes,
        gc_high_water_ratio,
        gc_flat: gc_high_water_ratio <= 1.10,
        ablation_growth_x,
        ablation_monotonic,
        gc_first_decile_ops_per_sec: gc_first,
        gc_last_segment_ops_per_sec: gc_last,
        throughput_sustain_ratio: gc_last / gc_first.max(1e-9),
        polls_compared,
        arms_equal,
        sessions_evicted,
        ids_recycled,
        final_stability_lag: gc_arm.fleet.stability_lag(),
        gc_final_bytes: gc_arm.fleet.memory_footprint().total_bytes(),
        ablation_final_bytes: ab_arm.fleet.memory_footprint().total_bytes(),
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reduced-scale smoke: all three gates hold and the arms agree.
    #[test]
    fn reduced_soak_holds_all_gates() {
        let cfg = SoakConfig {
            updates: 3_000,
            window: 64,
            entries_per_country: 20,
            sessions: 8,
            dead_sessions: 2,
            session_deadline_ms: 300,
            gc_every_ops: 64,
            sample_every: 16,
            ..SoakConfig::default()
        };
        let r = run(&cfg);
        assert!(r.arms_equal);
        assert!(r.gc_flat, "gc high-water ratio {}", r.gc_high_water_ratio);
        assert!(r.ablation_monotonic, "ablation high-water series decayed");
        assert!(
            r.ablation_growth_x > 1.5,
            "ablation barely grew ({}x) — the soak isn't generating garbage",
            r.ablation_growth_x
        );
        assert!(r.sessions_evicted >= cfg.dead_sessions, "deadline eviction never fired");
        assert!(r.ids_recycled > 0, "no interned ids were ever recycled");
    }
}
