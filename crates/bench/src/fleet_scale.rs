//! Fleet-scale persist-mode benchmark: 10k+ replica sessions against a
//! sharded master under the event-driven simulator, measuring answer
//! staleness and notification amplification with coalescing on and off.
//! Emits `BENCH_fleet.json`, gated on coalescing actually reducing
//! wakeups and on both arms converging to identical fleet content.
//!
//! Two workload scenarios run, each as a baseline/coalesced pair over
//! the *same* seeded op stream:
//!
//! * **steady** — one update every few simulated milliseconds, the
//!   paper's background-churn regime;
//! * **flash-crowd** — the whole update budget lands inside a short
//!   ramp, the regime where per-update notification melts the masters
//!   and coalescing pays for itself.
//!
//! Everything runs on the simulated clock: the report contains no wall
//! time, so the same seed writes a byte-identical `BENCH_fleet.json`
//! every run — reproducibility you can `diff`.

use fbdr_sim::{FleetConfig, FleetReport, FleetSim, Workload};
use fbdr_net::LinkProfile;
use fbdr_resync::NotifyPolicy;
use serde::Serialize;
use std::collections::BTreeMap;

/// Benchmark configuration: fleet shape plus the coalescing knobs under
/// ablation.
#[derive(Debug, Clone)]
pub struct FleetScaleConfig {
    /// Replica sessions in the fleet.
    pub replicas: usize,
    /// Sync-master shards (one country subtree each).
    pub shards: usize,
    /// Person entries per country.
    pub entries_per_shard: usize,
    /// Department values (one persistent filter per value per country).
    pub depts: usize,
    /// Workload updates per scenario.
    pub updates: usize,
    /// Steady-scenario inter-update gap, simulated ms.
    pub steady_interval_ms: u64,
    /// Flash-crowd ramp: all updates land inside this window, ms.
    pub flash_ramp_ms: u64,
    /// Coalesced arm: flush after this many raw updates per session.
    pub max_batch: u64,
    /// Coalesced arm: flush when the oldest queued update is this old.
    pub max_delay_ms: u64,
    /// Master flush-timer cadence, simulated ms.
    pub flush_interval_ms: u64,
    /// Master→replica link latency model.
    pub link: LinkProfile,
    /// Master seed (workload, tie-breaking, jitter).
    pub seed: u64,
}

impl Default for FleetScaleConfig {
    fn default() -> Self {
        FleetScaleConfig {
            replicas: 10_000,
            shards: 4,
            entries_per_shard: 200,
            depts: 8,
            updates: 1_000,
            steady_interval_ms: 5,
            flash_ramp_ms: 100,
            max_batch: 32,
            max_delay_ms: 250,
            flush_interval_ms: 10,
            link: LinkProfile::jittered(2, 6),
            seed: 42,
        }
    }
}

/// One scenario's baseline/coalesced pair and its ablation verdict.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioReport {
    /// Per-update wakeups (degenerate coalescing: batch of 1, no delay).
    pub baseline: FleetReport,
    /// Batched/coalesced wakeups under the configured knobs.
    pub coalesced: FleetReport,
    /// `baseline.wakeups / coalesced.wakeups` — the ablation headline.
    pub wakeup_reduction_x: f64,
    /// Both arms ran the same op stream; did they converge to the same
    /// fleet content, entry set for entry set?
    pub content_equal: bool,
}

/// The full benchmark report serialized to `BENCH_fleet.json`.
#[derive(Debug, Clone, Serialize)]
pub struct FleetScaleReport {
    /// Replica sessions per run.
    pub replicas: usize,
    /// Shards per run.
    pub shards: usize,
    /// Entries per country.
    pub entries_per_shard: usize,
    /// Departments (filter groups per country).
    pub depts: usize,
    /// Updates per scenario.
    pub updates: usize,
    /// Coalesced arm's max-batch knob.
    pub max_batch: u64,
    /// Coalesced arm's max-delay knob, ms.
    pub max_delay_ms: u64,
    /// Master seed.
    pub seed: u64,
    /// `steady` and `flash` scenario results.
    pub scenarios: BTreeMap<String, ScenarioReport>,
}

fn fleet_config(cfg: &FleetScaleConfig, workload: Workload, policy: NotifyPolicy) -> FleetConfig {
    FleetConfig {
        replicas: cfg.replicas,
        shards: cfg.shards,
        entries_per_shard: cfg.entries_per_shard,
        depts: cfg.depts,
        updates: cfg.updates,
        workload,
        policy,
        flush_interval_ms: cfg.flush_interval_ms,
        link: cfg.link,
        link_drop_per_mille: 0,
        gc_every_ms: 0,
        queries: 0,
        seed: cfg.seed,
    }
}

fn run_scenario(cfg: &FleetScaleConfig, workload: Workload) -> ScenarioReport {
    let baseline =
        FleetSim::new(fleet_config(cfg, workload, NotifyPolicy::coalescing(1, 0))).run();
    let coalesced = FleetSim::new(fleet_config(
        cfg,
        workload,
        NotifyPolicy::coalescing(cfg.max_batch, cfg.max_delay_ms),
    ))
    .run();
    let wakeup_reduction_x = if coalesced.wakeups == 0 {
        0.0
    } else {
        baseline.wakeups as f64 / coalesced.wakeups as f64
    };
    let content_equal = baseline.content_digest == coalesced.content_digest;
    ScenarioReport { baseline, coalesced, wakeup_reduction_x, content_equal }
}

/// Runs both scenarios, both arms each.
pub fn run(cfg: &FleetScaleConfig) -> FleetScaleReport {
    let mut scenarios = BTreeMap::new();
    scenarios.insert(
        "steady".to_owned(),
        run_scenario(cfg, Workload::Steady { interval_ms: cfg.steady_interval_ms }),
    );
    scenarios.insert(
        "flash".to_owned(),
        run_scenario(cfg, Workload::FlashCrowd { ramp_ms: cfg.flash_ramp_ms }),
    );
    FleetScaleReport {
        replicas: cfg.replicas,
        shards: cfg.shards,
        entries_per_shard: cfg.entries_per_shard,
        depts: cfg.depts,
        updates: cfg.updates,
        max_batch: cfg.max_batch,
        max_delay_ms: cfg.max_delay_ms,
        seed: cfg.seed,
        scenarios,
    }
}
