//! The `ldapsim` interactive sandbox: a master directory plus a
//! filter-based replica, driven by simple text commands.
//!
//! The command interpreter lives here (testable); the `ldapsim` binary is
//! a thin stdin loop around [`Shell::run_command`].

use fbdr_dit::{Modification, UpdateOp};
use fbdr_ldap::{Filter, SearchRequest, SortKey};
use fbdr_replica::FilterReplica;
use fbdr_resync::SyncMaster;
use fbdr_workload::{DirectoryConfig, EnterpriseDirectory};
use std::fmt::Write as _;

/// Interactive sandbox state: one master, one filter replica.
#[derive(Debug)]
pub struct Shell {
    master: SyncMaster,
    replica: FilterReplica,
    wan_queries: u64,
}

/// Outcome of one command.
#[derive(Debug, PartialEq, Eq)]
pub enum ShellOutcome {
    /// Text to print.
    Output(String),
    /// The user asked to exit.
    Quit,
}

impl Default for Shell {
    fn default() -> Self {
        Shell::new()
    }
}

impl Shell {
    /// Creates an empty sandbox (empty master, 100-query cache).
    pub fn new() -> Self {
        Shell { master: SyncMaster::new(), replica: FilterReplica::new(100), wan_queries: 0 }
    }

    /// Executes one command line.
    pub fn run_command(&mut self, line: &str) -> ShellOutcome {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return ShellOutcome::Output(String::new());
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        let out = match cmd {
            "help" => HELP.to_owned(),
            "quit" | "exit" => return ShellOutcome::Quit,
            "gen" => self.cmd_gen(rest),
            "import" => self.cmd_import(rest),
            "export" => self.cmd_export(rest),
            "search" => self.cmd_search(rest, false),
            "rsearch" => self.cmd_search(rest, true),
            "sort" => self.cmd_sort(rest),
            "install" => self.cmd_install(rest),
            "drop" => self.cmd_drop(rest),
            "filters" => self.cmd_filters(),
            "update" => self.cmd_update(rest),
            "delete" => self.cmd_delete(rest),
            "sync" => self.cmd_sync(),
            "stats" => self.cmd_stats(),
            other => format!("unknown command {other:?}; try `help`"),
        };
        ShellOutcome::Output(out)
    }

    fn cmd_gen(&mut self, rest: &str) -> String {
        let employees = rest.parse::<usize>().unwrap_or(2_000);
        let dir = EnterpriseDirectory::generate(DirectoryConfig {
            employees,
            ..DirectoryConfig::small()
        });
        let (dit, _) = dir.into_parts();
        let entries = dit.len();
        self.master = SyncMaster::with_dit(dit);
        self.replica = FilterReplica::new(100);
        self.wan_queries = 0;
        format!("generated enterprise directory: {entries} entries ({employees} employees)")
    }

    fn cmd_import(&mut self, path: &str) -> String {
        if path.is_empty() {
            return "usage: import <file.ldif>".to_owned();
        }
        match std::fs::read_to_string(path) {
            Ok(text) => match self.master.dit_mut().import_ldif(&text) {
                Ok(n) => format!("imported {n} entries from {path}"),
                Err(e) => format!("import failed: {e}"),
            },
            Err(e) => format!("cannot read {path}: {e}"),
        }
    }

    fn cmd_export(&mut self, path: &str) -> String {
        let text = self.master.dit().export_ldif(None);
        if path.is_empty() {
            return text;
        }
        match std::fs::write(path, &text) {
            Ok(()) => format!("exported {} entries to {path}", self.master.dit().len()),
            Err(e) => format!("cannot write {path}: {e}"),
        }
    }

    fn parse_query(&self, rest: &str) -> Result<SearchRequest, String> {
        let (filter_str, base) = match rest.split_once(char::is_whitespace) {
            Some((f, b)) => (f, b.trim()),
            None => (rest, ""),
        };
        let filter = Filter::parse(filter_str).map_err(|e| e.to_string())?;
        if base.is_empty() {
            Ok(SearchRequest::from_root(filter))
        } else {
            let dn = base.parse().map_err(|e| format!("{e}"))?;
            Ok(SearchRequest::new(dn, fbdr_ldap::Scope::Subtree, filter))
        }
    }

    fn cmd_search(&mut self, rest: &str, via_replica: bool) -> String {
        let req = match self.parse_query(rest) {
            Ok(r) => r,
            Err(e) => return e,
        };
        let (entries, served) = if via_replica {
            match self.replica.try_answer(&req) {
                Some(es) => (es, "replica (hit)"),
                None => {
                    self.wan_queries += 1;
                    let es = self.master.dit().search(&req);
                    self.replica.cache_query(req.clone(), &es);
                    (es, "master (miss, result cached)")
                }
            }
        } else {
            (self.master.dit().search(&req), "master")
        };
        let mut out = format!("{} entr{} from {served}\n", entries.len(), plural(entries.len()));
        for e in entries.iter().take(20) {
            let _ = writeln!(out, "  {}", e.dn());
        }
        if entries.len() > 20 {
            let _ = writeln!(out, "  … {} more", entries.len() - 20);
        }
        out
    }

    fn cmd_sort(&mut self, rest: &str) -> String {
        let Some((filter_str, attr)) = rest.split_once(char::is_whitespace) else {
            return "usage: sort <filter> <attr>".to_owned();
        };
        let filter = match Filter::parse(filter_str) {
            Ok(f) => f,
            Err(e) => return e.to_string(),
        };
        let req = SearchRequest::from_root(filter);
        let entries = self
            .master
            .dit()
            .search_sorted(&req, &[SortKey::ascending(attr.trim())]);
        let mut out = format!("{} entr{} sorted by {attr}\n", entries.len(), plural(entries.len()));
        for e in entries.iter().take(20) {
            let v = e
                .first_value(&attr.trim().into())
                .map(|v| v.raw().to_owned())
                .unwrap_or_else(|| "-".to_owned());
            let _ = writeln!(out, "  {v:<16} {}", e.dn());
        }
        out
    }

    fn cmd_install(&mut self, rest: &str) -> String {
        let req = match self.parse_query(rest) {
            Ok(r) => r,
            Err(e) => return e,
        };
        match self.replica.install_filter(&mut self.master, req) {
            Ok(t) => format!("installed; {} entries loaded", t.full_entries),
            Err(e) => format!("install failed: {e}"),
        }
    }

    fn cmd_drop(&mut self, rest: &str) -> String {
        let req = match self.parse_query(rest) {
            Ok(r) => r,
            Err(e) => return e,
        };
        if self.replica.remove_filter(&mut self.master, &req) {
            "filter removed".to_owned()
        } else {
            "no such stored filter".to_owned()
        }
    }

    fn cmd_filters(&mut self) -> String {
        let mut out = String::new();
        let mut n = 0;
        for (req, hits) in self.replica.filters() {
            let _ = writeln!(out, "  {hits:>6} hits  {}", req.filter());
            n += 1;
        }
        if n == 0 {
            out = "no stored filters (use `install <filter>`)".to_owned();
        }
        out
    }

    fn cmd_update(&mut self, rest: &str) -> String {
        let parts: Vec<&str> = rest.splitn(3, ' ').collect();
        let [dn, attr, value] = parts.as_slice() else {
            return "usage: update <dn> <attr> <value>".to_owned();
        };
        let dn = match dn.parse() {
            Ok(d) => d,
            Err(e) => return format!("{e}"),
        };
        match self.master.apply(UpdateOp::Modify {
            dn,
            mods: vec![Modification::Replace((*attr).into(), vec![(*value).into()])],
        }) {
            Ok(rec) => format!("modified ({})", rec.csn),
            Err(e) => format!("update failed: {e}"),
        }
    }

    fn cmd_delete(&mut self, rest: &str) -> String {
        let dn = match rest.parse() {
            Ok(d) => d,
            Err(e) => return format!("{e}"),
        };
        match self.master.apply(UpdateOp::Delete(dn)) {
            Ok(rec) => format!("deleted ({})", rec.csn),
            Err(e) => format!("delete failed: {e}"),
        }
    }

    fn cmd_sync(&mut self) -> String {
        match self.replica.sync(&mut self.master) {
            Ok(t) => format!(
                "synced: {} full entries, {} DN-only PDUs, {} bytes",
                t.full_entries, t.dn_only, t.bytes
            ),
            Err(e) => format!("sync failed: {e}"),
        }
    }

    fn cmd_stats(&mut self) -> String {
        let s = self.replica.stats();
        let e = self.replica.engine_stats();
        format!(
            "master: {} entries, csn {}\n\
             replica: {} entries, {} filters, {} cached queries\n\
             queries: {} total, {} hits ({} generalized, {} cached), hit ratio {:.3}\n\
             wan queries forwarded: {}\n\
             containment checks: {} ({} same-template, {} compiled, {} skipped, {} general)",
            self.master.dit().len(),
            self.master.dit().csn(),
            self.replica.entry_count(),
            self.replica.filter_count(),
            self.replica.cached_query_count(),
            s.queries,
            s.hits,
            s.generalized_hits,
            s.cache_hits,
            s.hit_ratio(),
            self.wan_queries,
            e.total(),
            e.same_template,
            e.compiled,
            e.skipped_never,
            e.general,
        )
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}

const HELP: &str = "\
commands:
  gen [employees]          generate a synthetic enterprise directory
  import <file.ldif>       load LDIF into the master
  export [file.ldif]       dump the master as LDIF (stdout if no file)
  search <filter> [base]   search the master directly
  rsearch <filter> [base]  query via the replica (miss -> master + cache)
  sort <filter> <attr>     master search, server-side sorted (RFC 2891)
  install <filter> [base]  replicate a filter (ReSync session)
  drop <filter> [base]     remove a replicated filter
  filters                  list stored filters with hit counts
  update <dn> <attr> <v>   replace an attribute at the master
  delete <dn>              delete a (leaf) entry at the master
  sync                     poll the master for all filters
  stats                    master/replica/hit-ratio/engine statistics
  help | quit";

#[cfg(test)]
mod tests {
    use super::*;

    fn out(shell: &mut Shell, cmd: &str) -> String {
        match shell.run_command(cmd) {
            ShellOutcome::Output(s) => s,
            ShellOutcome::Quit => panic!("unexpected quit"),
        }
    }

    #[test]
    fn end_to_end_session() {
        let mut sh = Shell::new();
        assert!(out(&mut sh, "gen 500").contains("500 employees"));
        // Install the hottest serial block and query through the replica.
        let o = out(&mut sh, "install (serialNumber=1000*)");
        assert!(o.contains("entries loaded"), "{o}");
        let o = out(&mut sh, "rsearch (serialNumber=100003)");
        assert!(o.contains("replica (hit)"), "{o}");
        let o = out(&mut sh, "rsearch (serialNumber=999999)");
        assert!(o.contains("master (miss"), "{o}");
        // Repeat of the miss now hits the cache.
        let o = out(&mut sh, "rsearch (serialNumber=999999)");
        assert!(o.contains("replica (hit)"), "{o}");
        let o = out(&mut sh, "stats");
        assert!(o.contains("hit ratio"), "{o}");
        assert!(out(&mut sh, "filters").contains("serialNumber=1000"));
    }

    #[test]
    fn update_sync_flow() {
        let mut sh = Shell::new();
        out(&mut sh, "gen 200");
        out(&mut sh, "install (serialNumber=1000*)");
        let o = out(&mut sh, "search (serialNumber=100001)");
        let dn_line = o.lines().nth(1).expect("one result").trim().to_owned();
        let o = out(&mut sh, &format!("update {dn_line} mail changed@x"));
        assert!(o.contains("modified"), "{o}");
        let o = out(&mut sh, "sync");
        assert!(o.contains("1 full entries"), "{o}");
        let o = out(&mut sh, "rsearch (mail=changed@x)");
        // mail query is not contained in the serial filter -> miss.
        assert!(o.contains("miss"), "{o}");
    }

    #[test]
    fn errors_are_messages_not_panics() {
        let mut sh = Shell::new();
        assert!(out(&mut sh, "search not-a-filter").contains("invalid filter"));
        assert!(out(&mut sh, "update nonsense").contains("usage"));
        assert!(out(&mut sh, "delete cn=ghost,o=none").contains("failed"));
        assert!(out(&mut sh, "bogus").contains("unknown command"));
        assert!(out(&mut sh, "drop (a=1)").contains("no such stored filter"));
        assert_eq!(sh.run_command("quit"), ShellOutcome::Quit);
    }

    #[test]
    fn export_round_trips_via_tempfile() {
        let mut sh = Shell::new();
        out(&mut sh, "gen 100");
        let dump = out(&mut sh, "export");
        assert!(dump.contains("dn: o=xyz"));
        // Fresh shell imports the dump.
        let path = std::env::temp_dir().join("fbdr-shell-test.ldif");
        std::fs::write(&path, &dump).expect("write temp file");
        let mut sh2 = Shell::new();
        let o = out(&mut sh2, &format!("import {}", path.display()));
        assert!(o.contains("imported"), "{o}");
        let _ = std::fs::remove_file(&path);
    }
}
