//! Multi-threaded read-throughput benchmark for the read/write-split
//! replica: N reader threads issue trace queries against one shared
//! [`FilterReplica`] (no external lock) while a writer thread applies
//! updates at the master and runs sync cycles. Emits
//! `BENCH_throughput.json`.
//!
//! # What the numbers mean
//!
//! The benchmark is **closed-loop with a per-query service latency**:
//! each reader sleeps `service_us` per query (network + client-side work a
//! real deployment pays) in addition to the in-process answering cost,
//! then issues the next query. Under the old architecture every reader
//! serialized behind one replica-wide mutex *including that latency*, so
//! aggregate throughput stayed flat as threads were added — the
//! `serialized` baseline below reproduces exactly that by wrapping
//! sleep + answer in one lock. The snapshot-based replica overlaps
//! readers' service time, so aggregate throughput scales with the thread
//! count until cores or the answering CPU cost saturate.
//!
//! With `service_us = 0` the benchmark degenerates to pure CPU, where
//! scaling is bounded by the machine's core count (a single-core runner
//! shows ~1× regardless of architecture); the report records the pure-CPU
//! numbers too, flagged as such.

use crate::setup::{Params, Scale};
use fbdr_core::experiment::select_static_filters;
use fbdr_ldap::SearchRequest;
use fbdr_obs::{HistogramSnapshot, Obs};
use fbdr_replica::FilterReplica;
use fbdr_resync::{SyncDriver, SyncMaster};
use fbdr_selection::generalize::{Generalizer, ValuePrefix};
use fbdr_workload::EnterpriseDirectory;
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Experiment scale (directory + trace size).
    pub scale: Scale,
    /// Total queries per run (split across the reader threads, so every
    /// run answers the same workload).
    pub total_queries: usize,
    /// Reader thread counts to measure (must include 1 for the speedup).
    pub thread_counts: Vec<usize>,
    /// Simulated per-query service latency in microseconds (0 = pure CPU).
    pub service_us: u64,
    /// Filter-selection entry budget as a fraction of person entries.
    pub budget_frac: f64,
    /// Run a concurrent writer (updates + sync cycles) during each run.
    pub writer: bool,
}

impl ThroughputConfig {
    /// The default measurement: 1 vs 4 readers, 200 µs service latency,
    /// concurrent writer on.
    pub fn new(scale: Scale) -> Self {
        let total_queries = match scale {
            Scale::Small => 4_000,
            Scale::Paper => 20_000,
            Scale::Large | Scale::Xl => 50_000,
        };
        ThroughputConfig {
            scale,
            total_queries,
            thread_counts: vec![1, 4],
            service_us: 200,
            budget_frac: 0.2,
            writer: true,
        }
    }
}

/// One measured run.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// Architecture measured: `concurrent` (snapshot reads, no external
    /// lock) or `serialized` (one mutex around sleep + answer — the old
    /// design).
    pub mode: String,
    /// Reader thread count.
    pub threads: usize,
    /// Simulated per-query service latency (µs); 0 = pure CPU.
    pub service_us: u64,
    /// Queries answered (hits + misses).
    pub queries: u64,
    /// Queries answered locally.
    pub hits: u64,
    /// Wall-clock duration of the run in milliseconds.
    pub elapsed_ms: f64,
    /// Aggregate throughput in queries/second.
    pub qps: f64,
    /// Sync cycles the concurrent writer completed during the run.
    pub writer_cycles: u64,
    /// Update operations the writer applied at the master.
    pub writer_updates: u64,
}

/// The emitted `BENCH_throughput.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputReport {
    /// Scale name the benchmark ran at.
    pub scale: String,
    /// Queries per run.
    pub total_queries: usize,
    /// Per-query service latency of the headline runs (µs).
    pub service_us: u64,
    /// Stored generalized filters installed.
    pub filters: usize,
    /// Replica entries after install.
    pub replica_entries: usize,
    /// Headline runs (latency-bound, concurrent + serialized baseline).
    pub runs: Vec<RunResult>,
    /// Pure-CPU runs (`service_us = 0`) for reference; scaling here is
    /// bounded by available cores, not by the replica architecture.
    pub cpu_bound_runs: Vec<RunResult>,
    /// Single-thread throughput of the headline concurrent runs (qps).
    pub single_thread_qps: f64,
    /// Max-thread throughput of the headline concurrent runs (qps).
    pub multi_thread_qps: f64,
    /// `multi_thread_qps / single_thread_qps`.
    pub speedup: f64,
    /// Same ratio for the serialized baseline (≈1.0: the old architecture
    /// cannot overlap service latency across readers).
    pub serialized_speedup: f64,
    /// Per-stage latency histograms accumulated across every run
    /// (`fbdr_replica_try_answer_ns`, `fbdr_containment_check_ns`,
    /// `fbdr_resync_exchange_ns`), as p50/p90/p99/max nanosecond
    /// summaries.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

fn serial_generalizers() -> Vec<Box<dyn Generalizer + Send>> {
    vec![Box::new(ValuePrefix::new("serialNumber", vec![5, 4, 3]))]
}

/// Shared fixture: the directory, the evaluation trace and the frozen
/// filter selection (built once; each run re-installs into a fresh
/// replica so every run starts from identical content).
struct Fixture {
    dir: EnterpriseDirectory,
    trace: Vec<SearchRequest>,
    filters: Vec<SearchRequest>,
    updates: Vec<fbdr_dit::UpdateOp>,
}

impl Fixture {
    fn build(cfg: &ThroughputConfig) -> Fixture {
        let params = Params::new(cfg.scale);
        let dir = params.directory();
        let (day1, day2) = params.two_days(&dir);
        let budget = (cfg.budget_frac * dir.employee_count() as f64) as usize;
        let filters = select_static_filters(dir.dit(), &day1, serial_generalizers(), budget);
        let trace: Vec<SearchRequest> = day2
            .iter()
            .map(|q| q.request.clone())
            .cycle()
            .take(cfg.total_queries)
            .collect();
        let updates = params.updates(&dir);
        Fixture { dir, trace, filters, updates }
    }

    /// Builds a fresh master/replica pair recording into `obs` (pass
    /// [`Obs::off`] for an uninstrumented pair).
    fn fresh_replica(&self, obs: Obs) -> (SyncMaster, FilterReplica) {
        let mut master = SyncMaster::with_dit(self.dir.dit().clone());
        master.set_obs(obs.clone());
        let replica = FilterReplica::with_obs(32, obs);
        for f in &self.filters {
            replica
                .install_filter(&mut master, f.clone())
                .expect("fresh master accepts filters");
        }
        (master, replica)
    }
}

/// Runs the readers (and optionally the writer) against one replica.
///
/// `serialized` reproduces the pre-redesign architecture: one mutex is
/// held across the service sleep *and* the answer, exactly like the old
/// `Mutex<FilterReplica>` node; the writer contends on the same lock.
fn run_once(
    fixture: &Fixture,
    cfg: &ThroughputConfig,
    threads: usize,
    serialized: bool,
    obs: &Obs,
) -> RunResult {
    let (master, replica) = fixture.fresh_replica(obs.clone());
    // Stats bound to a shared registry accumulate across runs; measure
    // this run as a delta.
    let queries_before = replica.stats().queries;
    let big_lock = Mutex::new(());
    let stop = AtomicBool::new(false);
    let hits = AtomicU64::new(0);
    let writer_cycles = AtomicU64::new(0);
    let writer_updates = AtomicU64::new(0);
    let service = Duration::from_micros(cfg.service_us);

    let start = Instant::now();
    std::thread::scope(|s| {
        let mut readers = Vec::with_capacity(threads);
        for t in 0..threads {
            let replica = &replica;
            let big_lock = &big_lock;
            let hits = &hits;
            let trace = &fixture.trace;
            readers.push(s.spawn(move || {
                let mut local_hits = 0u64;
                // Striped partition: thread t answers queries t, t+N, …
                // so every run covers the same total workload.
                for q in trace.iter().skip(t).step_by(threads) {
                    let answered = if serialized {
                        let _g = big_lock.lock();
                        if !service.is_zero() {
                            std::thread::sleep(service);
                        }
                        replica.try_answer(q).is_some()
                    } else {
                        if !service.is_zero() {
                            std::thread::sleep(service);
                        }
                        replica.try_answer(q).is_some()
                    };
                    if answered {
                        local_hits += 1;
                    }
                }
                hits.fetch_add(local_hits, Ordering::Relaxed);
            }));
        }
        if cfg.writer {
            let replica = &replica;
            let big_lock = &big_lock;
            let stop = &stop;
            let writer_cycles = &writer_cycles;
            let writer_updates = &writer_updates;
            let updates = &fixture.updates;
            let mut master = master;
            let obs = obs.clone();
            s.spawn(move || {
                let mut driver = SyncDriver::default().with_obs(obs);
                let mut next = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    // One small update batch, then a sync cycle — the
                    // write path the readers must not serialize behind.
                    for _ in 0..8 {
                        if let Some(op) = updates.get(next) {
                            let _ = master.apply(op.clone());
                            writer_updates.fetch_add(1, Ordering::Relaxed);
                            next += 1;
                        } else {
                            next = 0;
                        }
                    }
                    let guard = serialized.then(|| big_lock.lock());
                    let _ = replica.sync_with(&mut master, &mut driver);
                    drop(guard);
                    writer_cycles.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
        for r in readers {
            r.join().expect("reader thread panicked");
        }
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed();

    let queries = replica.stats().queries - queries_before;
    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    RunResult {
        mode: if serialized { "serialized" } else { "concurrent" }.into(),
        threads,
        service_us: cfg.service_us,
        queries,
        hits: hits.load(Ordering::Relaxed),
        elapsed_ms,
        qps: queries as f64 / elapsed.as_secs_f64(),
        writer_cycles: writer_cycles.load(Ordering::Relaxed),
        writer_updates: writer_updates.load(Ordering::Relaxed),
    }
}

/// Runs the full benchmark: headline latency-bound runs (concurrent and
/// serialized baseline at every thread count) plus pure-CPU reference
/// runs, and computes the speedups.
pub fn run(cfg: &ThroughputConfig) -> ThroughputReport {
    let fixture = Fixture::build(cfg);
    // One registry accumulates per-stage latency histograms across every
    // run; the report carries their snapshots.
    let obs = Obs::new();
    let (_, probe) = fixture.fresh_replica(Obs::off());
    let filters = probe.filter_count();
    let replica_entries = probe.entry_count();

    let mut runs = Vec::new();
    for &threads in &cfg.thread_counts {
        runs.push(run_once(&fixture, cfg, threads, false, &obs));
    }
    for &threads in &cfg.thread_counts {
        runs.push(run_once(&fixture, cfg, threads, true, &obs));
    }

    // Pure-CPU reference (no simulated latency, writer off so the runs
    // measure raw answering cost only).
    let cpu_cfg = ThroughputConfig { service_us: 0, writer: false, ..cfg.clone() };
    let cpu_bound_runs: Vec<RunResult> = cfg
        .thread_counts
        .iter()
        .map(|&threads| run_once(&fixture, &cpu_cfg, threads, false, &obs))
        .collect();

    let single = runs
        .iter()
        .find(|r| r.mode == "concurrent" && r.threads == 1)
        .map(|r| r.qps)
        .unwrap_or(f64::NAN);
    let multi = runs
        .iter()
        .filter(|r| r.mode == "concurrent")
        .map(|r| r.qps)
        .fold(f64::NAN, f64::max);
    let ser_single = runs
        .iter()
        .find(|r| r.mode == "serialized" && r.threads == 1)
        .map(|r| r.qps)
        .unwrap_or(f64::NAN);
    let ser_multi = runs
        .iter()
        .filter(|r| r.mode == "serialized")
        .map(|r| r.qps)
        .fold(f64::NAN, f64::max);

    ThroughputReport {
        scale: format!("{:?}", cfg.scale).to_lowercase(),
        total_queries: cfg.total_queries,
        service_us: cfg.service_us,
        filters,
        replica_entries,
        runs,
        cpu_bound_runs,
        single_thread_qps: single,
        multi_thread_qps: multi,
        speedup: multi / single,
        serialized_speedup: ser_multi / ser_single,
        histograms: obs.registry().snapshot().histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shape-only check at a tiny scale: the report carries every run,
    /// queries are conserved, and the JSON serializes. (The ≥2.5×
    /// speedup itself is asserted by the `throughput` binary / CI smoke
    /// job, not here, to keep unit tests timing-independent.)
    #[test]
    fn report_shape_and_conservation() {
        let cfg = ThroughputConfig {
            total_queries: 200,
            thread_counts: vec![1, 2],
            service_us: 50,
            ..ThroughputConfig::new(Scale::Small)
        };
        let report = run(&cfg);
        assert_eq!(report.runs.len(), 4); // 2 concurrent + 2 serialized
        assert_eq!(report.cpu_bound_runs.len(), 2);
        for r in report.runs.iter().chain(&report.cpu_bound_runs) {
            assert_eq!(r.queries, 200, "every run answers the whole trace");
            assert!(r.hits <= r.queries);
            assert!(r.qps > 0.0);
        }
        // The writer made progress during the headline runs.
        assert!(report.runs.iter().any(|r| r.writer_cycles > 0));
        assert!(report.speedup.is_finite());
        // Per-stage latency histograms are populated: every query passed
        // through try_answer, and the writer's sync cycles drove resync
        // exchanges.
        let answer = &report.histograms["fbdr_replica_try_answer_ns"];
        assert!(answer.count >= 200 * 6, "all runs recorded: {}", answer.count);
        assert!(answer.p99 >= answer.p50);
        assert!(report.histograms.contains_key("fbdr_resync_exchange_ns"));
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"single_thread_qps\""));
        assert!(json.contains("\"fbdr_replica_try_answer_ns\""));
    }
}
