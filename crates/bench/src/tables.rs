//! Table 1, the §7.2(c) "other queries" analysis, the §5.2 sync-traffic
//! ablation and the §7.4 processing-overhead study.

use crate::setup::Params;
use fbdr_containment::filter_contained;
use fbdr_core::experiment::{replay_filter, ReplayConfig};
use fbdr_core::Replicator;
use fbdr_ldap::{Filter, Scope, SearchRequest};
use fbdr_resync::baseline::{
    divergence, ChangelogSync, FullReload, NaiveChangelogSync, RetainSync, Synchronizer,
    TombstoneSync,
};
use fbdr_resync::{ReSyncControl, ReplicaContent, SyncMaster, SyncTraffic};
use fbdr_selection::generalize::{ConstantRegion, Generalizer, ValuePrefix};
use fbdr_selection::{FilterSelector, SelectorConfig};
use fbdr_workload::{distribution, QueryKind, TracedQuery, UpdateConfig, UpdateGenerator};
use std::time::Instant;

/// Table 1: expected vs measured workload distribution.
pub fn table1(params: &Params) -> Vec<(String, f64, f64)> {
    let dir = params.directory();
    let (day1, _) = params.two_days(&dir);
    let dist = distribution(&day1);
    QueryKind::TABLE1
        .iter()
        .zip(dist)
        .map(|((kind, expected), (_, measured))| {
            (kind.template().to_owned(), *expected, measured)
        })
        .collect()
}

/// One row of the §7.2(c) analysis.
#[derive(Debug, Clone)]
pub struct OtherQueriesRow {
    /// Query type analysed.
    pub kind: String,
    /// Stored filters used.
    pub stored_filters: usize,
    /// Replica entries used.
    pub replica_entries: usize,
    /// Achieved hit ratio for that query type.
    pub hit_ratio: f64,
    /// Commentary matching the paper's finding.
    pub note: &'static str,
}

/// §7.2(c): mail queries generalize poorly (the user part is not
/// organized); the whole location tree is replicated for a hit ratio of
/// 1 at negligible size.
pub fn other_queries(params: &Params) -> Vec<OtherQueriesRow> {
    let dir = params.directory();
    let (day1, day2) = params.two_days(&dir);
    let mut rows = Vec::new();
    let no_updates = ReplayConfig { sync_every: 0, update_every: 0 };
    let k = *params.filter_counts.last().expect("non-empty sweep");

    // Serial baseline: same number of filters, for contrast.
    for (kind, gens, note) in [
        (
            QueryKind::SerialNumber,
            vec![Box::new(ValuePrefix::new("serialNumber", vec![5, 4])) as Box<dyn Generalizer + Send>],
            "organized values -> prefixes capture hot regions",
        ),
        (
            QueryKind::Mail,
            vec![Box::new(ValuePrefix::new("mail", vec![6, 4, 3])) as Box<dyn Generalizer + Send>],
            "user part unorganized -> prefixes capture noise",
        ),
    ] {
        let day1k: Vec<TracedQuery> = day1.iter().filter(|q| q.kind == kind).cloned().collect();
        let day2k: Vec<TracedQuery> = day2.iter().filter(|q| q.kind == kind).cloned().collect();
        let mut selector = FilterSelector::new(
            SelectorConfig {
                revolution_interval: u64::MAX,
                entry_budget: usize::MAX,
                max_candidates: 1 << 20,
            },
            gens,
        );
        for tq in &day1k {
            selector.observe(&tq.request);
        }
        let ranked = selector.ranked_candidates(dir.dit());
        let mut repl = Replicator::new(SyncMaster::with_dit(dir.dit().clone()), 0);
        for (f, _, _) in ranked.into_iter().take(k) {
            repl.install_filter(f).expect("fresh master accepts filters");
        }
        let stored = repl.replica().filter_count();
        let entries = repl.replica().entry_count();
        let out = replay_filter(&mut repl, &day2k, &[], no_updates);
        rows.push(OtherQueriesRow {
            kind: kind.template().to_owned(),
            stored_filters: stored,
            replica_entries: entries,
            hit_ratio: out.overall.hit_ratio(),
            note,
        });
    }

    // Location: one region filter covering the whole location tree.
    let region = SearchRequest::from_root(Filter::parse("(location=*)").expect("static"));
    let rule = ConstantRegion::new("location", region.clone());
    let _ = rule; // the rule exists for dynamic use; here we install directly
    let day2k: Vec<TracedQuery> =
        day2.iter().filter(|q| q.kind == QueryKind::Location).cloned().collect();
    let mut repl = Replicator::new(SyncMaster::with_dit(dir.dit().clone()), 0);
    repl.install_filter(region).expect("fresh master accepts filters");
    let entries = repl.replica().entry_count();
    let out = replay_filter(&mut repl, &day2k, &[], no_updates);
    rows.push(OtherQueriesRow {
        kind: QueryKind::Location.template().to_owned(),
        stored_filters: 1,
        replica_entries: entries,
        hit_ratio: out.overall.hit_ratio(),
        note: "small hot tree replicated whole -> hit ratio 1",
    });
    rows
}

/// One row of the §5.2 synchronization ablation.
#[derive(Debug, Clone)]
pub struct SyncAblationRow {
    /// Strategy name.
    pub strategy: String,
    /// Full-entry PDUs shipped over the run.
    pub full_entries: u64,
    /// DN-only PDUs shipped.
    pub dn_only: u64,
    /// Estimated bytes shipped.
    pub bytes: u64,
    /// DNs diverging from the master at the end (0 = converged).
    pub diverged: usize,
}

/// §5.2: ReSync vs changelog/tombstone/retain/full-reload traffic for one
/// replicated filter over an update stream, plus the naive changelog's
/// convergence failure.
pub fn sync_ablation(params: &Params) -> Vec<SyncAblationRow> {
    let dir = params.directory();
    let (day1, _) = params.two_days(&dir);

    // Pick the hottest serial region as the replicated filter.
    let mut selector = FilterSelector::new(
        SelectorConfig {
            revolution_interval: u64::MAX,
            entry_budget: usize::MAX,
            max_candidates: 1 << 20,
        },
        vec![Box::new(ValuePrefix::new("serialNumber", vec![3]))],
    );
    for tq in &day1 {
        selector.observe(&tq.request);
    }
    let ranked = selector.ranked_candidates(dir.dit());
    let request = ranked.first().map(|(r, _, _)| r.clone()).unwrap_or_else(|| {
        SearchRequest::new(
            "o=xyz".parse().expect("static"),
            Scope::Subtree,
            Filter::parse("(serialNumber=1*)").expect("static"),
        )
    });

    let updates = UpdateGenerator::new(&dir).generate(&UpdateConfig {
        ops: params.updates_per_day,
        ..UpdateConfig::default()
    });
    let cycles = 10usize;
    let chunk = updates.len().div_ceil(cycles);

    // One master; every strategy consumes the same history.
    let mut master = SyncMaster::with_dit(dir.dit().clone());

    // ReSync session.
    let resp = master.resync(&request, ReSyncControl::poll(None)).expect("initial resync");
    let mut cookie = resp.cookie.expect("cookie issued");
    let mut resync_content = ReplicaContent::new();
    resync_content.apply_all(&resp.actions);
    let mut resync_traffic = SyncTraffic::default(); // steady-state only

    // Baselines.
    let mut baselines: Vec<(Box<dyn Synchronizer>, ReplicaContent, SyncTraffic)> = vec![
        (Box::new(RetainSync::default()), ReplicaContent::new(), SyncTraffic::default()),
        (Box::new(TombstoneSync::default()), ReplicaContent::new(), SyncTraffic::default()),
        (Box::new(ChangelogSync::default()), ReplicaContent::new(), SyncTraffic::default()),
        (Box::new(FullReload), ReplicaContent::new(), SyncTraffic::default()),
    ];
    // Initial loads (not counted: every strategy pays the same bootstrap).
    for (s, content, _) in &mut baselines {
        let _ = s.sync(master.dit(), &request, content);
    }
    // The naive changelog consumer is bootstrapped with a full load and
    // reads the log only from there — the realistic §5.2 setting.
    let mut naive_content = ReplicaContent::new();
    FullReload.sync(master.dit(), &request, &mut naive_content);
    let mut naive = NaiveChangelogSync::starting_at(master.dit().csn());
    let mut naive_traffic = SyncTraffic::default();

    for part in updates.chunks(chunk.max(1)) {
        for op in part {
            let _ = master.apply(op.clone());
        }
        let resp = master.resync(&request, ReSyncControl::poll(Some(cookie))).expect("poll");
        cookie = resp.cookie.expect("cookie issued");
        resync_traffic.absorb(&resp.traffic());
        resync_content.apply_all(&resp.actions);
        for (s, content, traffic) in &mut baselines {
            traffic.absorb(&s.sync(master.dit(), &request, content));
        }
        naive_traffic.absorb(&naive.sync(master.dit(), &request, &mut naive_content));
    }

    let mut rows = vec![SyncAblationRow {
        strategy: "resync (session history)".to_owned(),
        full_entries: resync_traffic.full_entries,
        dn_only: resync_traffic.dn_only,
        bytes: resync_traffic.bytes,
        diverged: divergence(master.dit(), &request, &resync_content).len(),
    }];
    for (s, content, traffic) in &baselines {
        rows.push(SyncAblationRow {
            strategy: s.name().to_owned(),
            full_entries: traffic.full_entries,
            dn_only: traffic.dn_only,
            bytes: traffic.bytes,
            diverged: divergence(master.dit(), &request, content).len(),
        });
    }
    rows.push(SyncAblationRow {
        strategy: "naive-changelog (non-convergent)".to_owned(),
        full_entries: naive_traffic.full_entries,
        dn_only: naive_traffic.dn_only,
        bytes: naive_traffic.bytes,
        diverged: divergence(master.dit(), &request, &naive_content).len(),
    });
    rows
}

/// One row of the §6.2 selection-strategy ablation.
#[derive(Debug, Clone)]
pub struct SelectionAblationRow {
    /// Strategy name.
    pub strategy: String,
    /// Dept-query hit ratio on the measured day.
    pub hit_ratio: f64,
    /// Filter installs over the run (each costs a content load).
    pub installs: u64,
    /// Content-load traffic in entries.
    pub load_entries: u64,
}

/// §6.2: periodic benefit/size revolutions versus the per-query
/// evolution/revolution scheme of \[12\]. Evolutions track the pattern a
/// little better but churn the stored filter list constantly — unsuitable
/// when every install costs a content transfer.
pub fn selection_ablation(params: &Params) -> Vec<SelectionAblationRow> {
    use fbdr_core::experiment::{replay_filter, ReplayConfig as RC};
    use fbdr_replica::FilterReplica;
    use fbdr_selection::generalize::{Identity, WidenToPresence};
    use fbdr_selection::EvolutionSelector;

    let dir = params.directory();
    let (day1, day2) = params.two_days(&dir);
    let dept_day1: Vec<TracedQuery> =
        day1.iter().filter(|q| q.kind == QueryKind::DeptDiv).cloned().collect();
    let dept_day2: Vec<TracedQuery> =
        day2.iter().filter(|q| q.kind == QueryKind::DeptDiv).cloned().collect();
    let budget = dir.departments().len() / 3;
    let mut rows = Vec::new();

    // Periodic revolutions (the paper's scheme).
    {
        let r = params.r_small / 6; // dept-only stream is ~1/6 of the mix
        let selector = fbdr_selection::FilterSelector::new(
            SelectorConfig {
                revolution_interval: r.max(1),
                entry_budget: budget.max(1),
                max_candidates: 4096,
            },
            vec![Box::new(WidenToPresence::new("dept")), Box::new(Identity::new())],
        );
        let mut repl = Replicator::new(SyncMaster::with_dit(dir.dit().clone()), 0)
            .with_selector(selector);
        let _ = replay_filter(&mut repl, &dept_day1, &[], RC { sync_every: 0, update_every: 0 });
        let out = replay_filter(&mut repl, &dept_day2, &[], RC { sync_every: 0, update_every: 0 });
        let report = repl.report();
        rows.push(SelectionAblationRow {
            strategy: format!("periodic revolutions (R={})", r.max(1)),
            hit_ratio: out.overall.hit_ratio(),
            installs: report.revolutions, // one batch of installs per revolution
            load_entries: report.revolution_traffic.full_entries,
        });
    }

    // Per-query evolutions ([12]).
    {
        let mut master = SyncMaster::with_dit(dir.dit().clone());
        let mut replica = FilterReplica::new(0);
        let mut evo = EvolutionSelector::new(
            vec![Box::new(WidenToPresence::new("dept")), Box::new(Identity::new())],
            budget.max(1),
            0.98,
            0.5,
        );
        for tq in &dept_day1 {
            let _ = evo.observe(&tq.request, &mut master, &mut replica);
            let _ = replica.try_answer(&tq.request);
        }
        replica.reset_stats();
        for tq in &dept_day2 {
            let _ = evo.observe(&tq.request, &mut master, &mut replica);
            let _ = replica.try_answer(&tq.request);
        }
        let rep = evo.report();
        rows.push(SelectionAblationRow {
            strategy: "per-query evolutions [12]".to_owned(),
            hit_ratio: replica.stats().hit_ratio(),
            installs: rep.installs,
            load_entries: rep.traffic.full_entries,
        });
    }
    rows
}

/// One row of the union-composition extension study.
#[derive(Debug, Clone)]
pub struct CompositionRow {
    /// Stored serial-prefix filters.
    pub filters: usize,
    /// Hit ratio with single-filter containment (the paper's rule).
    pub single: f64,
    /// Hit ratio when queries may be answered from the union of stored
    /// filters (this library's extension).
    pub composed: f64,
}

/// Extension study: batched OR lookups — `(|(serialNumber=a)(…))`, the
/// address-book pattern of fetching several people at once — are rarely
/// contained in any *single* stored filter, but often in the union of a
/// few. Measures the hit-ratio gain from union composition.
pub fn composition(params: &Params) -> Vec<CompositionRow> {
    use fbdr_replica::FilterReplica;
    let dir = params.directory();
    let (day1, day2) = params.two_days(&dir);

    // Build the batch-OR stream from consecutive day-2 serial queries.
    let serials: Vec<String> = day2
        .iter()
        .filter(|q| q.kind == QueryKind::SerialNumber)
        .map(|q| {
            let f = q.request.filter().to_string();
            f.trim_start_matches("(serialNumber=").trim_end_matches(')').to_owned()
        })
        .collect();
    let batches: Vec<SearchRequest> = serials
        .chunks(3)
        .take(4_000)
        .filter(|c| c.len() == 3)
        .map(|c| {
            let f = format!(
                "(|(serialNumber={})(serialNumber={})(serialNumber={}))",
                c[0], c[1], c[2]
            );
            SearchRequest::from_root(Filter::parse(&f).expect("generated filter"))
        })
        .collect();

    // Rank serial-prefix candidates from the recent part of day 1.
    let recent = &day1[day1.len() - day1.len() / 3..];
    let mut selector = FilterSelector::new(
        SelectorConfig {
            revolution_interval: u64::MAX,
            entry_budget: usize::MAX,
            max_candidates: 1 << 20,
        },
        vec![Box::new(ValuePrefix::new("serialNumber", vec![5, 4]))],
    );
    for tq in recent {
        selector.observe(&tq.request);
    }
    let ranked: Vec<SearchRequest> =
        selector.ranked_candidates(dir.dit()).into_iter().map(|(r, _, _)| r).collect();

    let mut rows = Vec::new();
    for &k in &params.filter_counts {
        let single_replica = FilterReplica::new(0);
        let composed_replica = FilterReplica::new(0);
        let mut m1 = SyncMaster::with_dit(dir.dit().clone());
        let mut m2 = SyncMaster::with_dit(dir.dit().clone());
        for f in ranked.iter().take(k) {
            single_replica.install_filter(&mut m1, f.clone()).expect("fresh master");
            composed_replica.install_filter(&mut m2, f.clone()).expect("fresh master");
        }
        let mut single_hits = 0usize;
        let mut composed_hits = 0usize;
        for q in &batches {
            if single_replica.try_answer(q).is_some() {
                single_hits += 1;
            }
            if composed_replica.try_answer_composed(q).is_some() {
                composed_hits += 1;
            }
        }
        rows.push(CompositionRow {
            filters: k,
            single: single_hits as f64 / batches.len().max(1) as f64,
            composed: composed_hits as f64 / batches.len().max(1) as f64,
        });
    }
    rows
}

/// One row of the §7.4 overhead study.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Stored filters in the replica.
    pub filters: usize,
    /// Nanoseconds per query through the template-dispatching engine.
    pub engine_ns: f64,
    /// Nanoseconds per query through the general (Prop 1) procedure
    /// against every stored filter.
    pub brute_ns: f64,
    /// Same-template checks performed.
    pub same_template: u64,
    /// Compiled cross-template evaluations.
    pub compiled: u64,
    /// Pairs skipped as never-containing.
    pub skipped_never: u64,
    /// General-procedure fallbacks.
    pub general: u64,
}

/// §7.4: query-processing overhead is proportional to the number of
/// stored filters, and template dispatch keeps the per-check cost minor.
pub fn overheads(params: &Params) -> Vec<OverheadRow> {
    let dir = params.directory();
    let (_, day2) = params.two_days(&dir);
    let queries: Vec<TracedQuery> = day2
        .iter()
        .filter(|q| q.kind == QueryKind::SerialNumber)
        .take(4_000)
        .cloned()
        .collect();

    let mut rows = Vec::new();
    for &n in &params.filter_counts {
        // n distinct serial-prefix filters (length-5 blocks).
        let stored: Vec<SearchRequest> = (0..n)
            .map(|i| {
                SearchRequest::from_root(
                    Filter::parse(&format!("(serialNumber={:05}*)", 10_000 + i))
                        .expect("generated filter"),
                )
            })
            .collect();

        let mut repl = Replicator::new(SyncMaster::with_dit(dir.dit().clone()), 0);
        for f in &stored {
            repl.install_filter(f.clone()).expect("fresh master accepts filters");
        }
        let t0 = Instant::now();
        for q in &queries {
            let _ = repl.search(&q.request);
        }
        let engine_ns = t0.elapsed().as_nanos() as f64 / queries.len() as f64;
        let stats = repl.replica().engine_stats();

        // Brute force: the general procedure against every stored filter.
        let stored_filters: Vec<Filter> =
            stored.iter().map(|r| r.filter().clone()).collect();
        let t0 = Instant::now();
        let mut brute_hits = 0usize;
        for q in &queries {
            if stored_filters
                .iter()
                .any(|f| filter_contained(q.request.filter(), f).is_contained())
            {
                brute_hits += 1;
            }
        }
        let brute_ns = t0.elapsed().as_nanos() as f64 / queries.len() as f64;
        let _ = brute_hits;

        rows.push(OverheadRow {
            filters: n,
            engine_ns,
            brute_ns,
            same_template: stats.same_template,
            compiled: stats.compiled,
            skipped_never: stats.skipped_never,
            general: stats.general,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::Scale;

    #[test]
    fn table1_matches_mix() {
        let rows = table1(&Params::new(Scale::Small));
        assert_eq!(rows.len(), 4);
        for (_, expected, measured) in &rows {
            assert!((expected - measured).abs() < 0.05);
        }
    }

    #[test]
    fn other_queries_shapes() {
        let rows = other_queries(&Params::new(Scale::Small));
        let serial = &rows[0];
        let mail = &rows[1];
        let location = &rows[2];
        assert!(
            serial.hit_ratio > mail.hit_ratio,
            "serial {} should beat mail {}",
            serial.hit_ratio,
            mail.hit_ratio
        );
        assert!((location.hit_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn selection_ablation_shows_evolution_churn() {
        let rows = selection_ablation(&Params::new(Scale::Small));
        let periodic = &rows[0];
        let evolution = &rows[1];
        // The paper's §6.2 point: per-query evolutions churn the stored
        // filter list far more than periodic revolutions, costing content
        // loads on every swap.
        assert!(
            evolution.installs > periodic.installs * 5,
            "evolutions {} vs revolutions {}",
            evolution.installs,
            periodic.installs
        );
        assert!(evolution.load_entries > periodic.load_entries);
        assert!(periodic.hit_ratio > 0.0);
    }

    #[test]
    fn composition_extension_helps_or_batches() {
        let rows = composition(&Params::new(Scale::Small));
        for r in &rows {
            assert!(
                r.composed >= r.single,
                "composition should never lose hits: {} vs {} at {} filters",
                r.composed,
                r.single,
                r.filters
            );
        }
        let last = rows.last().expect("rows");
        assert!(
            last.composed > last.single + 0.2,
            "composition should win clearly at {} filters: {} vs {}",
            last.filters,
            last.composed,
            last.single
        );
    }

    #[test]
    fn sync_ablation_shapes() {
        let rows = sync_ablation(&Params::new(Scale::Small));
        let by_name = |n: &str| {
            rows.iter()
                .find(|r| r.strategy.starts_with(n))
                .unwrap_or_else(|| panic!("strategy {n} missing"))
        };
        let resync = by_name("resync");
        let reload = by_name("full-reload");
        let tomb = by_name("tombstone");
        let _naive = by_name("naive-changelog");
        assert_eq!(resync.diverged, 0);
        assert_eq!(reload.diverged, 0);
        assert_eq!(tomb.diverged, 0);
        // ReSync ships no more full entries than any convergent scheme and
        // far fewer bytes than full reload.
        assert!(resync.full_entries <= reload.full_entries);
        assert!(resync.bytes < reload.bytes);
        assert!(resync.dn_only <= tomb.dn_only);
    }
}
