//! Shared experiment setup: scales, directory/trace construction.

use fbdr_workload::{
    DirectoryConfig, EnterpriseDirectory, TraceConfig, TracedQuery, TraceGenerator, UpdateConfig,
    UpdateGenerator,
};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny: CI/integration-test sized (seconds).
    Small,
    /// The default reproduction scale (tens of seconds per figure in a
    /// release build): 20k employees, 50k queries per "day".
    Paper,
    /// Large: 100k employees, 100k queries per day (minutes per figure);
    /// approaches the paper's half-million-entry directory in spirit.
    Large,
    /// Extra-large: 2M employees — past the paper's directory and into
    /// sharded-master territory. Minutes to generate; bench-only.
    Xl,
}

impl Scale {
    /// Parses `small` / `paper`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "paper" | "default" => Some(Scale::Paper),
            "large" => Some(Scale::Large),
            "xl" => Some(Scale::Xl),
            _ => None,
        }
    }
}

/// Derived experiment parameters for a scale.
#[derive(Debug, Clone)]
pub struct Params {
    /// Directory generation config.
    pub dir: DirectoryConfig,
    /// Queries per simulated day.
    pub day_queries: usize,
    /// The paper's two revolution intervals (Figures 5, 7), scaled.
    pub r_small: u64,
    /// Larger (slower) revolution interval.
    pub r_large: u64,
    /// Replica-size sweep as fractions of the person-entry count.
    pub size_fractions: Vec<f64>,
    /// Stored-filter-count sweep (Figures 8–9).
    pub filter_counts: Vec<usize>,
    /// Updates interleaved into a day's replay.
    pub updates_per_day: usize,
    /// Queries between replica sync polls.
    pub sync_every: usize,
}

impl Params {
    /// Parameters for a scale.
    pub fn new(scale: Scale) -> Params {
        match scale {
            Scale::Small => Params {
                dir: DirectoryConfig::small(),
                day_queries: 4_000,
                r_small: 600,
                r_large: 1_000,
                size_fractions: vec![0.05, 0.1, 0.2, 0.4],
                filter_counts: vec![10, 25, 50, 100],
                updates_per_day: 400,
                sync_every: 200,
            },
            Scale::Paper => Params {
                dir: DirectoryConfig::default(),
                day_queries: 50_000,
                r_small: 6_000,
                r_large: 10_000,
                size_fractions: vec![0.02, 0.05, 0.1, 0.2, 0.3, 0.4],
                filter_counts: vec![12, 25, 50, 100, 200, 400],
                updates_per_day: 3_000,
                sync_every: 500,
            },
            Scale::Large => Params {
                dir: DirectoryConfig {
                    employees: 100_000,
                    countries: 40,
                    geography_countries: 4,
                    divisions: 20,
                    depts_per_division: 50,
                    locations: 250,
                    ..DirectoryConfig::default()
                },
                day_queries: 100_000,
                r_small: 6_000,
                r_large: 10_000,
                size_fractions: vec![0.02, 0.05, 0.1, 0.2, 0.3, 0.4],
                filter_counts: vec![25, 50, 100, 200, 400, 800],
                updates_per_day: 6_000,
                sync_every: 500,
            },
            Scale::Xl => Params {
                dir: DirectoryConfig::xl(),
                day_queries: 200_000,
                r_small: 6_000,
                r_large: 10_000,
                size_fractions: vec![0.02, 0.05, 0.1, 0.2, 0.3, 0.4],
                filter_counts: vec![25, 50, 100, 200, 400, 800],
                updates_per_day: 12_000,
                sync_every: 500,
            },
        }
    }

    /// Generates the directory.
    pub fn directory(&self) -> EnterpriseDirectory {
        EnterpriseDirectory::generate(self.dir.clone())
    }

    /// Trace config for a given day (day 0 trains, day 1 evaluates).
    pub fn trace_config(&self, day: u64) -> TraceConfig {
        TraceConfig {
            seed: 0x7ACE + day * 7919,
            queries: self.day_queries,
            ..TraceConfig::default()
        }
    }

    /// Generates the two-day workload as one continuous trace split at
    /// the day boundary, so popularity drift and temporal locality carry
    /// over from the training day into the evaluation day (as they would
    /// in the paper's real two-day capture).
    pub fn two_days(&self, dir: &EnterpriseDirectory) -> (Vec<TracedQuery>, Vec<TracedQuery>) {
        let cfg = TraceConfig { queries: self.day_queries * 2, ..self.trace_config(0) };
        let gen = TraceGenerator::new(dir, &cfg);
        let mut both = gen.generate(dir, &cfg);
        let day2 = both.split_off(self.day_queries);
        (both, day2)
    }

    /// Generates the update stream for one day.
    pub fn updates(&self, dir: &EnterpriseDirectory) -> Vec<fbdr_dit::UpdateOp> {
        UpdateGenerator::new(dir).generate(&UpdateConfig {
            ops: self.updates_per_day,
            ..UpdateConfig::default()
        })
    }

    /// How often (in queries) to draw one update so the whole stream is
    /// consumed over a day.
    pub fn update_every(&self) -> usize {
        (self.day_queries / self.updates_per_day.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn small_params_generate_quickly() {
        let p = Params::new(Scale::Small);
        let dir = p.directory();
        let (d1, d2) = p.two_days(&dir);
        assert_eq!(d1.len(), p.day_queries);
        assert_eq!(d2.len(), p.day_queries);
        // Different days differ.
        assert!(d1.iter().zip(&d2).any(|(a, b)| a.request != b.request));
        assert_eq!(p.updates(&dir).len(), p.updates_per_day);
        assert!(p.update_every() >= 1);
    }
}
