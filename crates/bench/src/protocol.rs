//! Figure 2 (distributed operation processing) and Figure 3 (a ReSync
//! session) as runnable walkthroughs.

use fbdr_dit::{DitStore, Modification, NamingContext, UpdateOp};
use fbdr_ldap::{Dn, Entry, Filter, Rdn, Scope, SearchRequest};
use fbdr_net::{Network, Server};
use fbdr_resync::{ReSyncControl, SyncAction, SyncMaster};

fn dn(s: &str) -> Dn {
    s.parse().expect("static dn")
}

/// Builds the three-server `o=xyz` deployment of Figure 2.
pub fn figure2_network() -> Network {
    let mut net = Network::new();

    let mut dit_a = DitStore::new();
    dit_a.add_suffix(dn("o=xyz"));
    dit_a
        .add(Entry::new(dn("o=xyz")).with("objectclass", "organization"))
        .expect("fresh store");
    dit_a
        .add(Entry::new(dn("c=us,o=xyz")).with("objectclass", "country"))
        .expect("fresh store");
    dit_a
        .add(
            Entry::new(dn("cn=Fred Jones,c=us,o=xyz"))
                .with("objectclass", "person")
                .with("cn", "Fred Jones"),
        )
        .expect("fresh store");
    let ctx_a = NamingContext::new(dn("o=xyz"))
        .with_referral(dn("ou=research,c=us,o=xyz"), "ldap://hostB")
        .with_referral(dn("c=in,o=xyz"), "ldap://hostC");
    net.add_server(Server::new("ldap://hostA", dit_a, vec![ctx_a], None));

    let mut dit_b = DitStore::new();
    dit_b.add_suffix(dn("ou=research,c=us,o=xyz"));
    dit_b
        .add(Entry::new(dn("ou=research,c=us,o=xyz")).with("objectclass", "organizationalUnit"))
        .expect("fresh store");
    for name in ["John Doe", "Carl Miller", "John Smith"] {
        dit_b
            .add(
                Entry::new(dn(&format!("cn={name},ou=research,c=us,o=xyz")))
                    .with("objectclass", "person")
                    .with("cn", name),
            )
            .expect("fresh store");
    }
    net.add_server(Server::new(
        "ldap://hostB",
        dit_b,
        vec![NamingContext::new(dn("ou=research,c=us,o=xyz"))],
        Some("ldap://hostA".into()),
    ));

    let mut dit_c = DitStore::new();
    dit_c.add_suffix(dn("c=in,o=xyz"));
    dit_c
        .add(Entry::new(dn("c=in,o=xyz")).with("objectclass", "country"))
        .expect("fresh store");
    dit_c
        .add(
            Entry::new(dn("cn=Asha Rao,c=in,o=xyz"))
                .with("objectclass", "person")
                .with("cn", "Asha Rao"),
        )
        .expect("fresh store");
    net.add_server(Server::new(
        "ldap://hostC",
        dit_c,
        vec![NamingContext::new(dn("c=in,o=xyz"))],
        Some("ldap://hostA".into()),
    ));
    net
}

/// One row of the Figure 2 cost table.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Scenario label.
    pub scenario: String,
    /// Round trips the operation needed.
    pub round_trips: u64,
    /// Referral PDUs received.
    pub referrals: u64,
    /// Entries returned.
    pub entries: u64,
    /// Elapsed time under the default WAN cost model (ms).
    pub elapsed_ms: f64,
}

/// Reproduces the Figure 2 walkthrough: the referral-chased subtree search
/// versus a direct (single-context) search.
pub fn fig2() -> Vec<Fig2Row> {
    let net = figure2_network();
    let req = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::match_all());
    let mut rows = Vec::new();

    let mut client = net.client();
    let r = client.search("ldap://hostB", &req).expect("figure 2 network resolves");
    rows.push(Fig2Row {
        scenario: "subtree search from hostB (paper walkthrough)".into(),
        round_trips: r.stats.round_trips,
        referrals: r.stats.referrals_received,
        entries: r.stats.entries_returned,
        elapsed_ms: net.cost_model().elapsed_ms(r.stats.round_trips),
    });

    let mut client = net.client();
    let r = client.search("ldap://hostA", &req).expect("figure 2 network resolves");
    rows.push(Fig2Row {
        scenario: "same search sent to hostA directly".into(),
        round_trips: r.stats.round_trips,
        referrals: r.stats.referrals_received,
        entries: r.stats.entries_returned,
        elapsed_ms: net.cost_model().elapsed_ms(r.stats.round_trips),
    });

    let mut client = net.client();
    let local = SearchRequest::new(dn("ou=research,c=us,o=xyz"), Scope::Subtree, Filter::match_all());
    let r = client.search("ldap://hostB", &local).expect("figure 2 network resolves");
    rows.push(Fig2Row {
        scenario: "search answerable by one server".into(),
        round_trips: r.stats.round_trips,
        referrals: r.stats.referrals_received,
        entries: r.stats.entries_returned,
        elapsed_ms: net.cost_model().elapsed_ms(r.stats.round_trips),
    });
    rows
}

/// Reproduces the Figure 3 message sequence chart; returns the PDU lines
/// of each phase.
pub fn fig3() -> Vec<(String, Vec<String>)> {
    let mut m = SyncMaster::new();
    m.dit_mut().add_suffix(dn("o=xyz"));
    m.dit_mut().add(Entry::new(dn("o=xyz"))).expect("fresh store");
    for cn in ["E1", "E2", "E3"] {
        m.dit_mut()
            .add(
                Entry::new(dn(&format!("cn={cn},o=xyz")))
                    .with("objectclass", "person")
                    .with("dept", "7"),
            )
            .expect("fresh store");
    }
    let s = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::parse("(dept=7)").expect("static"));
    let mut phases = Vec::new();

    let resp = m.resync(&s, ReSyncControl::poll(None)).expect("initial resync");
    let cookie = resp.cookie.expect("cookie issued");
    phases.push((
        "S, (poll, null)".to_owned(),
        resp.actions.iter().map(|a| a.to_string()).chain(["cookie".to_owned()]).collect(),
    ));

    m.apply(UpdateOp::Add(
        Entry::new(dn("cn=E4,o=xyz")).with("objectclass", "person").with("dept", "7"),
    ))
    .expect("valid op");
    m.apply(UpdateOp::Delete(dn("cn=E1,o=xyz"))).expect("valid op");
    m.apply(UpdateOp::Modify {
        dn: dn("cn=E2,o=xyz"),
        mods: vec![Modification::Replace("dept".into(), vec!["9".into()])],
    })
    .expect("valid op");
    m.apply(UpdateOp::Modify {
        dn: dn("cn=E3,o=xyz"),
        mods: vec![Modification::Replace("mail".into(), vec!["e3@xyz.com".into()])],
    })
    .expect("valid op");

    let resp = m.resync(&s, ReSyncControl::poll(Some(cookie))).expect("poll");
    let cookie1 = resp.cookie.expect("cookie issued");
    phases.push((
        "S, (poll, cookie)".to_owned(),
        resp.actions.iter().map(|a| a.to_string()).chain(["cookie1".to_owned()]).collect(),
    ));

    let (resp, rx) = m.resync_persist(&s, Some(cookie1)).expect("persist");
    let mut lines: Vec<String> = resp.actions.iter().map(|a| a.to_string()).collect();
    m.apply(UpdateOp::ModifyDn {
        dn: dn("cn=E3,o=xyz"),
        new_rdn: Rdn::new("cn", "E5"),
        new_superior: None,
    })
    .expect("valid op");
    let notes: Vec<SyncAction> = rx.try_iter().flat_map(|b| b.actions).collect();
    lines.extend(notes.iter().map(|a| a.to_string()));
    lines.push("abandon".to_owned());
    phases.push(("S, (persist, cookie1)".to_owned(), lines));
    m.abandon(cookie1);
    phases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shows_four_round_trips() {
        let rows = fig2();
        assert_eq!(rows[0].round_trips, 4);
        assert_eq!(rows[1].round_trips, 3);
        assert_eq!(rows[2].round_trips, 1);
        assert!(rows[0].elapsed_ms > rows[2].elapsed_ms);
        // All scenarios eventually return the full result where applicable.
        assert_eq!(rows[0].entries, 9);
        assert_eq!(rows[1].entries, 9);
    }

    #[test]
    fn fig3_phases_match_paper() {
        let phases = fig3();
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[0].1.iter().filter(|l| l.ends_with("add")).count(), 3);
        let poll: &Vec<String> = &phases[1].1;
        assert!(poll.iter().any(|l| l == "cn=E4,o=xyz, add"));
        assert!(poll.iter().any(|l| l == "cn=E1,o=xyz, delete"));
        assert!(poll.iter().any(|l| l == "cn=E2,o=xyz, delete"));
        assert!(poll.iter().any(|l| l == "cn=E3,o=xyz, mod"));
        let persist: &Vec<String> = &phases[2].1;
        assert!(persist.iter().any(|l| l == "cn=E3,o=xyz, delete"));
        assert!(persist.iter().any(|l| l == "cn=E5,o=xyz, add"));
        assert_eq!(persist.last().map(String::as_str), Some("abandon"));
    }
}
