//! Adaptation ablation over the adversarial scenario matrix: periodic
//! revolutions (§6.2) vs the per-query evolution baseline (\[12\]) vs the
//! budgeted online revolution, with a train-on-the-end-state oracle as
//! the quality ceiling.
//!
//! Every arm replays the *same* seeded [`Scenario`] event schedule
//! (queries interleaved with master updates) against its own master, so
//! hit ratios, install churn and traffic are directly comparable. The
//! oracle arm trains a frozen selection on the final phase's queries and
//! replays only that phase — the quality a selector could reach if it
//! had known the end state in advance.
//!
//! Gates (the committed `BENCH_selection.json` must pass all three):
//!
//! 1. **adaptation** — per scenario, the online arm's final-phase hit
//!    ratio reaches ≥ 90% of the oracle's (with a 2-point absolute slack
//!    so noise-level ratios on the cache-buster scenario don't produce
//!    spurious verdicts);
//! 2. **churn** — summed over scenarios, online installs ≤ ⅓ of the
//!    evolution baseline's;
//! 3. **bounded moves** — no online step ever exceeds the move budget,
//!    and the consideration set stays a strict subset of the candidate
//!    table (no full-set recompute on the hot path), as recorded by the
//!    `fbdr_selection_revolve_moves` / `fbdr_selection_step_considered`
//!    histograms.

use fbdr_core::experiment::{replay_filter, select_static_filters, ReplayConfig};
use fbdr_core::{Replicator, ServedBy};
use fbdr_obs::Obs;
use fbdr_replica::FilterReplica;
use fbdr_resync::{SyncDriver, SyncMaster, SystemClock};
use fbdr_selection::generalize::{Generalizer, ValuePrefix, WidenToPresence};
use fbdr_selection::{
    EvolutionSelector, FilterSelector, OnlineConfig, OnlineSelector, SelectorConfig,
};
use fbdr_workload::{
    DirectoryConfig, EnterpriseDirectory, Scenario, ScenarioConfig, ScenarioKind, TracedQuery,
    WorkloadEvent,
};
use serde::{Deserialize, Serialize};

/// Parameters of one adaptation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptConfig {
    /// Scenario names to run (see [`ScenarioKind::name`]); empty = all.
    pub scenarios: Vec<String>,
    /// Queries per scenario phase.
    pub queries_per_phase: usize,
    /// Replica entry budget, every arm.
    pub entry_budget: usize,
    /// Queries between replica sync polls.
    pub sync_every: usize,
    /// Periodic arm: queries between batch revolutions.
    pub revolution_interval: u64,
    /// Online arm: queries between budgeted steps.
    pub step_every: u64,
    /// Online arm: max promote/evict moves per step.
    pub move_budget: usize,
    /// Use the small (1.2k entry) directory instead of the default 20k.
    pub small_directory: bool,
    /// Scenario seed.
    pub seed: u64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            scenarios: Vec::new(),
            queries_per_phase: 6000,
            entry_budget: 1200,
            sync_every: 500,
            revolution_interval: 600,
            step_every: 60,
            move_budget: 4,
            small_directory: false,
            seed: 0xADA7,
        }
    }
}

/// One arm's outcome on one scenario.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ArmOutcome {
    /// Queries replayed.
    pub queries: u64,
    /// Queries answered by the replica.
    pub hits: u64,
    /// `hits / queries`.
    pub hit_ratio: f64,
    /// Final-phase queries.
    pub final_queries: u64,
    /// Final-phase replica answers.
    pub final_hits: u64,
    /// `final_hits / final_queries` — end-state quality.
    pub final_hit_ratio: f64,
    /// Filter installs (each costs a content load).
    pub installs: u64,
    /// Filter evictions.
    pub evictions: u64,
    /// Batch revolutions / online steps / evolutions performed.
    pub adaptations: u64,
    /// Content-load traffic, full entries.
    pub install_entries: u64,
    /// ReSync poll traffic, full entries.
    pub resync_entries: u64,
}

impl ArmOutcome {
    fn seal(mut self) -> Self {
        self.hit_ratio = self.hits as f64 / self.queries.max(1) as f64;
        self.final_hit_ratio = self.final_hits as f64 / self.final_queries.max(1) as f64;
        self
    }
}

/// All arms on one scenario, plus the online-specific hot-path evidence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Phases in the schedule.
    pub phases: usize,
    /// Total queries replayed per arm.
    pub queries: usize,
    /// Master updates interleaved.
    pub updates: usize,
    /// Periodic batch revolutions (§6.2).
    pub periodic: ArmOutcome,
    /// Per-query evolution baseline (\[12\]).
    pub evolution: ArmOutcome,
    /// Budgeted online revolution (this PR).
    pub online: ArmOutcome,
    /// Oracle: frozen train-on-final-phase selection replaying the final
    /// phase — `final_hit_ratio` is the only meaningful field.
    pub oracle_final_hit_ratio: f64,
    /// Oracle filters installed.
    pub oracle_filters: usize,
    /// `online.final_hit_ratio / oracle_final_hit_ratio` (1.0 when the
    /// oracle found nothing to replicate).
    pub online_vs_oracle: f64,
    /// Largest single-step move count (must stay ≤ the move budget).
    pub online_max_moves: usize,
    /// Largest consideration set of any step.
    pub online_max_considered: usize,
    /// Candidate-table size at end of run — `online_max_considered`
    /// strictly below this is the no-full-recompute evidence.
    pub online_candidates: usize,
    /// Samples in the `fbdr_selection_revolve_moves` histogram (== steps).
    pub revolve_moves_samples: u64,
}

/// Gate verdicts over the whole run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdaptGates {
    /// Every scenario: online final-phase ratio ≥ 0.9×oracle (−0.02 slack).
    pub adaptation_ok: bool,
    /// Σ online installs ≤ Σ evolution installs / 3.
    pub churn_ok: bool,
    /// Moves bounded by budget and consideration sets below the table.
    pub bounded_ok: bool,
}

/// The full report written to `BENCH_selection.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptReport {
    /// Echo of the configuration.
    pub config: AdaptConfig,
    /// One outcome per scenario.
    pub scenarios: Vec<ScenarioOutcome>,
    /// Σ online installs across scenarios.
    pub online_installs_total: u64,
    /// Σ evolution installs across scenarios.
    pub evolution_installs_total: u64,
    /// `online_installs_total / evolution_installs_total`.
    pub install_ratio: f64,
    /// Gate verdicts.
    pub gates: AdaptGates,
}

fn gens() -> Vec<Box<dyn Generalizer + Send>> {
    vec![
        Box::new(ValuePrefix::new("serialNumber", vec![4])),
        Box::new(WidenToPresence::new("dept")),
    ]
}

fn directory(cfg: &AdaptConfig) -> EnterpriseDirectory {
    let dc = if cfg.small_directory { DirectoryConfig::small() } else { DirectoryConfig::default() };
    EnterpriseDirectory::generate(dc)
}

fn kinds(cfg: &AdaptConfig) -> Vec<ScenarioKind> {
    if cfg.scenarios.is_empty() {
        ScenarioKind::ALL.to_vec()
    } else {
        cfg.scenarios
            .iter()
            .map(|s| ScenarioKind::parse(s).unwrap_or_else(|| panic!("unknown scenario {s:?}")))
            .collect()
    }
}

/// Replays the schedule against a [`Replicator`] (periodic or online arm).
fn drive_replicator(
    mut r: Replicator,
    scenario: &Scenario,
    cfg: &AdaptConfig,
) -> (ArmOutcome, Replicator) {
    let final_start = scenario.final_phase_first_query() as u64;
    let mut out = ArmOutcome::default();
    for ev in &scenario.events {
        match ev {
            WorkloadEvent::Query(tq) => {
                let idx = out.queries;
                let (_, served) = r.search(&tq.request);
                out.queries += 1;
                let hit = served == ServedBy::Replica;
                out.hits += u64::from(hit);
                if idx >= final_start {
                    out.final_queries += 1;
                    out.final_hits += u64::from(hit);
                }
                if cfg.sync_every > 0 && out.queries % cfg.sync_every as u64 == 0 {
                    let _ = r.sync();
                }
            }
            WorkloadEvent::Update(op) => {
                let _ = r.apply_update(op.clone());
            }
        }
    }
    let _ = r.sync();
    let rep = r.report();
    out.install_entries = rep.revolution_traffic.full_entries;
    out.resync_entries = rep.resync_traffic.full_entries;
    (out.seal(), r)
}

/// Replays the schedule against the evolution/revolution baseline.
fn drive_evolution(master: &mut SyncMaster, scenario: &Scenario, cfg: &AdaptConfig) -> ArmOutcome {
    let final_start = scenario.final_phase_first_query() as u64;
    let mut replica = FilterReplica::new(0);
    let mut driver: SyncDriver<SystemClock> = SyncDriver::default();
    let mut selector = EvolutionSelector::new(gens(), cfg.entry_budget, 0.95, 0.5);
    let mut out = ArmOutcome::default();
    for ev in &scenario.events {
        match ev {
            WorkloadEvent::Query(tq) => {
                let idx = out.queries;
                let hit = replica.try_answer(&tq.request).is_some();
                out.queries += 1;
                out.hits += u64::from(hit);
                if idx >= final_start {
                    out.final_queries += 1;
                    out.final_hits += u64::from(hit);
                }
                // The baseline's defining property: selection runs on
                // every query, not on a budgeted cadence.
                let _ = selector.observe(&tq.request, master, &mut replica);
                if cfg.sync_every > 0 && out.queries % cfg.sync_every as u64 == 0 {
                    let _ = replica.sync_with(master, &mut driver);
                }
            }
            WorkloadEvent::Update(op) => {
                let _ = master.apply(op.clone());
            }
        }
    }
    let _ = replica.sync_with(master, &mut driver);
    let rep = selector.report();
    out.installs = rep.installs;
    out.evictions = rep.evictions;
    out.adaptations = rep.installs + rep.evictions;
    out.install_entries = rep.traffic.full_entries;
    out.seal()
}

/// Oracle: train a frozen selection on the final phase's queries, then
/// replay exactly that phase against a fresh master.
fn drive_oracle(
    dir: &EnterpriseDirectory,
    scenario: &Scenario,
    cfg: &AdaptConfig,
) -> (f64, usize) {
    let final_queries: Vec<TracedQuery> = scenario
        .events
        .iter()
        .skip(scenario.phases.last().map(|p| p.first_event).unwrap_or(0))
        .filter_map(|e| match e {
            WorkloadEvent::Query(tq) => Some(tq.clone()),
            WorkloadEvent::Update(_) => None,
        })
        .collect();
    let filters =
        select_static_filters(dir.dit(), &final_queries, gens(), cfg.entry_budget);
    let count = filters.len();
    let mut r = Replicator::new(SyncMaster::with_dit(dir.dit().clone()), 0);
    for f in filters {
        let _ = r.install_filter(f);
    }
    let out = replay_filter(
        &mut r,
        &final_queries,
        &[],
        ReplayConfig { sync_every: 0, update_every: 0 },
    );
    (out.overall.hit_ratio(), count)
}

/// Runs the full ablation.
pub fn run(cfg: &AdaptConfig) -> AdaptReport {
    let dir = directory(cfg);
    let scfg = ScenarioConfig {
        seed: cfg.seed,
        queries_per_phase: cfg.queries_per_phase,
        ..ScenarioConfig::default()
    };
    let mut scenarios = Vec::new();
    for kind in kinds(cfg) {
        let scenario = Scenario::build(kind, &dir, &scfg);

        // Periodic batch revolutions.
        let periodic_obs = Obs::new();
        let periodic_sel = FilterSelector::new(
            SelectorConfig {
                revolution_interval: cfg.revolution_interval,
                entry_budget: cfg.entry_budget,
                max_candidates: 4096,
            },
            gens(),
        )
        .with_obs(periodic_obs.clone());
        let periodic_repl = Replicator::new(SyncMaster::with_dit(dir.dit().clone()), 0)
            .with_selector(periodic_sel);
        let (mut periodic, periodic_repl) = drive_replicator(periodic_repl, &scenario, cfg);
        periodic.adaptations = periodic_repl.report().revolutions;
        periodic.installs = periodic_obs.registry().counter("fbdr_selection_installed_total").get();
        periodic.evictions = periodic_obs.registry().counter("fbdr_selection_evicted_total").get();

        // Evolution baseline.
        let mut evo_master = SyncMaster::with_dit(dir.dit().clone());
        let evolution = drive_evolution(&mut evo_master, &scenario, cfg);

        // Budgeted online revolution.
        let obs = Obs::new();
        let online_sel = OnlineSelector::new(
            OnlineConfig {
                entry_budget: cfg.entry_budget,
                step_every: cfg.step_every,
                move_budget: cfg.move_budget,
                ..OnlineConfig::default()
            },
            gens(),
        )
        .with_obs(obs.clone());
        let online_repl = Replicator::new(SyncMaster::with_dit(dir.dit().clone()), 0)
            .with_online_selector(online_sel);
        let (mut online, online_repl) = drive_replicator(online_repl, &scenario, cfg);
        let online_report = online_repl.online_report().expect("online arm attached");
        online.installs = online_report.installs;
        online.evictions = online_report.evictions;
        online.adaptations = online_report.steps;
        let candidates = online_repl.online_candidates().unwrap_or(0);

        // Oracle ceiling.
        let (oracle_final, oracle_filters) = drive_oracle(&dir, &scenario, cfg);

        let online_vs_oracle = if oracle_final > 0.0 {
            online.final_hit_ratio / oracle_final
        } else {
            1.0
        };
        scenarios.push(ScenarioOutcome {
            scenario: kind.name().to_owned(),
            phases: scenario.phases.len(),
            queries: scenario.queries,
            updates: scenario.update_count(),
            periodic,
            evolution,
            online,
            oracle_final_hit_ratio: oracle_final,
            oracle_filters,
            online_vs_oracle,
            online_max_moves: online_report.max_moves,
            online_max_considered: online_report.max_considered,
            online_candidates: candidates,
            revolve_moves_samples: obs
                .registry()
                .histogram("fbdr_selection_revolve_moves")
                .count(),
        });
    }

    let online_installs_total: u64 = scenarios.iter().map(|s| s.online.installs).sum();
    let evolution_installs_total: u64 = scenarios.iter().map(|s| s.evolution.installs).sum();
    let gates = AdaptGates {
        adaptation_ok: scenarios
            .iter()
            .all(|s| s.online.final_hit_ratio + 0.02 >= 0.9 * s.oracle_final_hit_ratio),
        churn_ok: online_installs_total * 3 <= evolution_installs_total,
        bounded_ok: scenarios.iter().all(|s| {
            s.online_max_moves <= cfg.move_budget && s.revolve_moves_samples > 0
        }),
    };
    AdaptReport {
        config: cfg.clone(),
        scenarios,
        online_installs_total,
        evolution_installs_total,
        install_ratio: online_installs_total as f64 / evolution_installs_total.max(1) as f64,
        gates,
    }
}
