//! Shard scaling benchmark: the same total update load applied through a
//! [`ShardedMaster`] at increasing shard counts. Emits
//! `BENCH_shard_scale.json`, gated on near-linear apply throughput in
//! the shard count.
//!
//! The directory is partitioned by country (`c=s{i},o=xyz`), the grain
//! the paper's naming contexts suggest; a rung at `K` shards assigns
//! country `i` to shard `i % K`, so the *entries and op stream are
//! byte-identical across rungs* — only the partition changes. Each shard
//! applies its slice of the stream on its own thread.
//!
//! Apply work in this in-process model is microseconds of CPU; a real
//! master's apply is dominated by commit/fsync/WAN time that a single
//! benchmark host (often single-core CI) cannot exhibit as parallelism.
//! So each apply carries a fixed simulated service latency
//! (`service_us`, default 200µs — a fast local commit), making the rungs
//! a closed-loop model: `K` shards overlap `K` service waits, and the
//! measured scaling reflects the protocol's sharding (independent
//! replay buffers, no cross-shard coordination on the apply path), not
//! host core count. Set `service_us: 0` to measure raw CPU instead.
//!
//! After every timed run the sharded content is compared entry-for-entry
//! against an unsharded reference master that applied the same stream —
//! the benchmark refuses to report a speedup for a partition that
//! corrupted the directory.

use fbdr_dit::{DitStore, Modification, UpdateOp};
use fbdr_ldap::{Dn, Entry, Filter, SearchRequest};
use fbdr_resync::{ShardId, ShardMap, ShardedMaster, SyncMaster};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct ShardScaleConfig {
    /// Person entries in the directory (spread round-robin across
    /// `countries`).
    pub entries: usize,
    /// Updates applied per rung — the *total* load, split across shards
    /// by ownership, so every rung does the same work.
    pub updates: usize,
    /// Shard-count ladder; the speedup gate compares the largest against
    /// the smallest.
    pub shard_counts: Vec<usize>,
    /// Country containers — the partition grain. Must be ≥ the largest
    /// shard count so every shard owns at least one country.
    pub countries: usize,
    /// Simulated per-apply service latency in microseconds (commit /
    /// I/O stand-in); 0 measures raw CPU.
    pub service_us: u64,
    /// Timed repetitions per rung; the best run is reported.
    pub repeats: usize,
}

impl Default for ShardScaleConfig {
    fn default() -> Self {
        ShardScaleConfig {
            entries: 20_000,
            updates: 4_000,
            shard_counts: vec![1, 2, 4],
            countries: 4,
            service_us: 200,
            repeats: 3,
        }
    }
}

/// One shard-count rung's measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ShardRung {
    /// Shards the namespace was partitioned across.
    pub shards: usize,
    /// Total updates applied (equal across rungs).
    pub updates: usize,
    /// Aggregate apply throughput, ops/s.
    pub ops_per_sec: f64,
    /// Wall time of the timed run, milliseconds.
    pub elapsed_ms: f64,
    /// Updates each shard applied (ownership split of the same stream).
    pub per_shard_updates: Vec<usize>,
    /// Entries compared equal against the unsharded reference.
    pub entries_compared: usize,
}

/// The emitted `BENCH_shard_scale.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct ShardScaleReport {
    /// Person entries in the directory.
    pub entries: usize,
    /// Updates per rung.
    pub updates: usize,
    /// Country containers (partition grain).
    pub countries: usize,
    /// Simulated per-apply service latency, microseconds.
    pub service_us: u64,
    /// Per-rung results keyed by shard count (stringified for JSON).
    pub rungs: BTreeMap<String, ShardRung>,
    /// Throughput at the smallest shard count (the unsharded baseline).
    pub baseline_ops_per_sec: f64,
    /// Throughput at the largest shard count.
    pub ops_per_sec_at_max_shards: f64,
    /// The CI-gated headline: `ops_at_max / baseline`.
    pub speedup_at_max_shards: f64,
    /// The shard count the headline was measured at.
    pub max_shards: usize,
}

fn country_dn(c: usize) -> Dn {
    format!("c=s{c},o=xyz").parse().expect("dn")
}

fn entry_of(i: usize, countries: usize) -> Entry {
    let c = i % countries;
    Entry::new(format!("cn=e{i},c=s{c},o=xyz").parse().expect("dn"))
        .with("objectclass", "person")
        .with("cn", &format!("e{i}"))
        .with("serialNumber", &format!("{i:06}"))
        .with("l", "site000")
}

/// Country `i` goes to shard `i % k`: the K-shard partition of the same
/// namespace.
fn map_for(k: usize, countries: usize) -> ShardMap {
    assert!(k >= 1 && k <= countries, "need 1 <= shards <= countries");
    let mut map = ShardMap::new(ShardId::ZERO);
    for c in 0..countries {
        map.assign(country_dn(c), ShardId::new(u16::try_from(c % k).expect("shard id fits")));
    }
    map
}

/// The skeleton every shard holds: the organization root.
fn skeleton() -> DitStore {
    let mut dit = DitStore::new();
    dit.add_suffix("o=xyz".parse().expect("dn"));
    dit.add(Entry::new("o=xyz".parse().expect("dn")).with("objectclass", "organization"))
        .expect("fresh store");
    dit
}

/// One master per shard, each holding only its countries' slice.
fn build_shards(cfg: &ShardScaleConfig, map: &ShardMap) -> Vec<SyncMaster> {
    let mut dits: Vec<DitStore> = (0..map.shard_count()).map(|_| skeleton()).collect();
    for c in 0..cfg.countries {
        let shard = map.shard_of(&country_dn(c));
        dits[shard.index()]
            .add(Entry::new(country_dn(c)).with("objectclass", "country"))
            .expect("country entry");
    }
    for i in 0..cfg.entries {
        let e = entry_of(i, cfg.countries);
        let shard = map.shard_of(e.dn());
        dits[shard.index()].add(e).expect("person entry");
    }
    dits.into_iter().map(SyncMaster::with_dit).collect()
}

/// The `k`-th update of the stream: entry `k % entries` moves to the next
/// site. Pure function of `k`, so every rung sees the identical stream.
fn update_at(k: usize, cfg: &ShardScaleConfig) -> UpdateOp {
    let i = k % cfg.entries;
    let pass = k / cfg.entries + 1;
    let c = i % cfg.countries;
    UpdateOp::Modify {
        dn: format!("cn=e{i},c=s{c},o=xyz").parse().expect("dn"),
        mods: vec![Modification::Replace(
            "l".into(),
            vec![format!("site{:03}", (i + pass) % 500).into()],
        )],
    }
}

fn all_persons(dit: &DitStore) -> Vec<Entry> {
    let req = SearchRequest::from_root(Filter::parse("(objectclass=person)").expect("filter"));
    let mut out = dit.search(&req);
    out.sort_by(|a, b| a.dn().cmp_hierarchical(b.dn()));
    out
}

/// The unsharded reference: the same stream applied sequentially to one
/// master, yielding the expected final person content.
fn reference_content(cfg: &ShardScaleConfig) -> Vec<Entry> {
    let map = map_for(1, cfg.countries);
    let mut master = build_shards(cfg, &map).remove(0);
    for k in 0..cfg.updates {
        master.apply(update_at(k, cfg)).expect("reference apply");
    }
    all_persons(master.dit())
}

/// One timed measurement at `shards` shards.
fn run_rung_once(cfg: &ShardScaleConfig, shards: usize, expected: &[Entry]) -> ShardRung {
    let map = map_for(shards, cfg.countries);
    let mut masters = build_shards(cfg, &map);

    // Ownership split of the identical stream, pre-built so the timed
    // region measures only apply + service time.
    let mut streams: Vec<Vec<UpdateOp>> = (0..shards).map(|_| Vec::new()).collect();
    for k in 0..cfg.updates {
        let op = update_at(k, cfg);
        streams[map.shard_of(op.target()).index()].push(op);
    }
    let per_shard_updates: Vec<usize> = streams.iter().map(Vec::len).collect();
    let service = Duration::from_micros(cfg.service_us);

    let t = Instant::now();
    std::thread::scope(|scope| {
        for (master, ops) in masters.iter_mut().zip(streams.into_iter()) {
            scope.spawn(move || {
                for op in ops {
                    if !service.is_zero() {
                        std::thread::sleep(service);
                    }
                    master.apply(op).expect("shard apply");
                }
            });
        }
    });
    let elapsed = t.elapsed();

    // Equivalence: the sharded union must match the unsharded reference
    // entry-for-entry.
    let sharded = ShardedMaster::from_masters(map, masters);
    let got =
        sharded.search(&SearchRequest::from_root(Filter::parse("(objectclass=person)").expect(
            "filter",
        )));
    assert_eq!(
        got.len(),
        expected.len(),
        "sharded content diverged from reference at {shards} shards"
    );
    for (g, e) in got.iter().zip(expected.iter()) {
        assert_eq!(g, e, "sharded entry diverged from reference at {shards} shards");
    }

    let secs = elapsed.as_secs_f64();
    ShardRung {
        shards,
        updates: cfg.updates,
        ops_per_sec: cfg.updates as f64 / secs.max(1e-9),
        elapsed_ms: secs * 1e3,
        per_shard_updates,
        entries_compared: got.len(),
    }
}

/// Runs one rung `cfg.repeats` times and keeps the best run.
fn run_rung(cfg: &ShardScaleConfig, shards: usize, expected: &[Entry]) -> ShardRung {
    let mut best: Option<ShardRung> = None;
    for _ in 0..cfg.repeats.max(1) {
        let r = run_rung_once(cfg, shards, expected);
        best = Some(match best.take() {
            Some(b) if b.ops_per_sec >= r.ops_per_sec => b,
            _ => r,
        });
    }
    best.expect("repeats >= 1")
}

/// Runs the full ladder and assembles the report.
pub fn run(cfg: &ShardScaleConfig) -> ShardScaleReport {
    assert!(!cfg.shard_counts.is_empty(), "need at least one shard count");
    let expected = reference_content(cfg);
    let mut rungs = BTreeMap::new();
    for &shards in &cfg.shard_counts {
        let rung = run_rung(cfg, shards, &expected);
        rungs.insert(format!("{shards:02}"), rung);
    }
    let min_shards = *cfg.shard_counts.iter().min().expect("non-empty");
    let max_shards = *cfg.shard_counts.iter().max().expect("non-empty");
    let baseline_ops_per_sec = rungs[&format!("{min_shards:02}")].ops_per_sec;
    let ops_per_sec_at_max_shards = rungs[&format!("{max_shards:02}")].ops_per_sec;
    ShardScaleReport {
        entries: cfg.entries,
        updates: cfg.updates,
        countries: cfg.countries,
        service_us: cfg.service_us,
        rungs,
        baseline_ops_per_sec,
        ops_per_sec_at_max_shards,
        speedup_at_max_shards: ops_per_sec_at_max_shards / baseline_ops_per_sec.max(1e-9),
        max_shards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shape-only check at a tiny scale with zero service latency: every
    /// rung carries the throughput fields, the ownership split conserves
    /// the stream, and the content comparison saw the whole directory.
    /// (The 3× scaling floor is asserted by the `shard_scale` binary /
    /// CI smoke job, not here — unit tests stay timing-independent.)
    #[test]
    fn report_shape() {
        let cfg = ShardScaleConfig {
            entries: 240,
            updates: 480,
            shard_counts: vec![1, 2],
            countries: 4,
            service_us: 0,
            repeats: 1,
        };
        let report = run(&cfg);
        assert_eq!(report.max_shards, 2);
        assert_eq!(report.rungs.len(), 2);
        for rung in report.rungs.values() {
            assert!(rung.ops_per_sec > 0.0);
            assert_eq!(rung.per_shard_updates.iter().sum::<usize>(), cfg.updates);
            assert_eq!(rung.per_shard_updates.len(), rung.shards);
            assert_eq!(rung.entries_compared, cfg.entries);
        }
        assert!(report.speedup_at_max_shards > 0.0);
        let json = serde_json::to_string_pretty(&report).unwrap();
        for field in ["\"ops_per_sec\"", "\"speedup_at_max_shards\"", "\"per_shard_updates\""] {
            assert!(json.contains(field), "missing {field}");
        }
    }

    /// The partition is total and balanced at the country grain: every
    /// country maps to a shard below the count, and the identical stream
    /// splits without loss at every ladder rung.
    #[test]
    fn partition_covers_every_country() {
        for k in [1usize, 2, 4] {
            let map = map_for(k, 4);
            assert_eq!(map.shard_count(), k);
            for c in 0..4 {
                assert!(map.shard_of(&country_dn(c)).index() < k);
            }
        }
    }
}
