//! `soak` — long-run memory/throughput soak for the GC'd master fleet.
//!
//! ```text
//! soak [--shards N] [--countries N] [--entries N] [--sessions N]
//!      [--dead-sessions N] [--updates N] [--window N] [--poll-every N]
//!      [--segments N] [--sample-every N] [--gc-every N]
//!      [--deadline MS] [--seed N] [--flat-ceiling X]
//!      [--sustain-floor X] [--out PATH]
//! ```
//!
//! Drives 10× chaos-suite churn through two identical sharded fleets —
//! one with causal-stability GC, one with collection disabled — over
//! the same seeded op stream, then writes `BENCH_soak.json`. Exits
//! non-zero if the GC arm's deterministic memory high-water creeps past
//! `--flat-ceiling` (default 1.10×) of its post-warmup baseline, if the
//! un-GC'd ablation arm's footprint fails to grow monotonically, if the
//! GC arm's last-segment throughput falls below `--sustain-floor`
//! (default 0.9×) of its first decile, or if the arms ever disagree on
//! a poll response or the final content.

use fbdr_bench::soak::{run, SoakConfig};

fn usage(msg: &str) -> ! {
    eprintln!("soak: {msg} (try --help)");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = SoakConfig::default();
    let mut out = String::from("BENCH_soak.json");
    let mut flat_ceiling = 1.10f64;
    let mut sustain_floor = 0.9f64;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> u64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                usage(&format!("{flag} takes a number"));
            })
        };
        match a.as_str() {
            "--shards" => cfg.shards = num("--shards") as usize,
            "--countries" => cfg.countries = num("--countries") as usize,
            "--entries" => cfg.entries_per_country = num("--entries") as usize,
            "--sessions" => cfg.sessions = num("--sessions") as usize,
            "--dead-sessions" => cfg.dead_sessions = num("--dead-sessions") as usize,
            "--updates" => cfg.updates = num("--updates") as usize,
            "--window" => cfg.window = num("--window") as usize,
            "--poll-every" => cfg.poll_every = num("--poll-every") as usize,
            "--segments" => cfg.segments = num("--segments") as usize,
            "--sample-every" => cfg.sample_every = num("--sample-every") as usize,
            "--gc-every" => cfg.gc_every_ops = num("--gc-every"),
            "--deadline" => cfg.session_deadline_ms = num("--deadline"),
            "--seed" => cfg.seed = num("--seed"),
            "--flat-ceiling" => {
                flat_ceiling = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--flat-ceiling takes a number"));
            }
            "--sustain-floor" => {
                sustain_floor = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sustain-floor takes a number"));
            }
            "--out" => out = it.next().unwrap_or_else(|| usage("--out takes a path")),
            "--help" | "-h" => {
                println!(
                    "usage: soak [--shards N] [--countries N] [--entries N] [--sessions N] \
                     [--dead-sessions N] [--updates N] [--window N] [--poll-every N] \
                     [--segments N] [--sample-every N] [--gc-every N] [--deadline MS] \
                     [--seed N] [--flat-ceiling X] [--sustain-floor X] [--out PATH]"
                );
                return;
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    let report = run(&cfg);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });

    println!(
        "# soak — {} shards, {} sessions (+{} dead), {} steps, window {}",
        report.shards, report.sessions, report.dead_sessions, report.updates, report.window,
    );
    for (i, s) in report.segments.iter().enumerate() {
        println!(
            "  seg {i}: gc {:>9} B  ablation {:>9} B  gc {:>8.0} ops/s",
            s.gc_high_water_bytes, s.ablation_high_water_bytes, s.gc_ops_per_sec,
        );
    }
    println!(
        "  gc high-water ratio {:.3} (baseline {} B, peak {} B)  ablation growth {:.1}x  \
         sustain {:.2}  evicted {}  recycled {}",
        report.gc_high_water_ratio,
        report.gc_baseline_bytes,
        report.gc_peak_bytes,
        report.ablation_growth_x,
        report.throughput_sustain_ratio,
        report.sessions_evicted,
        report.ids_recycled,
    );

    let mut failed = false;
    if !report.arms_equal {
        eprintln!("FAIL: GC arm diverged from the un-GC'd arm");
        failed = true;
    }
    if report.gc_high_water_ratio > flat_ceiling {
        eprintln!(
            "FAIL: gc arm memory crept {:.3}x over its post-warmup baseline (ceiling {flat_ceiling}x)",
            report.gc_high_water_ratio
        );
        failed = true;
    }
    if !report.ablation_monotonic {
        eprintln!("FAIL: ablation arm footprint is not monotonic — the soak generated no garbage");
        failed = true;
    }
    if report.throughput_sustain_ratio < sustain_floor {
        eprintln!(
            "FAIL: gc arm throughput decayed to {:.2}x of its first decile (floor {sustain_floor}x)",
            report.throughput_sustain_ratio
        );
        failed = true;
    }
    println!("  wrote {out}");
    if failed {
        std::process::exit(1);
    }
}
