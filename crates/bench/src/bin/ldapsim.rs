//! `ldapsim` — an interactive sandbox for filter-based directory
//! replication: generate or import a directory, replicate filters, query
//! through the replica, apply updates and watch ReSync at work.
//!
//! ```console
//! $ ldapsim
//! > gen 2000
//! > install (serialNumber=1000*)
//! > rsearch (serialNumber=100042)
//! > stats
//! ```

use fbdr_bench::shell::{Shell, ShellOutcome};
use std::io::{BufRead, Write};

fn main() {
    let mut shell = Shell::new();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!("ldapsim — filter based directory replication sandbox (`help` for commands)");
    loop {
        print!("> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match shell.run_command(&line) {
            ShellOutcome::Output(s) => {
                if !s.is_empty() {
                    println!("{s}");
                }
            }
            ShellOutcome::Quit => break,
        }
    }
}
