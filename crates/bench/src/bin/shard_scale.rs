//! `shard_scale` — sharded-master apply scaling benchmark.
//!
//! ```text
//! shard_scale [--entries N] [--updates N] [--shards A,B,C]
//!             [--countries N] [--service-us N] [--repeats N]
//!             [--floor X] [--out PATH]
//! ```
//!
//! Applies the same total update stream through a `ShardedMaster` at each
//! shard count (country `i` → shard `i % K`, one apply thread per shard,
//! each apply carrying `--service-us` of simulated commit latency),
//! verifies the sharded content matches an unsharded reference, writes
//! `BENCH_shard_scale.json` and prints a summary. Exits non-zero if
//! throughput at the largest shard count is below `--floor` (default 3×)
//! times the smallest — sharding stopped scaling.

use fbdr_bench::shard_scale::{run, ShardScaleConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ShardScaleConfig::default();
    let mut out = String::from("BENCH_shard_scale.json");
    let mut floor = 3.0f64;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--entries" => {
                cfg.entries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--entries takes a number"));
            }
            "--updates" => {
                cfg.updates = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--updates takes a number"));
            }
            "--shards" => {
                let spec = it.next().unwrap_or_else(|| usage("--shards takes A,B,C"));
                cfg.shard_counts = spec
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage("bad shard count")))
                    .collect();
                if cfg.shard_counts.is_empty() {
                    usage("--shards needs at least one count");
                }
            }
            "--countries" => {
                cfg.countries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--countries takes a number"));
            }
            "--service-us" => {
                cfg.service_us = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--service-us takes a number"));
            }
            "--repeats" => {
                cfg.repeats = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--repeats takes a number"));
            }
            "--floor" => {
                floor = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--floor takes a number"));
            }
            "--out" => out = it.next().unwrap_or_else(|| usage("--out takes a path")),
            "--help" | "-h" => {
                println!(
                    "usage: shard_scale [--entries N] [--updates N] [--shards A,B,C] \
                     [--countries N] [--service-us N] [--repeats N] [--floor X] [--out PATH]"
                );
                return;
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    let report = run(&cfg);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });

    println!(
        "# shard_scale — {} entries, {} updates/rung, {} countries, {}us simulated service",
        report.entries, report.updates, report.countries, report.service_us,
    );
    for rung in report.rungs.values() {
        println!(
            "  {:>2} shards  {:>10.0} ops/s  ({:>8.1}ms, split {:?}, {} entries verified equal)",
            rung.shards,
            rung.ops_per_sec,
            rung.elapsed_ms,
            rung.per_shard_updates,
            rung.entries_compared,
        );
    }
    println!(
        "  speedup at {} shards: {:.2}x over {:.0} ops/s baseline",
        report.max_shards, report.speedup_at_max_shards, report.baseline_ops_per_sec,
    );
    println!("  wrote {out}");

    if !(report.speedup_at_max_shards >= floor) {
        eprintln!(
            "FAIL: shard scaling {:.2}x at {} shards is below the {floor}x floor",
            report.speedup_at_max_shards, report.max_shards
        );
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}; see --help");
    std::process::exit(2);
}
