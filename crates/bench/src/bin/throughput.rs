//! `throughput` — multi-threaded read-throughput benchmark.
//!
//! ```text
//! throughput [--scale small|paper|large] [--queries N] [--threads a,b,…]
//!            [--service-us N] [--no-writer] [--out PATH]
//! ```
//!
//! Runs N reader threads over the evaluation-day trace against one shared
//! `FilterReplica` (no external lock) while a writer applies updates and
//! sync cycles, then writes `BENCH_throughput.json` and prints a summary.
//! Exits non-zero if the max-thread concurrent throughput is below 2.5×
//! the single-thread throughput (the read path has re-serialized).

use fbdr_bench::throughput::{run, ThroughputConfig};
use fbdr_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ThroughputConfig::new(Scale::Small);
    let mut out = String::from("BENCH_throughput.json");
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_default();
                let scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale {v:?}; use small|paper|large");
                    std::process::exit(2);
                });
                let defaults = ThroughputConfig::new(scale);
                cfg.scale = scale;
                cfg.total_queries = defaults.total_queries;
            }
            "--queries" => {
                cfg.total_queries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--queries takes a number"));
            }
            "--threads" => {
                let v = it.next().unwrap_or_default();
                cfg.thread_counts = v
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage("--threads takes a,b,…")))
                    .collect();
            }
            "--service-us" => {
                cfg.service_us = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--service-us takes a number"));
            }
            "--no-writer" => cfg.writer = false,
            "--out" => out = it.next().unwrap_or_else(|| usage("--out takes a path")),
            "--help" | "-h" => {
                println!(
                    "usage: throughput [--scale small|paper|large] [--queries N]\n\
                     \x20                 [--threads a,b,…] [--service-us N] [--no-writer]\n\
                     \x20                 [--out PATH]"
                );
                return;
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    let report = run(&cfg);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });

    println!(
        "# throughput — scale {}, {} queries/run, {} µs service latency, {} filters / {} entries",
        report.scale, report.total_queries, report.service_us, report.filters,
        report.replica_entries
    );
    for r in report.runs.iter().chain(&report.cpu_bound_runs) {
        let kind = if r.service_us == 0 { "cpu-bound " } else { "" };
        println!(
            "  {kind}{:<11} {} thread(s): {:>9.0} q/s  ({} hits/{} queries, {} writer cycles)",
            r.mode, r.threads, r.qps, r.hits, r.queries, r.writer_cycles
        );
    }
    println!(
        "  speedup (concurrent): {:.2}x   speedup (serialized baseline): {:.2}x",
        report.speedup, report.serialized_speedup
    );
    for (name, h) in &report.histograms {
        println!(
            "  {name}: n={} p50={}ns p90={}ns p99={}ns max={}ns",
            h.count, h.p50, h.p90, h.p99, h.max
        );
    }
    println!("  wrote {out}");

    if !(report.speedup >= 2.5) {
        eprintln!(
            "FAIL: concurrent speedup {:.2}x is below the 2.5x floor — the read path serialized",
            report.speedup
        );
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}; see --help");
    std::process::exit(2);
}
