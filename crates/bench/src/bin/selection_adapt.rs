//! `selection_adapt` — adaptation ablation over the adversarial
//! scenario matrix.
//!
//! ```text
//! selection_adapt [--scenarios a,b,c] [--queries-per-phase N]
//!                 [--budget N] [--sync-every N] [--revolve-every N]
//!                 [--step-every N] [--move-budget N] [--small]
//!                 [--seed N] [--out PATH]
//! ```
//!
//! Replays every scenario through four arms — periodic batch
//! revolutions, the per-query evolution baseline, the budgeted online
//! revolution, and a train-on-the-final-phase oracle — and writes
//! `BENCH_selection.json`. Exits non-zero if the online arm misses 90%
//! of the oracle's end-state hit ratio on any scenario, if online
//! installs exceed ⅓ of the evolution baseline's, or if any online step
//! breached the move budget.

use fbdr_bench::selection_adapt::{run, AdaptConfig};

fn usage(msg: &str) -> ! {
    eprintln!("selection_adapt: {msg} (try --help)");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = AdaptConfig::default();
    let mut out = String::from("BENCH_selection.json");
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> u64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                usage(&format!("{flag} takes a number"));
            })
        };
        match a.as_str() {
            "--scenarios" => {
                let list = it.next().unwrap_or_else(|| usage("--scenarios takes a list"));
                cfg.scenarios = list.split(',').map(|s| s.trim().to_owned()).collect();
            }
            "--queries-per-phase" => cfg.queries_per_phase = num("--queries-per-phase") as usize,
            "--budget" => cfg.entry_budget = num("--budget") as usize,
            "--sync-every" => cfg.sync_every = num("--sync-every") as usize,
            "--revolve-every" => cfg.revolution_interval = num("--revolve-every"),
            "--step-every" => cfg.step_every = num("--step-every"),
            "--move-budget" => cfg.move_budget = num("--move-budget") as usize,
            "--small" => cfg.small_directory = true,
            "--seed" => cfg.seed = num("--seed"),
            "--out" => out = it.next().unwrap_or_else(|| usage("--out takes a path")),
            "--help" | "-h" => {
                println!(
                    "usage: selection_adapt [--scenarios a,b,c] [--queries-per-phase N] \
                     [--budget N] [--sync-every N] [--revolve-every N] [--step-every N] \
                     [--move-budget N] [--small] [--seed N] [--out PATH]"
                );
                return;
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    let report = run(&cfg);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });

    println!(
        "# selection_adapt — budget {}, step every {} (≤{} moves), revolve every {}",
        report.config.entry_budget,
        report.config.step_every,
        report.config.move_budget,
        report.config.revolution_interval,
    );
    println!(
        "  {:<13} {:>7} {:>7} {:>7} {:>7} | {:>9} {:>9} {:>9} | {:>5}",
        "scenario", "period", "evolve", "online", "oracle", "p-inst", "e-inst", "o-inst", "moves",
    );
    for s in &report.scenarios {
        println!(
            "  {:<13} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% | {:>9} {:>9} {:>9} | {:>2}/{:<2}",
            s.scenario,
            100.0 * s.periodic.final_hit_ratio,
            100.0 * s.evolution.final_hit_ratio,
            100.0 * s.online.final_hit_ratio,
            100.0 * s.oracle_final_hit_ratio,
            s.periodic.installs,
            s.evolution.installs,
            s.online.installs,
            s.online_max_moves,
            report.config.move_budget,
        );
    }
    println!(
        "  online installs {} vs evolution {} (ratio {:.3})",
        report.online_installs_total, report.evolution_installs_total, report.install_ratio,
    );

    let mut failed = false;
    if !report.gates.adaptation_ok {
        for s in &report.scenarios {
            if s.online.final_hit_ratio + 0.02 < 0.9 * s.oracle_final_hit_ratio {
                eprintln!(
                    "FAIL: {}: online end-state hit ratio {:.3} < 0.9 x oracle {:.3}",
                    s.scenario, s.online.final_hit_ratio, s.oracle_final_hit_ratio
                );
            }
        }
        failed = true;
    }
    if !report.gates.churn_ok {
        eprintln!(
            "FAIL: online installs {} exceed 1/3 of evolution baseline {}",
            report.online_installs_total, report.evolution_installs_total
        );
        failed = true;
    }
    if !report.gates.bounded_ok {
        eprintln!("FAIL: an online step exceeded the move budget or recorded no histogram sample");
        failed = true;
    }
    println!("  wrote {out}");
    if failed {
        std::process::exit(1);
    }
}
