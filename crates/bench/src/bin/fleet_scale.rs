//! `fleet_scale` — fleet-scale persist-mode staleness/coalescing bench.
//!
//! ```text
//! fleet_scale [--replicas N] [--shards N] [--entries N] [--depts N]
//!             [--updates N] [--steady-interval MS] [--ramp MS]
//!             [--max-batch N] [--max-delay MS] [--flush-interval MS]
//!             [--link-base MS] [--link-jitter MS] [--seed N]
//!             [--floor X] [--out PATH]
//! ```
//!
//! Simulates `--replicas` persist-mode sessions against a sharded
//! master under steady and flash-crowd load, once with per-update
//! wakeups and once with batching/coalescing, then writes
//! `BENCH_fleet.json` (byte-identical for the same seed — the report
//! carries no wall time). Exits non-zero if coalescing fails to cut
//! wakeups by `--floor` (default 3×) in every scenario, if the two arms
//! diverge in content, or if any replica misses convergence.

use fbdr_bench::fleet_scale::{run, FleetScaleConfig};
use fbdr_net::LinkProfile;

fn usage(msg: &str) -> ! {
    eprintln!("fleet_scale: {msg} (try --help)");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = FleetScaleConfig::default();
    let mut out = String::from("BENCH_fleet.json");
    let mut floor = 3.0f64;
    let (mut link_base, mut link_jitter) = (2u64, 6u64);
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> u64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                usage(&format!("{flag} takes a number"));
            })
        };
        match a.as_str() {
            "--replicas" => cfg.replicas = num("--replicas") as usize,
            "--shards" => cfg.shards = num("--shards") as usize,
            "--entries" => cfg.entries_per_shard = num("--entries") as usize,
            "--depts" => cfg.depts = num("--depts") as usize,
            "--updates" => cfg.updates = num("--updates") as usize,
            "--steady-interval" => cfg.steady_interval_ms = num("--steady-interval"),
            "--ramp" => cfg.flash_ramp_ms = num("--ramp"),
            "--max-batch" => cfg.max_batch = num("--max-batch"),
            "--max-delay" => cfg.max_delay_ms = num("--max-delay"),
            "--flush-interval" => cfg.flush_interval_ms = num("--flush-interval"),
            "--link-base" => link_base = num("--link-base"),
            "--link-jitter" => link_jitter = num("--link-jitter"),
            "--seed" => cfg.seed = num("--seed"),
            "--floor" => {
                floor = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--floor takes a number"));
            }
            "--out" => out = it.next().unwrap_or_else(|| usage("--out takes a path")),
            "--help" | "-h" => {
                println!(
                    "usage: fleet_scale [--replicas N] [--shards N] [--entries N] [--depts N] \
                     [--updates N] [--steady-interval MS] [--ramp MS] [--max-batch N] \
                     [--max-delay MS] [--flush-interval MS] [--link-base MS] [--link-jitter MS] \
                     [--seed N] [--floor X] [--out PATH]"
                );
                return;
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    cfg.link = if link_jitter == 0 {
        LinkProfile::constant(link_base)
    } else {
        LinkProfile::jittered(link_base, link_jitter)
    };

    let report = run(&cfg);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });

    println!(
        "# fleet_scale — {} replicas, {} shards, {} entries/shard, {} depts, {} updates/scenario",
        report.replicas, report.shards, report.entries_per_shard, report.depts, report.updates,
    );
    let mut failed = false;
    for (name, s) in &report.scenarios {
        println!(
            "  {name:>6}  baseline: {:>8} wakeups  staleness p50/p99/p999 = {}/{}/{} ms",
            s.baseline.wakeups,
            s.baseline.staleness.p50_ms,
            s.baseline.staleness.p99_ms,
            s.baseline.staleness.p999_ms,
        );
        println!(
            "  {name:>6}  coalesced: {:>7} wakeups  staleness p50/p99/p999 = {}/{}/{} ms  \
             amplification {:.1}x  reduction {:.1}x  content_equal {}",
            s.coalesced.wakeups,
            s.coalesced.staleness.p50_ms,
            s.coalesced.staleness.p99_ms,
            s.coalesced.staleness.p999_ms,
            s.coalesced.amplification_x,
            s.wakeup_reduction_x,
            s.content_equal,
        );
        if !s.content_equal {
            eprintln!("FAIL: {name}: coalescing changed the final fleet content");
            failed = true;
        }
        for (arm, r) in [("baseline", &s.baseline), ("coalesced", &s.coalesced)] {
            if r.diverged > 0 {
                eprintln!("FAIL: {name}/{arm}: {} replicas diverged from the master", r.diverged);
                failed = true;
            }
        }
        if !(s.wakeup_reduction_x >= floor) {
            eprintln!(
                "FAIL: {name}: coalescing cut wakeups only {:.2}x, below the {floor}x floor",
                s.wakeup_reduction_x
            );
            failed = true;
        }
    }
    println!("  wrote {out}");
    if failed {
        std::process::exit(1);
    }
}
