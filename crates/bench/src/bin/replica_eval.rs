//! `replica_eval` — replica answer-latency benchmark (indexed vs scan).
//!
//! ```text
//! replica_eval [--entries N] [--samples N] [--out PATH]
//! ```
//!
//! Measures `try_answer` (planned/indexed) against `try_answer_scan`
//! (posting-list scan) over point/prefix/range/scan query classes, writes
//! `BENCH_replica_eval.json` with exact p50/p99 per class, and prints a
//! summary. Exits non-zero if the indexed path is below 3× the scan path
//! at p50 on point queries (the index stopped paying for itself).

use fbdr_bench::replica_eval::{run, ReplicaEvalConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ReplicaEvalConfig::default();
    let mut out = String::from("BENCH_replica_eval.json");
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--entries" => {
                cfg.entries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--entries takes a number"));
            }
            "--samples" => {
                cfg.samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--samples takes a number"));
            }
            "--out" => out = it.next().unwrap_or_else(|| usage("--out takes a path")),
            "--help" | "-h" => {
                println!("usage: replica_eval [--entries N] [--samples N] [--out PATH]");
                return;
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    let report = run(&cfg);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });

    println!(
        "# replica_eval — {} entries, {} samples/class, filters: {}",
        report.entries,
        report.samples,
        report.filters.join(" "),
    );
    for c in report.classes.values() {
        println!(
            "  {:<7} indexed p50={:>7}ns p99={:>8}ns | scan p50={:>8}ns p99={:>9}ns | {:>6.1}x p50  (|result|≈{:.1})",
            c.class, c.indexed.p50_ns, c.indexed.p99_ns, c.scan.p50_ns, c.scan.p99_ns,
            c.speedup_p50, c.mean_result_size,
        );
    }
    println!(
        "  decision cache: {} hits / {} misses",
        report.decision_cache_hits, report.decision_cache_misses
    );
    println!("  wrote {out}");

    if !(report.point_speedup_p50 >= 3.0) {
        eprintln!(
            "FAIL: point-query indexed speedup {:.2}x is below the 3x floor",
            report.point_speedup_p50
        );
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}; see --help");
    std::process::exit(2);
}
