//! `recovery_cost` — session recovery cost benchmark (replay vs
//! reconcile vs reinstall).
//!
//! ```text
//! recovery_cost [--entries N] [--rungs A,B,C] [--fpr X]
//!               [--floor X] [--out PATH]
//! ```
//!
//! For each divergence rung (updates applied while the replica's session
//! was detached) it measures the bytes and round trips of three recovery
//! strategies on identically-built masters: an incremental poll with a
//! live cookie, the Bloom-digest reconcile exchange, and a full filter
//! reinstall. Writes `BENCH_recovery.json` and prints a summary. Exits
//! non-zero if the reinstall/reconcile byte ratio at the 10-update rung
//! is below `--floor` (default 10x) — divergence-proportional recovery
//! stopped paying for itself.

use fbdr_bench::recovery::{run, RecoveryConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = RecoveryConfig::default();
    let mut out = String::from("BENCH_recovery.json");
    let mut floor = 10.0f64;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--entries" => {
                cfg.entries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--entries takes a number"));
            }
            "--rungs" => {
                let spec = it.next().unwrap_or_else(|| usage("--rungs takes A,B,C"));
                cfg.rungs = spec
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage("bad divergence rung")))
                    .collect();
                if cfg.rungs.is_empty() {
                    usage("--rungs needs at least one divergence");
                }
            }
            "--fpr" => {
                cfg.fpr = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--fpr takes a number"));
            }
            "--floor" => {
                floor = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--floor takes a number"));
            }
            "--out" => out = it.next().unwrap_or_else(|| usage("--out takes a path")),
            "--help" | "-h" => {
                println!(
                    "usage: recovery_cost [--entries N] [--rungs A,B,C] \
                     [--fpr X] [--floor X] [--out PATH]"
                );
                return;
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    let report = run(&cfg);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });

    println!("# recovery_cost — {} entries, digest fpr {}", report.entries, report.fpr);
    for rung in report.rungs.values() {
        println!(
            "  N={:>6} ({:>4} entries diverged)  replay {:>9} B | reconcile {:>9} B \
             ({} rt, {} shipped, {} deletes, {} probes) | reinstall {:>9} B | {:>7.1}x",
            rung.divergence,
            rung.diverged_entries,
            rung.replay_bytes,
            rung.reconcile_bytes,
            rung.reconcile_round_trips,
            rung.reconcile_shipped_entries,
            rung.reconcile_deletes,
            rung.reconcile_fallback_probes,
            rung.reinstall_bytes,
            rung.reinstall_over_reconcile,
        );
    }
    println!("  wrote {out}");

    if !(report.reinstall_over_reconcile_at_10 >= floor) {
        eprintln!(
            "FAIL: reinstall/reconcile byte ratio {:.2}x at N={} is below the {floor}x floor",
            report.reinstall_over_reconcile_at_10, report.headline_rung
        );
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}; see --help");
    std::process::exit(2);
}
