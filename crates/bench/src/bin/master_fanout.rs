//! `master_fanout` — master update fan-out benchmark (routed vs naive).
//!
//! ```text
//! master_fanout [--entries N] [--updates N] [--sessions A,B,C]
//!               [--repeats N] [--floor X] [--out PATH]
//! ```
//!
//! Applies the same update stream through `SyncMaster::apply` (candidate
//! routing via the session routing index) and `SyncMaster::apply_naive`
//! (every session evaluated per update) at each session count, verifies
//! both paths drain identical actions, writes `BENCH_master_fanout.json`
//! and prints a summary. Exits non-zero if routed throughput at the
//! largest session count is below `--floor` (default 5×) times the naive
//! reference — the routing index stopped paying for itself.

use fbdr_bench::master_fanout::{run, FanoutConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = FanoutConfig::default();
    let mut out = String::from("BENCH_master_fanout.json");
    let mut floor = 5.0f64;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--entries" => {
                cfg.entries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--entries takes a number"));
            }
            "--updates" => {
                cfg.updates = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--updates takes a number"));
            }
            "--sessions" => {
                let spec = it.next().unwrap_or_else(|| usage("--sessions takes A,B,C"));
                cfg.session_counts = spec
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage("bad session count")))
                    .collect();
                if cfg.session_counts.is_empty() {
                    usage("--sessions needs at least one count");
                }
            }
            "--repeats" => {
                cfg.repeats = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--repeats takes a number"));
            }
            "--floor" => {
                floor = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--floor takes a number"));
            }
            "--out" => out = it.next().unwrap_or_else(|| usage("--out takes a path")),
            "--help" | "-h" => {
                println!(
                    "usage: master_fanout [--entries N] [--updates N] \
                     [--sessions A,B,C] [--repeats N] [--floor X] [--out PATH]"
                );
                return;
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    let report = run(&cfg);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });

    println!(
        "# master_fanout — {} entries, {} updates/run, +{} residual sessions",
        report.entries,
        report.updates,
        report.rungs.values().next().map_or(0, |r| r.residual_sessions),
    );
    for rung in report.rungs.values() {
        println!(
            "  {:>4} sessions  routed {:>10.0} ops/s | naive {:>10.0} ops/s | {:>6.1}x  \
             (install {:>6.1}us/session, {} actions verified equal)",
            rung.sessions,
            rung.routed_ops_per_sec,
            rung.naive_ops_per_sec,
            rung.speedup,
            rung.install_us_per_session,
            rung.actions_compared,
        );
    }
    for c in ["fbdr_resync_route_indexed_total", "fbdr_resync_route_scan_total",
              "fbdr_resync_route_skipped_total"] {
        if let Some(v) = report.counters.get(c) {
            println!("  {c} = {v}");
        }
    }
    println!("  wrote {out}");

    if !(report.speedup_at_max_sessions >= floor) {
        eprintln!(
            "FAIL: routed fan-out speedup {:.2}x at {} sessions is below the {floor}x floor",
            report.speedup_at_max_sessions, report.max_sessions
        );
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}; see --help");
    std::process::exit(2);
}
