//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENT…] [--scale small|paper|large] [--json]
//!
//! EXPERIMENT: table1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | fig8 |
//!             fig9 | other-queries | sync-ablation | selection-ablation |
//!             overheads | latency | composition | all
//! ```
//!
//! `--json` emits one machine-readable document with every experiment's
//! title, headers and rows (for plotting) instead of aligned text tables.

use fbdr_bench::{hits, protocol, render_table, tables, traffic, Params, Scale};

/// One rendered experiment: a titled table.
struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

fn table(title: impl Into<String>, headers: &[&str], rows: Vec<Vec<String>>) -> Table {
    Table {
        title: title.into(),
        headers: headers.iter().map(|s| s.to_string()).collect(),
        rows,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut json = false;
    let mut which: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--scale" => {
                let v = it.next().unwrap_or_default();
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale {v:?}; use small|paper|large");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [EXPERIMENT…] [--scale small|paper|large] [--json]\n\
                     experiments: table1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9\n\
                     \x20            other-queries sync-ablation selection-ablation\n\
                     \x20            overheads latency composition all"
                );
                return;
            }
            other => which.push(other.to_owned()),
        }
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = [
            "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "other-queries", "sync-ablation", "selection-ablation", "overheads", "latency",
            "composition",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let params = Params::new(scale);
    if !json {
        println!(
            "# fbdr reproduction — scale: {:?} ({} employees, {} queries/day)",
            scale, params.dir.employees, params.day_queries
        );
    }
    let mut docs: Vec<serde_json::Value> = Vec::new();
    for w in which {
        let t = run(&w, &params);
        if json {
            docs.push(serde_json::json!({
                "experiment": w,
                "title": t.title,
                "headers": t.headers,
                "rows": t.rows,
            }));
        } else {
            let headers: Vec<&str> = t.headers.iter().map(String::as_str).collect();
            print!("{}", render_table(&t.title, &headers, &t.rows));
        }
    }
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({
                "scale": format!("{scale:?}"),
                "employees": params.dir.employees,
                "queries_per_day": params.day_queries,
                "experiments": docs,
            }))
            .expect("static structure serializes")
        );
    }
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

fn f3(x: f64) -> String {
    format!("{x:.3}")
}

fn run(which: &str, params: &Params) -> Table {
    match which {
        "table1" => table(
            "Table 1: workload distribution",
            &["type of query", "paper", "measured"],
            tables::table1(params)
                .into_iter()
                .map(|(t, e, m)| vec![t, pct(e), pct(m)])
                .collect(),
        ),
        "fig2" => table(
            "Figure 2: distributed operation processing (referral costs)",
            &["scenario", "round trips", "referrals", "entries", "elapsed ms"],
            protocol::fig2()
                .into_iter()
                .map(|r| {
                    vec![
                        r.scenario,
                        r.round_trips.to_string(),
                        r.referrals.to_string(),
                        r.entries.to_string(),
                        format!("{:.0}", r.elapsed_ms),
                    ]
                })
                .collect(),
        ),
        "fig3" => table(
            "Figure 3: an example ReSync session",
            &["phase", "PDU"],
            protocol::fig3()
                .into_iter()
                .flat_map(|(phase, lines)| {
                    lines.into_iter().map(move |l| vec![phase.clone(), l])
                })
                .collect(),
        ),
        "fig4" => table(
            "Figure 4: hit ratio vs replica size (serialNumber query)",
            &["budget", "filter size", "filter hit", "subtree size", "subtree hit"],
            hits::fig4(params)
                .into_iter()
                .map(|r| {
                    vec![
                        pct(r.budget_frac),
                        pct(r.filter_size_frac),
                        f3(r.filter_hit),
                        pct(r.subtree_size_frac),
                        f3(r.subtree_hit),
                    ]
                })
                .collect(),
        ),
        "fig5" => table(
            format!(
                "Figure 5: hit ratio vs replica size (department query, R={} vs R={})",
                params.r_small, params.r_large
            ),
            &["budget", "hit R-small", "hit R-large", "subtree hit", "subtree size"],
            hits::fig5(params)
                .into_iter()
                .map(|r| {
                    vec![
                        r.budget.to_string(),
                        f3(r.hit_r_small),
                        f3(r.hit_r_large),
                        f3(r.subtree_hit),
                        r.subtree_size.to_string(),
                    ]
                })
                .collect(),
        ),
        "fig6" => table(
            "Figure 6: update traffic vs hit ratio (serialNumber query)",
            &[
                "budget",
                "filter hit",
                "filter entries",
                "filter DNs",
                "subtree hit",
                "subtree entries",
                "subtree DNs",
            ],
            traffic::fig6(params)
                .into_iter()
                .map(|r| {
                    vec![
                        pct(r.budget_frac),
                        f3(r.filter_hit),
                        r.filter_entries.to_string(),
                        r.filter_dns.to_string(),
                        f3(r.subtree_hit),
                        r.subtree_entries.to_string(),
                        r.subtree_dns.to_string(),
                    ]
                })
                .collect(),
        ),
        "fig7" => table(
            format!(
                "Figure 7: update traffic vs hit ratio (department query, R={} vs R={})",
                params.r_small, params.r_large
            ),
            &[
                "budget",
                "hit R-small",
                "traffic R-small",
                "hit R-large",
                "traffic R-large",
                "subtree traffic",
            ],
            traffic::fig7(params)
                .into_iter()
                .map(|r| {
                    vec![
                        r.budget.to_string(),
                        f3(r.hit_r_small),
                        r.traffic_r_small.to_string(),
                        f3(r.hit_r_large),
                        r.traffic_r_large.to_string(),
                        r.subtree_traffic.to_string(),
                    ]
                })
                .collect(),
        ),
        "fig8" | "fig9" => {
            let (title, rows) = if which == "fig8" {
                ("Figure 8: hit ratio vs # stored filters (serialNumber query)", hits::fig8(params))
            } else {
                ("Figure 9: hit ratio vs # stored filters (department query)", hits::fig9(params))
            };
            table(
                title,
                &["stored", "queries only", "generalized only", "both"],
                rows.into_iter()
                    .map(|r| {
                        vec![
                            r.stored.to_string(),
                            f3(r.cache_only),
                            f3(r.generalized_only),
                            f3(r.both),
                        ]
                    })
                    .collect(),
            )
        }
        "other-queries" => table(
            "§7.2(c): other query types",
            &["query type", "filters", "entries", "hit ratio", "note"],
            tables::other_queries(params)
                .into_iter()
                .map(|r| {
                    vec![
                        r.kind,
                        r.stored_filters.to_string(),
                        r.replica_entries.to_string(),
                        f3(r.hit_ratio),
                        r.note.to_owned(),
                    ]
                })
                .collect(),
        ),
        "sync-ablation" => table(
            "§5.2: filter synchronization strategies (steady-state traffic)",
            &["strategy", "full entries", "DN-only", "bytes", "diverged DNs"],
            tables::sync_ablation(params)
                .into_iter()
                .map(|r| {
                    vec![
                        r.strategy,
                        r.full_entries.to_string(),
                        r.dn_only.to_string(),
                        r.bytes.to_string(),
                        r.diverged.to_string(),
                    ]
                })
                .collect(),
        ),
        "selection-ablation" => table(
            "§6.2: selection strategies (dept query stream)",
            &["strategy", "hit ratio", "installs/revolutions", "load entries"],
            tables::selection_ablation(params)
                .into_iter()
                .map(|r| {
                    vec![
                        r.strategy,
                        f3(r.hit_ratio),
                        r.installs.to_string(),
                        r.load_entries.to_string(),
                    ]
                })
                .collect(),
        ),
        "overheads" => table(
            "§7.4: query processing overhead vs # stored filters",
            &["filters", "engine ns/q", "brute ns/q", "same-tmpl", "compiled", "never", "general"],
            tables::overheads(params)
                .into_iter()
                .map(|r| {
                    vec![
                        r.filters.to_string(),
                        format!("{:.0}", r.engine_ns),
                        format!("{:.0}", r.brute_ns),
                        r.same_template.to_string(),
                        r.compiled.to_string(),
                        r.skipped_never.to_string(),
                        r.general.to_string(),
                    ]
                })
                .collect(),
        ),
        "composition" => table(
            "Extension: union composition on batched OR lookups",
            &["filters", "single-filter hit", "union-composed hit"],
            tables::composition(params)
                .into_iter()
                .map(|r| vec![r.filters.to_string(), f3(r.single), f3(r.composed)])
                .collect(),
        ),
        "latency" => table(
            "Remote-user mean query latency (1 ms LAN, 50 ms WAN)",
            &["configuration", "entries", "hit ratio", "mean latency ms"],
            traffic::latency(params)
                .into_iter()
                .map(|r| {
                    vec![
                        r.config,
                        r.replica_entries.to_string(),
                        f3(r.hit_ratio),
                        format!("{:.1}", r.mean_latency_ms),
                    ]
                })
                .collect(),
        ),
        other => {
            eprintln!("unknown experiment {other:?}; see --help");
            std::process::exit(2);
        }
    }
}
