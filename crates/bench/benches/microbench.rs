//! Criterion microbenchmarks for the algorithmic kernels:
//! filter parsing, template extraction, the three containment paths
//! (§4 / §7.4), indexed DIT search, ReSync polling and replica answering.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fbdr_containment::{filter_contained, ContainmentEngine, PreparedQuery};
use fbdr_dit::{DitStore, Modification, UpdateOp};
use fbdr_ldap::{Entry, Filter, SearchRequest, Template};
use fbdr_obs::Obs;
use fbdr_replica::FilterReplica;
use fbdr_resync::{ReSyncControl, SyncMaster};

fn small_master(n: usize) -> SyncMaster {
    let mut m = SyncMaster::new();
    m.dit_mut().add_suffix("o=xyz".parse().expect("dn"));
    m.dit_mut().add(Entry::new("o=xyz".parse().expect("dn"))).expect("add");
    for i in 0..n {
        m.dit_mut()
            .add(
                Entry::new(format!("cn=e{i},o=xyz").parse().expect("dn"))
                    .with("objectclass", "person")
                    .with("serialNumber", &format!("{:06}", 100_000 + i))
                    .with("mail", &format!("u{i}@xyz.com"))
                    .with("departmentNumber", &format!("{}", 1000 + i % 40)),
            )
            .expect("add");
    }
    m
}

fn bench_parse(c: &mut Criterion) {
    let inputs = [
        ("equality", "(serialNumber=045612)"),
        ("conjunctive", "(&(objectclass=inetOrgPerson)(departmentNumber=240*))"),
        ("nested", "(&(|(sn=a*)(sn=b*))(!(ou=x))(age>=30))"),
    ];
    let mut g = c.benchmark_group("filter_parse");
    for (name, s) in inputs {
        g.bench_function(name, |b| b.iter(|| Filter::parse(black_box(s)).expect("parses")));
    }
    g.finish();
}

fn bench_template(c: &mut Criterion) {
    let f = Filter::parse("(&(objectclass=inetOrgPerson)(departmentNumber=2406))").expect("ok");
    c.bench_function("template_extraction", |b| b.iter(|| Template::of(black_box(&f))));
}

fn bench_containment_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("containment");
    // Same template (Prop 3).
    let q1 = Filter::parse("(serialNumber=0456*)").expect("ok");
    let q2 = Filter::parse("(serialNumber=045*)").expect("ok");
    g.bench_function("same_template_prop3", |b| {
        let mut e = ContainmentEngine::new();
        let a = PreparedQuery::new(SearchRequest::from_root(q1.clone()));
        let s = PreparedQuery::new(SearchRequest::from_root(q1.clone()));
        b.iter(|| e.filter_contained(black_box(&a), black_box(&s)))
    });
    // Cross template, compiled (Prop 2).
    let q3 = Filter::parse("(serialNumber=045612)").expect("ok");
    g.bench_function("cross_template_prop2", |b| {
        let mut e = ContainmentEngine::new();
        let a = PreparedQuery::new(SearchRequest::from_root(q3.clone()));
        let s = PreparedQuery::new(SearchRequest::from_root(q1.clone()));
        b.iter(|| e.filter_contained(black_box(&a), black_box(&s)))
    });
    let _ = q2;
    // General procedure (Prop 1).
    let g1 = Filter::parse("(&(a>=5)(b<=10))").expect("ok");
    let g2 = Filter::parse("(|(a=5)(b<=20))").expect("ok");
    g.bench_function("general_prop1", |b| {
        b.iter(|| filter_contained(black_box(&g1), black_box(&g2)))
    });
    g.finish();
}

fn bench_dit_search(c: &mut Criterion) {
    let m = small_master(5_000);
    let eq = SearchRequest::from_root(Filter::parse("(serialNumber=102500)").expect("ok"));
    let prefix = SearchRequest::from_root(Filter::parse("(serialNumber=1025*)").expect("ok"));
    let scan = SearchRequest::from_root(Filter::parse("(!(departmentNumber=1001))").expect("ok"));
    let mut g = c.benchmark_group("dit_search_5k");
    g.bench_function("equality_indexed", |b| b.iter(|| m.dit().search(black_box(&eq))));
    g.bench_function("prefix_indexed", |b| b.iter(|| m.dit().search(black_box(&prefix))));
    g.bench_function("negation_scan", |b| b.iter(|| m.dit().search_dns(black_box(&scan))));
    g.finish();
}

fn bench_resync_poll(c: &mut Criterion) {
    c.bench_function("resync_poll_100_updates", |b| {
        b.iter_with_setup(
            || {
                let mut m = small_master(2_000);
                let req = SearchRequest::from_root(
                    Filter::parse("(departmentNumber=1005)").expect("ok"),
                );
                let resp = m.resync(&req, ReSyncControl::poll(None)).expect("initial");
                let cookie = resp.cookie.expect("cookie");
                for i in 0..100 {
                    let dn = format!("cn=e{},o=xyz", i * 17 % 2000);
                    let _ = m.apply(UpdateOp::Modify {
                        dn: dn.parse().expect("dn"),
                        mods: vec![Modification::Replace(
                            "departmentNumber".into(),
                            vec![format!("{}", 1000 + i % 40).into()],
                        )],
                    });
                }
                (m, req, cookie)
            },
            |(mut m, req, cookie)| {
                m.resync(&req, ReSyncControl::poll(Some(cookie))).expect("poll")
            },
        )
    });
}

fn bench_replica_answer(c: &mut Criterion) {
    let mut g = c.benchmark_group("replica_try_answer");
    for n_filters in [50usize, 200] {
        let mut m = small_master(5_000);
        let mut r = FilterReplica::new(0);
        for i in 0..n_filters {
            let f = Filter::parse(&format!("(serialNumber={:05}*)", 10_000 + i)).expect("ok");
            r.install_filter(&mut m, SearchRequest::from_root(f)).expect("install");
        }
        let hit = SearchRequest::from_root(Filter::parse("(serialNumber=100150)").expect("ok"));
        let miss = SearchRequest::from_root(Filter::parse("(serialNumber=999999)").expect("ok"));
        g.bench_with_input(BenchmarkId::new("hit", n_filters), &n_filters, |b, _| {
            b.iter(|| r.try_answer(black_box(&hit)))
        });
        g.bench_with_input(BenchmarkId::new("miss", n_filters), &n_filters, |b, _| {
            b.iter(|| r.try_answer(black_box(&miss)))
        });
    }
    g.finish();
}

/// The observability acceptance check: `try_answer` with no `Obs`
/// attached (the branch-cheap disabled path) must run within a few
/// percent of the pre-instrumentation cost, and even the fully active
/// metrics path (histograms on, no subscriber) should stay cheap
/// relative to the answering work itself.
fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead_try_answer");
    let hit = SearchRequest::from_root(Filter::parse("(serialNumber=100150)").expect("ok"));
    for (name, obs) in [("disabled", Obs::off()), ("metrics_active", Obs::new())] {
        let mut m = small_master(5_000);
        let r = FilterReplica::with_obs(0, obs);
        for i in 0..50 {
            let f = Filter::parse(&format!("(serialNumber={:05}*)", 10_000 + i)).expect("ok");
            r.install_filter(&mut m, SearchRequest::from_root(f)).expect("install");
        }
        g.bench_function(name, |b| b.iter(|| r.try_answer(black_box(&hit))));
    }
    g.finish();
}

fn bench_store_updates(c: &mut Criterion) {
    c.bench_function("dit_add_100_entries", |b| {
        b.iter(|| {
            let mut d = DitStore::new();
            d.add_suffix("o=x".parse().expect("dn"));
            d.add(Entry::new("o=x".parse().expect("dn"))).expect("add");
            for i in 0..100 {
                d.add(
                    Entry::new(format!("cn=e{i},o=x").parse().expect("dn"))
                        .with("objectclass", "person")
                        .with("serialNumber", &format!("{i:06}")),
                )
                .expect("add");
            }
            d
        })
    });
}

fn bench_ldif(c: &mut Criterion) {
    let m = small_master(500);
    let text = m.dit().export_ldif(None);
    c.bench_function("ldif_export_500", |b| b.iter(|| m.dit().export_ldif(None)));
    c.bench_function("ldif_parse_500", |b| {
        b.iter(|| fbdr_ldap::ldif::parse_ldif(black_box(&text)).expect("parses"))
    });
}

fn bench_sort(c: &mut Criterion) {
    let m = small_master(2_000);
    let req = SearchRequest::from_root(Filter::parse("(objectclass=person)").expect("ok"));
    c.bench_function("search_sorted_2k", |b| {
        b.iter(|| {
            m.dit()
                .search_sorted(black_box(&req), &[fbdr_ldap::SortKey::descending("serialNumber")])
        })
    });
}

fn bench_simplify(c: &mut Criterion) {
    let f = Filter::parse("(&(a=1)(&(b=2)(&(c=3)(a=1)))(|(d=4)(|(e=5)(d=4))))").expect("ok");
    c.bench_function("filter_simplify", |b| b.iter(|| black_box(&f).simplify()));
}

/// Galloping posting-list intersection against `BTreeSet::intersection`
/// on the shapes the planner produces: a tiny equality candidate list
/// against a large stored-filter list, and two comparable mid-size lists.
fn bench_posting(c: &mut Criterion) {
    use std::collections::BTreeSet;
    let mut g = c.benchmark_group("posting_intersect");
    let shapes: [(&str, Vec<u32>, Vec<u32>); 2] = [
        ("point_vs_100k", vec![3, 31_337, 99_999], (0..100_000).collect()),
        (
            "mid_vs_mid",
            (0..100_000).step_by(7).collect(),
            (0..100_000).step_by(13).collect(),
        ),
    ];
    for (name, a, b_list) in &shapes {
        g.bench_with_input(BenchmarkId::new("gallop", name), &(), |b, ()| {
            b.iter(|| fbdr_replica::posting::intersect(black_box(a), black_box(b_list)))
        });
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b_list.iter().copied().collect();
        g.bench_with_input(BenchmarkId::new("btreeset", name), &(), |b, ()| {
            b.iter(|| black_box(&sa).intersection(black_box(&sb)).copied().collect::<Vec<u32>>())
        });
    }
    g.finish();
}

/// The containment decision cache: a repeated point query answered with
/// the memoized decision (warm) versus paying the full containment loop
/// every time (cold — the cache is cleared each iteration).
fn bench_decision_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("decision_cache");
    let mut m = small_master(5_000);
    let r = FilterReplica::new(0);
    for i in 0..200 {
        let f = Filter::parse(&format!("(serialNumber={:05}*)", 10_000 + i)).expect("ok");
        r.install_filter(&mut m, SearchRequest::from_root(f)).expect("install");
    }
    let hit = SearchRequest::from_root(Filter::parse("(serialNumber=100150)").expect("ok"));
    g.bench_function("warm_hit_200_filters", |b| b.iter(|| r.try_answer(black_box(&hit))));
    g.bench_function("cold_hit_200_filters", |b| {
        b.iter(|| {
            r.clear_decision_cache();
            r.try_answer(black_box(&hit))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_template,
    bench_containment_paths,
    bench_dit_search,
    bench_resync_poll,
    bench_replica_answer,
    bench_obs_overhead,
    bench_store_updates,
    bench_ldif,
    bench_sort,
    bench_simplify,
    bench_posting,
    bench_decision_cache,
);
criterion_main!(benches);
