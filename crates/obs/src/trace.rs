//! The tracing half of the crate: structured [`Event`]s, the pluggable
//! [`Subscriber`] trait, and a bounded [`RingBuffer`] recorder used by
//! tests and examples to assert on emitted events.
//!
//! Events are flat: a `target` (the subsystem, e.g. `"resync"`), a `name`
//! (the moment, e.g. `"redelivery"`) and a small list of typed fields.
//! There is no global dispatcher — an [`Obs`](crate::Obs) handle owns at
//! most one subscriber, and instrumented components check a plain bool
//! before building any event, so the disabled path costs one branch.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// A typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, sequence numbers, nanoseconds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (ratios, scores).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Text (variant names, filter strings).
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v:?}"),
        }
    }
}

macro_rules! impl_from_field {
    ($($ty:ty => $variant:ident as $cast:ty),* $(,)?) => {
        $(impl From<$ty> for FieldValue {
            fn from(v: $ty) -> Self {
                FieldValue::$variant(v as $cast)
            }
        })*
    };
}

impl_from_field! {
    u64 => U64 as u64,
    u32 => U64 as u64,
    u16 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The emitting subsystem (`"containment"`, `"resync"`, ...).
    pub target: &'static str,
    /// The moment within the subsystem (`"decision"`, `"redelivery"`, ...).
    pub name: &'static str,
    /// Typed key/value payload, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// The value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// The value of field `key` as a `u64` (also accepts non-negative
    /// `I64` values).
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        match self.field(key)? {
            FieldValue::U64(v) => Some(*v),
            FieldValue::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.target, self.name)?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// Receives every event emitted through an [`Obs`](crate::Obs) handle
/// whose tracing is enabled. Implementations must be cheap and must not
/// call back into the instrumented component.
pub trait Subscriber: Send + Sync {
    /// Called once per emitted event, on the emitting thread.
    fn on_event(&self, event: &Event);
}

/// A bounded in-memory event recorder: keeps the most recent `capacity`
/// events, dropping the oldest. The subscriber of choice for tests and
/// examples — assertions read back exactly what the instrumented code
/// emitted.
#[derive(Debug)]
pub struct RingBuffer {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
}

impl RingBuffer {
    /// A recorder keeping at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        RingBuffer {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// A copy of the recorded events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Recorded events matching `target` and `name`.
    pub fn named(&self, target: &str, name: &str) -> Vec<Event> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.target == target && e.name == name)
            .cloned()
            .collect()
    }

    /// Number of recorded events matching `target` and `name`.
    pub fn count(&self, target: &str, name: &str) -> usize {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.target == target && e.name == name)
            .count()
    }

    /// Total events currently held (after any eviction).
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True when nothing has been recorded (or everything was cleared).
    pub fn is_empty(&self) -> bool {
        self.events.lock().unwrap().is_empty()
    }

    /// Discards all recorded events.
    pub fn clear(&self) {
        self.events.lock().unwrap().clear();
    }
}

impl Subscriber for RingBuffer {
    fn on_event(&self, event: &Event) {
        let mut q = self.events.lock().unwrap();
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, seq: u64) -> Event {
        Event {
            target: "test",
            name,
            fields: vec![("seq", FieldValue::U64(seq))],
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let rb = RingBuffer::new(2);
        rb.on_event(&ev("a", 1));
        rb.on_event(&ev("a", 2));
        rb.on_event(&ev("b", 3));
        assert_eq!(rb.len(), 2);
        assert_eq!(rb.count("test", "a"), 1);
        assert_eq!(rb.named("test", "b")[0].u64_field("seq"), Some(3));
    }

    #[test]
    fn field_lookup_and_display() {
        let e = Event {
            target: "resync",
            name: "redelivery",
            fields: vec![
                ("seq", FieldValue::U64(7)),
                ("mode", FieldValue::Str("poll".into())),
            ],
        };
        assert_eq!(e.u64_field("seq"), Some(7));
        assert_eq!(e.field("mode"), Some(&FieldValue::Str("poll".into())));
        assert_eq!(e.to_string(), "resync.redelivery seq=7 mode=\"poll\"");
    }
}
