#![warn(missing_docs)]
//! **fbdr-obs** — observability for the replication stack, with zero
//! required dependencies (vendored shims only).
//!
//! The paper's evaluation (§7) is built on per-stage measurements:
//! containment decision cost (§7.4), ReSync message and entry counts
//! (§7.3), hit rates after each selection revolution (§7.2). This crate
//! supplies the instruments the rest of the workspace records them with:
//!
//! * [`MetricsRegistry`] — named atomic [`Counter`]s/[`Gauge`]s and
//!   log2-bucketed [`Histogram`]s (recorded in nanoseconds, reported as
//!   p50/p90/p99/max), rendered as Prometheus-style text or a
//!   serializable [`MetricsSnapshot`].
//! * A structured tracing facade — [`event!`]/[`span!`] emit flat typed
//!   [`Event`]s to a pluggable [`Subscriber`]; the [`RingBuffer`]
//!   recorder lets tests assert on exactly what was emitted.
//! * The [`Obs`] handle that ties both together and keeps the
//!   *uninstrumented* path branch-cheap: a component holding
//!   [`Obs::off`] pays one predictable branch per hook, no allocation,
//!   no clock read, no atomics.
//!
//! # Attaching observability
//!
//! Components default to [`Obs::off`]. To observe them, build an active
//! handle and pass it in at construction:
//!
//! ```
//! use fbdr_obs::{Obs, RingBuffer, event};
//! use std::sync::Arc;
//!
//! let obs = Obs::new();
//! let trace = Arc::new(RingBuffer::new(128));
//! obs.set_subscriber(trace.clone());
//!
//! // Instrumented code does this (macro = branch + build + emit):
//! event!(obs, "resync", "redelivery", seq = 7u64, actions = 3usize);
//! obs.registry().counter("fbdr_resync_redeliveries_total").inc();
//!
//! assert_eq!(trace.count("resync", "redelivery"), 1);
//! assert_eq!(trace.events()[0].u64_field("seq"), Some(7));
//! let snap = obs.registry().snapshot();
//! assert_eq!(snap.counters["fbdr_resync_redeliveries_total"], 1);
//! ```

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use trace::{Event, FieldValue, RingBuffer, Subscriber};

use parking_lot::RwLock;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

struct ObsInner {
    /// Fixed at construction: `false` only for the shared [`Obs::off`]
    /// instance. Checked (as a plain bool) before any instrumentation
    /// work, so hooks on unobserved components cost one branch.
    active: bool,
    /// Mirror of "a subscriber is installed", readable without the lock.
    tracing: AtomicBool,
    registry: MetricsRegistry,
    subscriber: RwLock<Option<Arc<dyn Subscriber>>>,
}

/// A cheaply clonable observability handle: one [`MetricsRegistry`] plus
/// at most one tracing [`Subscriber`].
///
/// Clones share the same registry and subscriber, so every component of
/// one deployment (replica, driver, master, selector) is normally given
/// clones of a single `Obs` and their metrics aggregate in one place.
///
/// The default handle is [`Obs::off`]: permanently inert, shared
/// process-wide, and free to clone. Instrumented components check
/// [`Obs::is_active`] (a plain field read) before touching the clock,
/// the registry or the subscriber — the "disabled-subscriber fast path"
/// whose cost the microbench pins below 5% on `try_answer`.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<ObsInner>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::off()
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("active", &self.inner.active)
            .field("tracing", &self.tracing_enabled())
            .finish()
    }
}

impl Obs {
    /// An active handle with a fresh empty registry and no subscriber.
    pub fn new() -> Self {
        Obs {
            inner: Arc::new(ObsInner {
                active: true,
                tracing: AtomicBool::new(false),
                registry: MetricsRegistry::new(),
                subscriber: RwLock::new(None),
            }),
        }
    }

    /// The shared inert handle: nothing is recorded, nothing is emitted,
    /// [`set_subscriber`](Obs::set_subscriber) is a no-op. This is the
    /// default every component starts with.
    pub fn off() -> Self {
        static OFF: OnceLock<Obs> = OnceLock::new();
        OFF.get_or_init(|| Obs {
            inner: Arc::new(ObsInner {
                active: false,
                tracing: AtomicBool::new(false),
                registry: MetricsRegistry::new(),
                subscriber: RwLock::new(None),
            }),
        })
        .clone()
    }

    /// True unless this is the inert [`Obs::off`] handle. Instrumentation
    /// guards on this before doing any work.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.inner.active
    }

    /// True when a subscriber is installed (and the handle is active):
    /// events built by [`event!`]/[`span!`] will actually be delivered.
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.inner.active && self.inner.tracing.load(Ordering::Relaxed)
    }

    /// The metrics registry behind this handle. On the inert handle this
    /// is a permanently empty registry that instrumentation never writes
    /// to (guarded by [`Obs::is_active`]).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// Installs (or replaces) the tracing subscriber. No-op on the inert
    /// handle.
    pub fn set_subscriber(&self, subscriber: Arc<dyn Subscriber>) {
        if !self.inner.active {
            return;
        }
        *self.inner.subscriber.write() = Some(subscriber);
        self.inner.tracing.store(true, Ordering::Relaxed);
    }

    /// Removes the subscriber; subsequent events are dropped cheaply.
    pub fn clear_subscriber(&self) {
        if !self.inner.active {
            return;
        }
        self.inner.tracing.store(false, Ordering::Relaxed);
        *self.inner.subscriber.write() = None;
    }

    /// Delivers `event` to the subscriber, if one is installed. Callers
    /// normally go through [`event!`], which skips building the event
    /// entirely when tracing is off.
    pub fn emit(&self, event: Event) {
        if !self.tracing_enabled() {
            return;
        }
        let sub = self.inner.subscriber.read().clone();
        if let Some(sub) = sub {
            sub.on_event(&event);
        }
    }

    /// Opens a timed span. When the handle is active the span measures
    /// wall time and, on drop, records it into the registry histogram
    /// `fbdr_<target>_<name>_ns` and emits a `<target>.<name>` event
    /// (with a `duration_ns` field plus any fields added via
    /// [`Span::record`]). On the inert handle the span is a no-op shell.
    pub fn span(&self, target: &'static str, name: &'static str) -> Span {
        if !self.inner.active {
            return Span { inner: None };
        }
        Span {
            inner: Some(SpanInner {
                obs: self.clone(),
                target,
                name,
                start: Instant::now(),
                fields: Vec::new(),
            }),
        }
    }
}

struct SpanInner {
    obs: Obs,
    target: &'static str,
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, FieldValue)>,
}

/// A timed scope opened by [`Obs::span`] or the [`span!`] macro. Dropping
/// it records the elapsed nanoseconds into the histogram
/// `fbdr_<target>_<name>_ns` and emits a closing event when tracing is
/// enabled.
#[must_use = "a span measures until it is dropped; binding it to _ drops it immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Attaches a field to the closing event (no-op on an inert span).
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.into()));
        }
    }

    /// True when this span is actually measuring (its `Obs` was active).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let elapsed = inner.start.elapsed().as_nanos() as u64;
        let name = format!("fbdr_{}_{}_ns", inner.target, inner.name);
        inner.obs.registry().histogram(&name).record(elapsed);
        if inner.obs.tracing_enabled() {
            let mut fields = inner.fields;
            fields.push(("duration_ns", FieldValue::U64(elapsed)));
            inner.obs.emit(Event {
                target: inner.target,
                name: inner.name,
                fields,
            });
        }
    }
}

/// Emits a structured [`Event`] through an [`Obs`] handle.
///
/// Field expressions are evaluated **only when tracing is enabled**, so
/// an `event!` on a hot path costs a single branch while no subscriber is
/// installed.
///
/// ```
/// use fbdr_obs::{event, Obs, RingBuffer};
/// use std::sync::Arc;
///
/// let obs = Obs::new();
/// let rb = Arc::new(RingBuffer::new(8));
/// obs.set_subscriber(rb.clone());
/// event!(obs, "containment", "decision", contained = true, path = "same_template");
/// assert_eq!(rb.count("containment", "decision"), 1);
/// ```
#[macro_export]
macro_rules! event {
    ($obs:expr, $target:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $obs.tracing_enabled() {
            $obs.emit($crate::Event {
                target: $target,
                name: $name,
                fields: vec![
                    $((stringify!($key), $crate::FieldValue::from($value))),*
                ],
            });
        }
    };
}

/// Opens a timed [`Span`] through an [`Obs`] handle; sugar for
/// [`Obs::span`].
///
/// ```
/// use fbdr_obs::{span, Obs};
///
/// let obs = Obs::new();
/// {
///     let _span = span!(obs, "selection", "revolve");
///     // ... measured work ...
/// }
/// assert_eq!(obs.registry().histogram("fbdr_selection_revolve_ns").count(), 1);
/// ```
#[macro_export]
macro_rules! span {
    ($obs:expr, $target:expr, $name:expr) => {
        $obs.span($target, $name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert_and_shared() {
        let a = Obs::off();
        let b = Obs::default();
        assert!(!a.is_active());
        assert!(!b.tracing_enabled());
        a.set_subscriber(Arc::new(RingBuffer::new(4)));
        assert!(!a.tracing_enabled());
        let span = a.span("x", "y");
        assert!(!span.is_active());
        drop(span);
        assert!(a.registry().snapshot().is_empty());
        // The inert handle is one shared instance.
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
    }

    #[test]
    fn event_macro_skips_field_eval_when_disabled() {
        let obs = Obs::new();
        let mut evaluated = false;
        event!(obs, "t", "n", x = {
            evaluated = true;
            1u64
        });
        assert!(!evaluated, "fields must not be built without a subscriber");
        obs.set_subscriber(Arc::new(RingBuffer::new(4)));
        event!(obs, "t", "n", x = {
            evaluated = true;
            1u64
        });
        assert!(evaluated);
    }

    #[test]
    fn span_records_histogram_and_event() {
        let obs = Obs::new();
        let rb = Arc::new(RingBuffer::new(4));
        obs.set_subscriber(rb.clone());
        {
            let mut span = span!(obs, "resync", "exchange");
            span.record("seq", 3u64);
        }
        let snap = obs.registry().snapshot();
        assert_eq!(snap.histograms["fbdr_resync_exchange_ns"].count, 1);
        let events = rb.named("resync", "exchange");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].u64_field("seq"), Some(3));
        assert!(events[0].u64_field("duration_ns").is_some());
    }

    #[test]
    fn clear_subscriber_stops_delivery() {
        let obs = Obs::new();
        let rb = Arc::new(RingBuffer::new(4));
        obs.set_subscriber(rb.clone());
        event!(obs, "t", "a");
        obs.clear_subscriber();
        event!(obs, "t", "b");
        assert_eq!(rb.len(), 1);
    }

    #[test]
    fn clones_share_registry_and_subscriber() {
        let obs = Obs::new();
        let clone = obs.clone();
        clone.registry().counter("shared_total").inc();
        assert_eq!(obs.registry().snapshot().counters["shared_total"], 1);
        let rb = Arc::new(RingBuffer::new(4));
        obs.set_subscriber(rb.clone());
        event!(clone, "t", "n");
        assert_eq!(rb.len(), 1);
    }
}
