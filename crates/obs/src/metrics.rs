//! The metrics half of the crate: named atomic counters and gauges plus
//! log2-bucketed latency histograms, collected in a [`MetricsRegistry`]
//! that renders Prometheus-style text or a serializable snapshot.
//!
//! All instruments use relaxed atomic operations: each counter is
//! individually exact (no lost increments) but a snapshot taken while
//! writers are in flight may observe related counters mid-update. Once
//! writers quiesce, every reading is exact — the property the workspace
//! concurrency tests pin down.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonically increasing counter.
///
/// Increments are `fetch_add(_, Relaxed)`: wait-free, exact after
/// quiesce, and with no ordering relationship to any other metric.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh zeroed counter (not attached to any registry).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (e.g. after a training phase).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A settable signed gauge (current level of something, not a tally).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket `i` counts samples in `[2^i, 2^(i+1))`
/// (zero folds into bucket 0), so 64 buckets cover the whole `u64` range.
const BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples, meant for latencies
/// recorded in **nanoseconds**.
///
/// Recording is two relaxed `fetch_add`s plus a `fetch_max` — cheap
/// enough for per-query paths. Quantiles are read from the bucket
/// boundaries, so they are upper-bound estimates with at most 2× error
/// (one octave); `max` is exact.
///
/// ```
/// use fbdr_obs::Histogram;
///
/// let h = Histogram::new();
/// for v in [100, 200, 400, 100_000] {
///     h.record(v);
/// }
/// let s = h.snapshot();
/// assert_eq!(s.count, 4);
/// assert_eq!(s.max, 100_000);
/// assert!(s.p50 >= 200 && s.p50 < 100_000);
/// assert_eq!(s.p99, 100_000);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index of a sample: `floor(log2(v))`, with 0 → bucket 0.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `i`.
    #[inline]
    fn upper_bound(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (2u64 << i) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records the elapsed time since `start`, in nanoseconds.
    #[inline]
    pub fn record_since(&self, start: Instant) {
        self.record(start.elapsed().as_nanos() as u64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// containing it, capped at the observed maximum. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let max = self.max.load(Ordering::Relaxed);
        let mut cum = 0u64;
        for i in 0..BUCKETS {
            cum += self.buckets[i].load(Ordering::Relaxed);
            if cum >= target {
                return Self::upper_bound(i).min(max);
            }
        }
        max
    }

    /// A point-in-time summary (count, sum, max, p50/p90/p99/p999).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }

    /// Non-empty `(upper_bound, cumulative_count)` pairs, for exposition.
    fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for i in 0..BUCKETS {
            let n = self.buckets[i].load(Ordering::Relaxed);
            if n > 0 {
                cum += n;
                out.push((Self::upper_bound(i), cum));
            }
        }
        out
    }
}

/// Plain-data summary of a [`Histogram`], as stored in bench reports.
///
/// Times are nanoseconds; `p50`/`p90`/`p99`/`p999` are octave upper
/// bounds (at most 2× above the true quantile), `max` is exact. `p999`
/// defaults to 0 when decoding reports written before it existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (ns).
    pub sum: u64,
    /// Largest sample (ns), exact.
    pub max: u64,
    /// Median estimate (ns).
    pub p50: u64,
    /// 90th-percentile estimate (ns).
    pub p90: u64,
    /// 99th-percentile estimate (ns).
    pub p99: u64,
    /// 99.9th-percentile estimate (ns).
    #[serde(default)]
    pub p999: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Plain-data snapshot of a whole registry: every counter, gauge and
/// histogram by name. Serializable, so bench reports can embed it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// A named registry of [`Counter`]s, [`Gauge`]s and [`Histogram`]s.
///
/// `counter`/`gauge`/`histogram` get-or-register: the first call for a
/// name creates the instrument, later calls return the same `Arc` — so
/// two components asking for `"fbdr_resync_redeliveries_total"` share one
/// underlying atomic. Callers on hot paths should resolve their handles
/// once and keep the `Arc`; the lookup itself takes a short lock.
///
/// ```
/// use fbdr_obs::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// reg.counter("fbdr_demo_requests_total").inc();
/// reg.counter("fbdr_demo_requests_total").add(2);
/// reg.histogram("fbdr_demo_latency_ns").record(1500);
///
/// let snap = reg.snapshot();
/// assert_eq!(snap.counters["fbdr_demo_requests_total"], 3);
/// assert_eq!(snap.histograms["fbdr_demo_latency_ns"].count, 1);
/// assert!(reg.render_prometheus().contains("fbdr_demo_requests_total 3"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// A point-in-time [`MetricsSnapshot`] of every registered instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Renders every instrument in the Prometheus text exposition format:
    /// counters as `name value`, histograms as cumulative
    /// `name_bucket{le="..."}` lines plus `name_sum`/`name_count`, with
    /// quantile estimates as `name{quantile="..."}` gauges for human
    /// readers.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.counters.read().iter() {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.get());
        }
        for (name, g) in self.gauges.read().iter() {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", g.get());
        }
        for (name, h) in self.histograms.read().iter() {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut total = 0;
            for (le, cum) in h.cumulative_buckets() {
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
                total = cum;
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {total}");
            let s = h.snapshot();
            let _ = writeln!(out, "{name}_sum {}", s.sum);
            let _ = writeln!(out, "{name}_count {}", s.count);
            let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", s.p50);
            let _ = writeln!(out, "{name}{{quantile=\"0.9\"}} {}", s.p90);
            let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", s.p99);
            let _ = writeln!(out, "{name}{{quantile=\"0.999\"}} {}", s.p999);
            let _ = writeln!(out, "{name}{{quantile=\"1.0\"}} {}", s.max);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
        assert_eq!(Histogram::upper_bound(0), 1);
        assert_eq!(Histogram::upper_bound(1), 3);
        assert_eq!(Histogram::upper_bound(63), u64::MAX);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        // Octave upper bounds: within 2x above the true quantile.
        assert!(s.p50 >= 500 && s.p50 <= 1023, "p50={}", s.p50);
        assert!(s.p90 >= 900 && s.p90 <= 1000, "p90={}", s.p90);
        assert!(s.p99 >= 990 && s.p99 <= 1000, "p99={}", s.p99);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn registry_shares_instruments_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.inc();
        b.inc();
        assert_eq!(reg.counter("x_total").get(), 2);
        reg.gauge("depth").set(-3);
        assert_eq!(reg.snapshot().gauges["depth"], -3);
    }

    #[test]
    fn prometheus_render_has_buckets_and_quantiles() {
        let reg = MetricsRegistry::new();
        reg.histogram("lat_ns").record(5);
        reg.histogram("lat_ns").record(900);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{le=\"7\"} 1"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_ns_count 2"));
        assert!(text.contains("lat_ns{quantile=\"1.0\"} 900"));
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total").add(7);
        reg.histogram("h_ns").record(64);
        let snap = reg.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }
}
