//! The small-fleet equivalence check the simulator's credibility rests
//! on: event-driven delivery (coalesced batches, per-link latency, FIFO
//! clamping) must leave every replica holding exactly the content a
//! synchronous driver gets by draining its persist channel after every
//! single update.
//!
//! The twin master is built with the simulator's documented topology
//! (`c=s{c},o=xyz` per shard, `cn=e{i},...` entries cycling through
//! departments) and replays [`FleetSim::ops`] in index order — valid
//! because a steady workload gives every op a distinct timestamp, so the
//! event scheduler cannot reorder them.

use fbdr_ldap::{Entry, Filter, Scope, SearchRequest};
use fbdr_resync::{
    NotifyPolicy, ReSyncControl, ReplicaContent, ShardId, ShardMap, ShardedMaster, SyncTransport,
};
use fbdr_sim::{FleetConfig, FleetSim, Workload};

fn country_dn(c: usize) -> fbdr_ldap::Dn {
    format!("c=s{c},o=xyz").parse().unwrap()
}

/// A synchronous twin of the sim's fleet: same topology, same sessions,
/// but every update is followed by an immediate full drain — the
/// synchronous driver's delivery model.
struct SyncTwin {
    master: ShardedMaster,
    /// One persist session per (country, dept): receiver + content.
    groups: Vec<(ShardId, crossbeam::channel::Receiver<fbdr_resync::NotifyBatch>, ReplicaContent)>,
    depts: usize,
}

impl SyncTwin {
    fn new(cfg: &FleetConfig) -> Self {
        let mut map = ShardMap::new(ShardId::ZERO);
        for c in 0..cfg.shards {
            map.assign(country_dn(c), ShardId::new(c as u16));
        }
        let mut master = ShardedMaster::new(map);
        for c in 0..cfg.shards {
            let dit = master.shard_mut(ShardId::new(c as u16)).dit_mut();
            dit.add_suffix("o=xyz".parse().unwrap());
            dit.add(Entry::new("o=xyz".parse().unwrap())).unwrap();
            dit.add(Entry::new(country_dn(c)).with("objectclass", "country")).unwrap();
            for i in 0..cfg.entries_per_shard {
                dit.add(
                    Entry::new(format!("cn=e{i},c=s{c},o=xyz").parse().unwrap())
                        .with("objectclass", "person")
                        .with("cn", &format!("e{i}"))
                        .with("dept", &(i % cfg.depts).to_string()),
                )
                .unwrap();
            }
        }
        master.set_notify_policy(NotifyPolicy::immediate());
        let mut groups = Vec::new();
        for c in 0..cfg.shards {
            for d in 0..cfg.depts {
                let shard = ShardId::new(c as u16);
                let req = SearchRequest::new(
                    country_dn(c),
                    Scope::Subtree,
                    Filter::parse(&format!("(dept={d})")).unwrap(),
                );
                let resp = master.resync_at(shard, &req, ReSyncControl::persist(None)).unwrap();
                let rx = master.take_receiver_at(shard, resp.cookie.unwrap()).unwrap();
                let mut content = ReplicaContent::new();
                content.apply_all(&resp.actions);
                groups.push((shard, rx, content));
            }
        }
        SyncTwin { master, groups, depts: cfg.depts }
    }

    /// Applies one op and synchronously drains every session's channel.
    fn apply(&mut self, op: fbdr_dit::UpdateOp) {
        self.master.apply(op).unwrap();
        for (_, rx, content) in &mut self.groups {
            for batch in rx.try_iter() {
                content.apply_all(&batch.actions);
            }
        }
    }

    fn content_of(&self, c: usize, d: usize) -> &ReplicaContent {
        &self.groups[c * self.depts + d].2
    }
}

#[test]
fn simulated_delivery_matches_the_synchronous_driver_entry_for_entry() {
    let mut cfg = FleetConfig::small(24, 13).coalesced(16, 30);
    cfg.updates = 120;
    cfg.workload = Workload::Steady { interval_ms: 7 }; // distinct op times
    let sim = FleetSim::new(cfg);

    let mut twin = SyncTwin::new(&cfg);
    for op in sim.ops().to_vec() {
        twin.apply(op);
    }

    let (report, contents) = sim.run_with_contents();
    assert_eq!(report.diverged, 0);
    assert!(report.wakeups > 0);

    for (r, content) in contents.iter().enumerate() {
        let c = r % cfg.shards;
        let d = (r / cfg.shards) % cfg.depts;
        let want = twin.content_of(c, d);
        assert_eq!(
            content.sorted_dns(),
            want.sorted_dns(),
            "replica {r} (country {c}, dept {d}) holds a different entry set"
        );
        // Entry-for-entry: every attribute of every entry must match.
        for dn_str in content.sorted_dns() {
            let dn: fbdr_ldap::Dn = dn_str.parse().unwrap();
            let got = content.get(&dn).expect("listed DN is present");
            let exp = want.get(&dn).expect("listed DN is present in the twin");
            assert_eq!(got, exp, "replica {r}: entry {dn_str} differs from synchronous delivery");
        }
    }
}

#[test]
fn per_update_wakeups_also_match_the_synchronous_driver() {
    // The degenerate coalescing policy (batch of 1, no delay) must be
    // behaviourally identical to the synchronous driver too.
    let mut cfg = FleetConfig::small(16, 21);
    cfg.updates = 80;
    cfg.workload = Workload::Steady { interval_ms: 5 };
    let sim = FleetSim::new(cfg);
    let mut twin = SyncTwin::new(&cfg);
    for op in sim.ops().to_vec() {
        twin.apply(op);
    }
    let (report, contents) = sim.run_with_contents();
    assert_eq!(report.diverged, 0);
    for (r, content) in contents.iter().enumerate() {
        let c = r % cfg.shards;
        let d = (r / cfg.shards) % cfg.depts;
        assert_eq!(content.sorted_dns(), twin.content_of(c, d).sorted_dns());
    }
}
