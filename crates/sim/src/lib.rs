#![warn(missing_docs)]
//! Deterministic discrete-event fleet simulator: thousands of
//! persist-mode replica sessions against [`ShardedMaster`]s.
//!
//! The synchronous driver in `fbdr-resync` exercises one replica at a
//! time; the fault harness in `fbdr-faults` injects failures into one
//! link. This crate closes the scale gap: an [`EventScheduler`] (the
//! promotion of the fault harness's `SimClock` into a real binary-heap
//! event queue with seeded tie-breaking) drives a whole fleet —
//! workload updates landing on sharded masters, coalesced notification
//! flushes, and per-link latency/jitter/fault models on every delivery
//! — all on a simulated millisecond clock with no wall time anywhere.
//! Two runs with equal [`FleetConfig`]s produce equal
//! [`FleetReport`]s, byte for byte once serialized.
//!
//! What the report measures maps directly onto the paper's persist-mode
//! concerns: **answer staleness** (how old is the oldest update in a
//! batch when the replica applies it — exact p50/p99/p999 over the raw
//! samples) and **notification amplification** (raw per-session updates
//! per wakeup, the win from master-side batching and coalescing).
//!
//! # Example: a small deterministic fleet
//!
//! ```
//! use fbdr_sim::{FleetConfig, FleetSim};
//!
//! // 100 replicas over 2 shards, seeded workload, per-update wakeups.
//! let cfg = FleetConfig::small(100, 42);
//! let report = FleetSim::new(cfg).run();
//! assert_eq!(report.sessions, 100);
//! assert!(report.wakeups > 0);
//!
//! // Determinism: the same seed replays the identical run.
//! let again = FleetSim::new(cfg).run();
//! assert_eq!(report, again);
//!
//! // Coalescing (batch up to 64 updates, hold at most 50 ms) reaches
//! // the same fleet content with far fewer wakeups.
//! let coalesced = FleetSim::new(cfg.coalesced(64, 50)).run();
//! assert_eq!(coalesced.content_digest, report.content_digest);
//! assert!(coalesced.wakeups < report.wakeups);
//! ```
//!
//! [`ShardedMaster`]: fbdr_resync::ShardedMaster

mod fleet;
mod sched;

pub use fleet::{
    AnswerLatencySummary, FleetConfig, FleetReport, FleetSim, StalenessSummary, Workload,
};
pub use sched::EventScheduler;
