//! The fleet simulation proper: a [`ShardedMaster`] serving thousands of
//! persist-mode replica sessions, driven entirely by discrete events.
//!
//! Topology: `shards` sync masters, each owning one country subtree
//! `c=s{i},o=xyz` holding `entries_per_shard` person entries. Replica
//! `r` installs one persistent filter `(dept=d)` under its country —
//! `country = r % shards`, `d = (r / shards) % depts` — so every update
//! that moves an entry between departments wakes every session watching
//! the old or the new department in that country.
//!
//! Three event kinds drive the run: `Apply` (one workload update lands
//! on the master), `FlushTick` (the master's coalescing flush timer),
//! and `Deliver` (one notification batch crosses a link and reaches its
//! replica). Answer staleness is sampled per delivered batch as
//! `delivery time − first enqueue time` of the oldest update in the
//! batch; notification amplification is raw updates per wakeup.

use crate::sched::EventScheduler;
use fbdr_dit::{Modification, UpdateOp};
use fbdr_faults::FaultPlan;
use fbdr_ldap::{Dn, Entry, Filter, Scope, SearchRequest};
use fbdr_net::link::splitmix64;
use fbdr_net::LinkProfile;
use fbdr_obs::Obs;
use fbdr_resync::{
    Cookie, GcConfig, NotifyPolicy, ReSyncControl, ReplicaContent, ShardId, ShardMap,
    ShardedMaster, SyncTransport,
};
use crossbeam::channel::{Receiver, TryRecvError};
use fbdr_resync::NotifyBatch;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// When the workload's updates land on the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workload {
    /// One update every `interval_ms`, forever-steady load.
    Steady {
        /// Milliseconds between consecutive updates.
        interval_ms: u64,
    },
    /// Every update lands inside the first `ramp_ms` milliseconds — the
    /// flash-crowd burst that makes per-update wakeups collapse.
    FlashCrowd {
        /// Length of the burst window in milliseconds.
        ramp_ms: u64,
    },
}

impl Workload {
    /// The arrival time of update `k` of `total`.
    fn arrival_ms(&self, k: usize, total: usize) -> u64 {
        match *self {
            Workload::Steady { interval_ms } => (k as u64 + 1) * interval_ms,
            Workload::FlashCrowd { ramp_ms } => {
                1 + (k as u64) * ramp_ms / (total.max(1) as u64)
            }
        }
    }
}

/// Everything that determines a fleet run. Two runs with equal configs
/// produce identical [`FleetReport`]s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of replica sessions (one persistent filter each).
    pub replicas: usize,
    /// Number of sync-master shards (one country subtree each).
    pub shards: usize,
    /// Person entries per country.
    pub entries_per_shard: usize,
    /// Department values entries cycle through; one filter per value.
    pub depts: usize,
    /// Workload updates to apply.
    pub updates: usize,
    /// Arrival process of those updates.
    pub workload: Workload,
    /// Master-side notification flush policy.
    pub policy: NotifyPolicy,
    /// Cadence of the master's flush timer, in milliseconds.
    pub flush_interval_ms: u64,
    /// Master→replica link latency model.
    pub link: LinkProfile,
    /// Per-thousand probability that a link drops (disconnects) at a
    /// delivery, forcing that replica onto cookie-based polling. 0
    /// disables link faults.
    pub link_drop_per_mille: u32,
    /// Cadence of the masters' causal-stability garbage collector, in
    /// simulated milliseconds: every tick runs one
    /// [`collect_garbage`](fbdr_resync::SyncMaster::collect_garbage)
    /// pass across the shards, on the simulated clock like every other
    /// event. 0 disables GC entirely (the monotonic-memory baseline).
    pub gc_every_ms: u64,
    /// Master seed: workload choices, tie-breaking, link jitter.
    pub seed: u64,
    /// Client query events interleaved with the workload: each picks a
    /// seeded replica and answers that replica's filter from its local
    /// content, sampling wall-clock answer latency into
    /// `fbdr_sim_answer_ns`. 0 disables query sampling.
    #[serde(default)]
    pub queries: usize,
}

impl FleetConfig {
    /// A small steady-state fleet with immediate (per-update) wakeups —
    /// the baseline arm of the coalescing ablation.
    pub fn small(replicas: usize, seed: u64) -> Self {
        FleetConfig {
            replicas,
            shards: 2,
            entries_per_shard: 64,
            depts: 4,
            updates: 100,
            workload: Workload::Steady { interval_ms: 10 },
            policy: NotifyPolicy::coalescing(1, 0),
            flush_interval_ms: 10,
            link: LinkProfile::constant(2),
            link_drop_per_mille: 0,
            gc_every_ms: 0,
            seed,
            queries: 0,
        }
    }

    /// The same fleet with a coalescing flush policy (`max_batch`,
    /// `max_delay_ms`) — the treatment arm of the ablation.
    pub fn coalesced(mut self, max_batch: u64, max_delay_ms: u64) -> Self {
        self.policy = NotifyPolicy::coalescing(max_batch, max_delay_ms);
        self
    }
}

/// Exact percentiles over the per-batch staleness samples, in
/// milliseconds. Computed from the raw sorted samples — not octave
/// buckets — so equal runs serialize byte-identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StalenessSummary {
    /// Number of delivered batches sampled.
    pub samples: u64,
    /// Median staleness (ms).
    pub p50_ms: u64,
    /// 99th percentile staleness (ms).
    pub p99_ms: u64,
    /// 99.9th percentile staleness (ms).
    pub p999_ms: u64,
    /// Worst observed staleness (ms).
    pub max_ms: u64,
    /// Mean staleness (ms, rounded down).
    pub mean_ms: u64,
}

impl StalenessSummary {
    fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return StalenessSummary::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let pct = |q: f64| samples[(((n as f64) * q).ceil() as usize).clamp(1, n) - 1];
        StalenessSummary {
            samples: n as u64,
            p50_ms: pct(0.50),
            p99_ms: pct(0.99),
            p999_ms: pct(0.999),
            max_ms: samples[n - 1],
            mean_ms: samples.iter().sum::<u64>() / n as u64,
        }
    }
}

/// Wall-clock percentiles over per-query local answer times, in
/// nanoseconds. Unlike every other report field this is *measured*, not
/// simulated — it varies run to run and is therefore excluded from
/// [`FleetReport`]'s equality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AnswerLatencySummary {
    /// Query events sampled.
    pub samples: u64,
    /// Median answer time (ns).
    pub p50_ns: u64,
    /// 99th percentile answer time (ns).
    pub p99_ns: u64,
    /// Worst observed answer time (ns).
    pub max_ns: u64,
    /// Mean answer time (ns, rounded down).
    pub mean_ns: u64,
}

impl AnswerLatencySummary {
    fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return AnswerLatencySummary::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let pct = |q: f64| samples[(((n as f64) * q).ceil() as usize).clamp(1, n) - 1];
        AnswerLatencySummary {
            samples: n as u64,
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
            max_ns: samples[n - 1],
            mean_ns: samples.iter().sum::<u64>() / n as u64,
        }
    }
}

/// The outcome of one fleet run.
///
/// Equality is manual: every simulated field participates, but the
/// wall-clock [`answer_latency`](FleetReport::answer_latency) summary is
/// skipped so equal-seed runs still compare equal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    /// Sessions that were installed (== configured replicas).
    pub sessions: usize,
    /// Workload updates applied.
    pub updates_applied: u64,
    /// Notification wakeups the masters sent (one per delivered batch).
    pub wakeups: u64,
    /// Raw per-session updates those wakeups carried.
    pub notified_updates: u64,
    /// `notified_updates / wakeups` — updates coalesced per wakeup.
    pub amplification_x: f64,
    /// Batches replicas consumed over the simulated links.
    pub deliveries: u64,
    /// Notification-queue overflows (channel teardowns under backpressure).
    pub overflows: u64,
    /// Replicas that converged by cookie poll after losing their channel.
    pub poll_fallbacks: u64,
    /// Replicas whose final content differs from a fresh master poll of
    /// their filter — the run's built-in convergence oracle; 0 in a
    /// correct run.
    pub diverged: u64,
    /// Per-batch answer staleness.
    pub staleness: StalenessSummary,
    /// Query events answered from replica-local content.
    pub queries_answered: u64,
    /// Entries those answers returned — a deterministic content probe
    /// (an answer against diverged content moves this count).
    pub answered_entries: u64,
    /// Wall-clock local answer latency (ns); excluded from equality.
    pub answer_latency: AnswerLatencySummary,
    /// FNV-1a digest over every replica's sorted content DNs — equal
    /// digests mean entry-for-entry equal fleets.
    pub content_digest: u64,
    /// Simulated end-of-run clock.
    pub sim_end_ms: u64,
}

impl PartialEq for FleetReport {
    fn eq(&self, other: &Self) -> bool {
        // answer_latency is wall-clock noise by design; everything else
        // must be bit-equal between equal-seed runs.
        self.sessions == other.sessions
            && self.updates_applied == other.updates_applied
            && self.wakeups == other.wakeups
            && self.notified_updates == other.notified_updates
            && self.amplification_x == other.amplification_x
            && self.deliveries == other.deliveries
            && self.overflows == other.overflows
            && self.poll_fallbacks == other.poll_fallbacks
            && self.diverged == other.diverged
            && self.staleness == other.staleness
            && self.queries_answered == other.queries_answered
            && self.answered_entries == other.answered_entries
            && self.content_digest == other.content_digest
            && self.sim_end_ms == other.sim_end_ms
    }
}

/// One replica session's simulation state.
struct ReplicaState {
    shard: ShardId,
    request: SearchRequest,
    cookie: Cookie,
    rx: Option<Receiver<NotifyBatch>>,
    content: ReplicaContent,
    /// FIFO clamp: no delivery may land before the previous one.
    next_free_ms: u64,
    /// Messages sent down this link so far (jitter stream index).
    msgs: u64,
    /// Per-link fault plan (None when faults are disabled).
    plan: Option<FaultPlan>,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Workload update `k` lands on the master.
    Apply(usize),
    /// The master's coalescing flush timer fires.
    FlushTick,
    /// One notification batch reaches replica `r`.
    Deliver(usize),
    /// The masters' garbage-collection timer fires.
    GcTick,
    /// Client query `k` is answered from a seeded replica's local
    /// content (answer-latency sampling).
    Query(usize),
}

/// The simulator: build with [`FleetSim::new`] (installs every session
/// and seeds the event queue), then [`FleetSim::run`] to completion.
pub struct FleetSim {
    cfg: FleetConfig,
    master: ShardedMaster,
    replicas: Vec<ReplicaState>,
    /// Per shard: master-side session id → replica index.
    session_index: Vec<BTreeMap<u32, usize>>,
    sched: EventScheduler<Event>,
    ops: Vec<UpdateOp>,
    staleness_ms: Vec<u64>,
    deliveries: u64,
    poll_fallbacks: u64,
    answer_ns: Vec<u64>,
    queries_answered: u64,
    answered_entries: u64,
    obs: Obs,
}

fn country_dn(c: usize) -> Dn {
    format!("c=s{c},o=xyz").parse().expect("valid dn")
}

fn entry_dn(c: usize, i: usize) -> Dn {
    format!("cn=e{i},c=s{c},o=xyz").parse().expect("valid dn")
}

impl FleetSim {
    /// Builds the sharded master, loads every shard's slice, installs
    /// one persist-mode session per replica and schedules the workload.
    ///
    /// # Panics
    ///
    /// Panics on zero shards/replicas/depts or when a session install
    /// fails (all installs are against a healthy in-process master).
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(cfg.shards > 0 && cfg.replicas > 0 && cfg.depts > 0, "degenerate fleet");
        let mut map = ShardMap::new(ShardId::ZERO);
        for c in 0..cfg.shards {
            map.assign(country_dn(c), ShardId::new(c as u16));
        }
        let mut master = ShardedMaster::new(map);
        for c in 0..cfg.shards {
            let dit = master.shard_mut(ShardId::new(c as u16)).dit_mut();
            dit.add_suffix("o=xyz".parse().expect("valid dn"));
            dit.add(Entry::new("o=xyz".parse().expect("valid dn"))).expect("suffix");
            dit.add(Entry::new(country_dn(c)).with("objectclass", "country"))
                .expect("country");
            for i in 0..cfg.entries_per_shard {
                dit.add(
                    Entry::new(entry_dn(c, i))
                        .with("objectclass", "person")
                        .with("cn", &format!("e{i}"))
                        .with("dept", &(i % cfg.depts).to_string()),
                )
                .expect("entry");
            }
        }
        master.set_notify_policy(cfg.policy);
        let obs = Obs::new();
        master.set_obs(obs.clone());

        // One persistent filter per replica.
        let mut replicas = Vec::with_capacity(cfg.replicas);
        let mut session_index: Vec<BTreeMap<u32, usize>> =
            (0..cfg.shards).map(|_| BTreeMap::new()).collect();
        for r in 0..cfg.replicas {
            let c = r % cfg.shards;
            let d = (r / cfg.shards) % cfg.depts;
            let shard = ShardId::new(c as u16);
            let request = SearchRequest::new(
                country_dn(c),
                Scope::Subtree,
                Filter::parse(&format!("(dept={d})")).expect("valid filter"),
            );
            let resp = master
                .resync_at(shard, &request, ReSyncControl::persist(None))
                .expect("install against a healthy master");
            let cookie = resp.cookie.expect("persist sessions carry a cookie");
            let rx = master.take_receiver_at(shard, cookie).expect("parked receiver");
            let mut content = ReplicaContent::new();
            content.apply_all(&resp.actions);
            session_index[c].insert(cookie.session(), r);
            let plan = (cfg.link_drop_per_mille > 0).then(|| {
                FaultPlan::builder(splitmix64(cfg.seed ^ (r as u64) ^ 0xFA17))
                    .disconnect_persist(f64::from(cfg.link_drop_per_mille) / 1000.0)
                    .build()
            });
            replicas.push(ReplicaState {
                shard,
                request,
                cookie,
                rx: Some(rx),
                content,
                next_free_ms: 0,
                msgs: 0,
                plan,
            });
        }

        // The workload: dept moves (cross-filter churn) with every fourth
        // update an in-place attribute touch on whatever department the
        // entry is in.
        let mut ops = Vec::with_capacity(cfg.updates);
        for k in 0..cfg.updates {
            let c = k % cfg.shards;
            let i = (splitmix64(cfg.seed ^ (k as u64)) as usize) % cfg.entries_per_shard;
            let op = if k % 4 == 3 {
                UpdateOp::Modify {
                    dn: entry_dn(c, i),
                    mods: vec![Modification::Replace(
                        "mail".into(),
                        vec![format!("m{k}@x").into()],
                    )],
                }
            } else {
                let d = (splitmix64(cfg.seed ^ (k as u64) ^ 0xDE97) as usize) % cfg.depts;
                UpdateOp::Modify {
                    dn: entry_dn(c, i),
                    mods: vec![Modification::Replace("dept".into(), vec![d.to_string().into()])],
                }
            };
            ops.push(op);
        }

        let mut sched = EventScheduler::new(cfg.seed);
        for k in 0..cfg.updates {
            sched.push(cfg.workload.arrival_ms(k, cfg.updates), Event::Apply(k));
        }
        if cfg.flush_interval_ms > 0 {
            sched.push(cfg.flush_interval_ms, Event::FlushTick);
        }
        if cfg.gc_every_ms > 0 {
            // The tick is the sole GC trigger: op-count cadence off, so
            // collection happens only on the simulated clock and the run
            // stays reproducible event-for-event.
            master.set_gc_config(GcConfig { every_ops: None, ..GcConfig::default() });
            sched.push(cfg.gc_every_ms, Event::GcTick);
        }
        if cfg.queries > 0 {
            // Spread query events uniformly over the update window so
            // samples see the content in every stage of convergence.
            let span = cfg.workload.arrival_ms(cfg.updates.saturating_sub(1), cfg.updates).max(1);
            for k in 0..cfg.queries {
                sched.push(1 + (k as u64) * span / (cfg.queries as u64), Event::Query(k));
            }
        }

        FleetSim {
            cfg,
            master,
            replicas,
            session_index,
            sched,
            ops,
            staleness_ms: Vec::new(),
            deliveries: 0,
            poll_fallbacks: 0,
            answer_ns: Vec::new(),
            queries_answered: 0,
            answered_entries: 0,
            obs,
        }
    }

    /// The observability handle the sim records staleness samples into
    /// (`fbdr_sim_staleness_ms`, plus the masters' notify counters).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Read access to the sharded master (e.g. to render its metrics).
    pub fn master(&self) -> &ShardedMaster {
        &self.master
    }

    /// The seeded workload op stream this run will apply, in index
    /// order. Under a [`Workload::Steady`] arrival process every op gets
    /// a distinct timestamp, so the simulator applies them in exactly
    /// this order — which is what lets a synchronous twin replay the
    /// identical history for equivalence checks.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// Runs the event loop to completion and returns the report. The
    /// run ends when every scheduled event has fired, a final forced
    /// flush has drained the masters, and every replica has either
    /// consumed its last batch or converged by cookie poll.
    pub fn run(self) -> FleetReport {
        self.run_with_contents().0
    }

    /// Like [`FleetSim::run`], but also returns every replica's final
    /// [`ReplicaContent`] — the raw material for entry-for-entry
    /// equivalence checks against the synchronous driver.
    pub fn run_with_contents(mut self) -> (FleetReport, Vec<ReplicaContent>) {
        let last_apply =
            self.cfg.workload.arrival_ms(self.cfg.updates.saturating_sub(1), self.cfg.updates);
        let horizon = last_apply + self.cfg.policy.max_delay_ms + self.cfg.flush_interval_ms;
        while let Some((t, ev)) = self.sched.pop() {
            match ev {
                Event::Apply(k) => {
                    self.master.advance_to(t);
                    let op = self.ops[k].clone();
                    self.master.apply(op).expect("workload ops target live entries");
                    // An event-driven master flushes opportunistically
                    // after absorbing an update: anything already due
                    // (max_batch reached, or a per-update policy) goes
                    // out now; the rest waits for the timer.
                    self.flush_and_route(t, false);
                }
                Event::FlushTick => {
                    self.master.advance_to(t);
                    self.flush_and_route(t, false);
                    if t < horizon {
                        self.sched.push(t + self.cfg.flush_interval_ms, Event::FlushTick);
                    }
                }
                Event::Deliver(r) => self.deliver(t, r),
                Event::Query(k) => self.answer_query(k),
                Event::GcTick => {
                    self.master.advance_to(t);
                    self.master.collect_garbage();
                    if t < horizon {
                        self.sched.push(t + self.cfg.gc_every_ms, Event::GcTick);
                    }
                }
            }
        }
        self.finish()
    }

    /// Flushes due sessions on every shard and schedules one `Deliver`
    /// event per sent batch, at flush time plus the link's latency,
    /// FIFO-clamped per replica.
    fn flush_and_route(&mut self, t: u64, force: bool) {
        let flushes = self.master.flush_notifications(force);
        for (shard, f) in flushes {
            let Some(&r) = self.session_index[shard.index()].get(&f.session) else {
                continue;
            };
            let state = &mut self.replicas[r];
            let latency = self
                .cfg
                .link
                .latency_ms(splitmix64(self.cfg.seed ^ (r as u64)), state.msgs);
            state.msgs += 1;
            let at = (t + latency).max(state.next_free_ms);
            state.next_free_ms = at;
            self.sched.push(at, Event::Deliver(r));
        }
    }

    /// Answers query event `k` from a seeded replica's local content and
    /// samples the wall-clock answer time. The *which replica* and *how
    /// many entries matched* parts are deterministic (and reported); only
    /// the nanosecond timing varies run to run.
    fn answer_query(&mut self, k: usize) {
        let r = (splitmix64(self.cfg.seed ^ (k as u64) ^ 0x9E37) as usize) % self.replicas.len();
        let state = &self.replicas[r];
        let started = std::time::Instant::now();
        let matched = state.content.iter().filter(|e| state.request.matches(e)).count();
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.answer_ns.push(ns);
        self.queries_answered += 1;
        self.answered_entries += matched as u64;
        self.obs.registry().histogram("fbdr_sim_answer_ns").record(ns);
    }

    /// One batch crosses the link: consume it, sample staleness, apply.
    /// A link fault here disconnects the replica instead — in-flight
    /// batches (already on the wire) still land, then the channel dies
    /// and the replica converges by cookie poll at the end of the run.
    fn deliver(&mut self, t: u64, r: usize) {
        let state = &mut self.replicas[r];
        let Some(rx) = &state.rx else { return };
        if let Some(plan) = &mut state.plan {
            let decision = plan.decide();
            if decision.disconnect_persist || decision.drop_response {
                while let Ok(batch) = rx.try_recv() {
                    self.deliveries += 1;
                    let staleness = t.saturating_sub(batch.first_enqueued_ms);
                    self.staleness_ms.push(staleness);
                    self.obs.registry().histogram("fbdr_sim_staleness_ms").record(staleness);
                    state.content.apply_all(&batch.actions);
                }
                state.rx = None;
                return;
            }
        }
        match rx.try_recv() {
            Ok(batch) => {
                self.deliveries += 1;
                let staleness = t.saturating_sub(batch.first_enqueued_ms);
                self.staleness_ms.push(staleness);
                self.obs.registry().histogram("fbdr_sim_staleness_ms").record(staleness);
                state.content.apply_all(&batch.actions);
            }
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => {
                state.rx = None;
            }
        }
    }

    /// Teardown: force-flush the masters, drain every surviving channel,
    /// and poll-converge every replica that lost its channel.
    fn finish(mut self) -> (FleetReport, Vec<ReplicaContent>) {
        let end = self.sched.now_ms();
        self.master.advance_to(end);
        let flushes = self.master.flush_notifications(true);
        let wakeup_count = flushes.len();
        for (shard, f) in flushes {
            let Some(&r) = self.session_index[shard.index()].get(&f.session) else {
                continue;
            };
            self.deliver_now(end, r);
        }
        debug_assert!(wakeup_count as u64 <= self.master.notify_wakeups());
        for r in 0..self.replicas.len() {
            // Drain any batch still in flight, then poll-converge the
            // replicas whose channel died (overflow or link fault).
            self.deliver_now(end, r);
            let state = &mut self.replicas[r];
            let dead = match &state.rx {
                None => true,
                Some(rx) => matches!(rx.try_recv(), Err(TryRecvError::Disconnected)),
            };
            if dead {
                let resp = self
                    .master
                    .resync_at(state.shard, &state.request, ReSyncControl::poll(Some(state.cookie)))
                    .expect("cookie polls succeed against a healthy master");
                state.content.apply_all(&resp.actions);
                if let Some(c) = resp.cookie {
                    state.cookie = c;
                }
                if !resp.actions.is_empty() || state.rx.is_none() {
                    self.poll_fallbacks += 1;
                }
                state.rx = None;
            }
        }

        // Convergence oracle: one fresh poll per (country, dept) filter
        // group tells us what each replica *should* hold.
        let mut truth: Vec<Option<Vec<String>>> = vec![None; self.cfg.shards * self.cfg.depts];
        let mut diverged = 0u64;
        let mut digest = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for r in 0..self.replicas.len() {
            let dns = self.replicas[r].content.sorted_dns();
            let c = r % self.cfg.shards;
            let d = (r / self.cfg.shards) % self.cfg.depts;
            let slot = c * self.cfg.depts + d;
            if truth[slot].is_none() {
                let resp = self
                    .master
                    .resync_at(
                        ShardId::new(c as u16),
                        &self.replicas[r].request,
                        ReSyncControl::poll(None),
                    )
                    .expect("fresh polls succeed against a healthy master");
                let mut oracle = ReplicaContent::new();
                oracle.apply_all(&resp.actions);
                truth[slot] = Some(oracle.sorted_dns());
            }
            if truth[slot].as_deref() != Some(&dns) {
                diverged += 1;
            }
            for dn in &dns {
                for b in dn.as_bytes() {
                    digest ^= u64::from(*b);
                    digest = digest.wrapping_mul(0x100_0000_01b3);
                }
                digest ^= 0xff;
                digest = digest.wrapping_mul(0x100_0000_01b3);
            }
        }

        let wakeups = self.master.notify_wakeups();
        let notified = self.master.notify_updates();
        let report = FleetReport {
            sessions: self.replicas.len(),
            updates_applied: self.master.ops_applied(),
            wakeups,
            notified_updates: notified,
            amplification_x: if wakeups == 0 { 0.0 } else { notified as f64 / wakeups as f64 },
            deliveries: self.deliveries,
            overflows: self.master.notify_overflows(),
            poll_fallbacks: self.poll_fallbacks,
            diverged,
            staleness: StalenessSummary::from_samples(self.staleness_ms),
            queries_answered: self.queries_answered,
            answered_entries: self.answered_entries,
            answer_latency: AnswerLatencySummary::from_samples(self.answer_ns),
            content_digest: digest,
            sim_end_ms: end,
        };
        let contents = self.replicas.into_iter().map(|s| s.content).collect();
        (report, contents)
    }

    /// Consumes every batch currently queued for replica `r`, sampling
    /// staleness at time `t`.
    fn deliver_now(&mut self, t: u64, r: usize) {
        let state = &mut self.replicas[r];
        let Some(rx) = &state.rx else { return };
        loop {
            match rx.try_recv() {
                Ok(batch) => {
                    self.deliveries += 1;
                    let staleness = t.saturating_sub(batch.first_enqueued_ms);
                    self.staleness_ms.push(staleness);
                    self.obs.registry().histogram("fbdr_sim_staleness_ms").record(staleness);
                    state.content.apply_all(&batch.actions);
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    state.rx = None;
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_report() {
        let cfg = FleetConfig::small(40, 7);
        let sim = FleetSim::new(cfg);
        let obs = sim.obs().clone();
        let a = sim.run();
        let b = FleetSim::new(cfg).run();
        assert_eq!(a, b);
        assert!(a.wakeups > 0);
        assert_eq!(a.sessions, 40);
        assert_eq!(a.diverged, 0, "every replica must match a fresh master poll");
        // Both the sim's staleness histogram and the masters' notify
        // instruments land in the one registry wired through set_obs.
        let rendered = obs.registry().render_prometheus();
        assert!(rendered.contains("fbdr_sim_staleness_ms"));
        assert!(rendered.contains("fbdr_resync_notify_wakeups_total"));
    }

    #[test]
    fn query_sampling_records_latency_and_stays_deterministic() {
        let mut cfg = FleetConfig::small(20, 13);
        cfg.queries = 50;
        let sim = FleetSim::new(cfg);
        let obs = sim.obs().clone();
        let a = sim.run();
        let b = FleetSim::new(cfg).run();
        // Wall-clock latencies differ run to run; everything else —
        // including which replica answered and what it matched — is
        // deterministic, and equality must ignore exactly the former.
        assert_eq!(a, b);
        assert_eq!(a.queries_answered, 50);
        assert_eq!(a.answered_entries, b.answered_entries);
        assert_eq!(a.answer_latency.samples, 50);
        assert!(a.answer_latency.max_ns >= a.answer_latency.p50_ns);
        let h = obs.registry().histogram("fbdr_sim_answer_ns");
        assert_eq!(h.count(), 50);
        assert!(obs.registry().render_prometheus().contains("fbdr_sim_answer_ns"));
    }

    #[test]
    fn different_seeds_differ() {
        let a = FleetSim::new(FleetConfig::small(40, 7)).run();
        let b = FleetSim::new(FleetConfig::small(40, 8)).run();
        // Workload entry choices differ, so at minimum the wakeup counts
        // or staleness profile move.
        assert!(a != b);
    }

    #[test]
    fn coalescing_cuts_wakeups_at_equal_content() {
        let mut base_cfg = FleetConfig::small(60, 3);
        base_cfg.updates = 200;
        let coal_cfg = base_cfg.coalesced(64, 200);
        let base = FleetSim::new(base_cfg).run();
        let coal = FleetSim::new(coal_cfg).run();
        assert_eq!(base.diverged, 0);
        assert_eq!(coal.diverged, 0);
        assert_eq!(
            base.content_digest, coal.content_digest,
            "both arms run the same workload and must converge to the same fleet content"
        );
        assert!(
            coal.wakeups * 3 <= base.wakeups,
            "coalescing should cut wakeups at least 3x here: {} vs {}",
            coal.wakeups,
            base.wakeups
        );
        assert!(coal.amplification_x > base.amplification_x);
    }

    #[test]
    fn link_faults_fall_back_to_polling_and_still_converge() {
        let mut cfg = FleetConfig::small(30, 5);
        cfg.link_drop_per_mille = 200; // 20% of deliveries disconnect
        let faulty = FleetSim::new(cfg).run();
        let mut clean_cfg = cfg;
        clean_cfg.link_drop_per_mille = 0;
        let clean = FleetSim::new(clean_cfg).run();
        assert!(faulty.poll_fallbacks > 0, "faults must force poll fallbacks");
        assert_eq!(faulty.diverged, 0, "fallback polling must still converge");
        assert_eq!(
            faulty.content_digest, clean.content_digest,
            "link faults only delay delivery; the same workload must yield the same content"
        );
    }

    #[test]
    fn gc_ticks_are_content_transparent() {
        let mut base_cfg = FleetConfig::small(40, 11);
        base_cfg.updates = 200;
        let mut gc_cfg = base_cfg;
        gc_cfg.gc_every_ms = 25;
        let sim = FleetSim::new(gc_cfg);
        let obs = sim.obs().clone();
        let gc = sim.run();
        let base = FleetSim::new(base_cfg).run();
        assert_eq!(gc.diverged, 0);
        assert_eq!(
            gc.content_digest, base.content_digest,
            "collection must be invisible to every live session's content"
        );
        let rendered = obs.registry().render_prometheus();
        assert!(rendered.contains("fbdr_resync_gc_runs_total"));
        assert!(rendered.contains("fbdr_resync_stability_lag"));
    }

    #[test]
    fn flash_crowd_coalesces_harder_than_steady() {
        let mut steady_cfg = FleetConfig::small(40, 9).coalesced(64, 50);
        steady_cfg.updates = 200;
        let mut flash_cfg = steady_cfg;
        flash_cfg.workload = Workload::FlashCrowd { ramp_ms: 40 };
        let steady = FleetSim::new(steady_cfg).run();
        let flash = FleetSim::new(flash_cfg).run();
        // Same-millisecond applies pop in a seeded shuffle, so the two
        // workloads legitimately apply ops in different orders — compare
        // each arm against its own master, not against each other.
        assert_eq!(steady.diverged, 0);
        assert_eq!(flash.diverged, 0);
        assert!(
            flash.wakeups <= steady.wakeups,
            "a burst coalesces at least as well as spread-out load: {} vs {}",
            flash.wakeups,
            steady.wakeups
        );
        assert!(flash.amplification_x >= steady.amplification_x);
    }
}
