//! The discrete-event scheduler at the heart of the fleet simulator.
//!
//! This is the promotion of the fault harness's `SimClock` (a bare
//! atomic counter that transports advance) into a real event queue: a
//! binary heap of `(time, tie, seq)`-ordered events whose pop loop *is*
//! the simulated clock. Same-time events pop in a seed-determined
//! shuffle — racing messages don't resolve in insertion order, yet every
//! run with the same seed replays identically.

use fbdr_net::link::splitmix64;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event: fire time, seeded tie-break, insertion sequence
/// (the final, total tie-break), and the payload.
#[derive(Debug, Clone)]
struct Scheduled<T> {
    at_ms: u64,
    tie: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.at_ms, other.tie, other.seq).cmp(&(self.at_ms, self.tie, self.seq))
    }
}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event scheduler: push events at absolute
/// millisecond times, pop them in time order. The pop loop advances the
/// simulated clock; there is no wall-clock anywhere.
///
/// Events scheduled for the same millisecond pop in a shuffle derived
/// from the scheduler seed (seeded tie-breaking), with the insertion
/// sequence as the final total order — two runs with equal seeds and
/// equal push sequences produce byte-identical pop sequences.
#[derive(Debug)]
pub struct EventScheduler<T> {
    heap: BinaryHeap<Scheduled<T>>,
    now_ms: u64,
    seq: u64,
    seed: u64,
}

impl<T> EventScheduler<T> {
    /// An empty scheduler at t=0 with the given tie-break seed.
    pub fn new(seed: u64) -> Self {
        EventScheduler { heap: BinaryHeap::new(), now_ms: 0, seq: 0, seed }
    }

    /// The current simulated time: the fire time of the last popped
    /// event (0 before the first pop).
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `at_ms`. Times before the
    /// current clock are clamped to *now* — an event cannot fire in the
    /// past.
    pub fn push(&mut self, at_ms: u64, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            at_ms: at_ms.max(self.now_ms),
            tie: splitmix64(self.seed ^ seq),
            seq,
            payload,
        });
    }

    /// Pops the earliest event, advancing the clock to its fire time.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at_ms >= self.now_ms, "time must be monotonic");
        self.now_ms = ev.at_ms;
        Some((ev.at_ms, ev.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_monotonic_clock() {
        let mut s = EventScheduler::new(1);
        s.push(30, "c");
        s.push(10, "a");
        s.push(20, "b");
        assert_eq!(s.pop(), Some((10, "a")));
        assert_eq!(s.now_ms(), 10);
        assert_eq!(s.pop(), Some((20, "b")));
        assert_eq!(s.pop(), Some((30, "c")));
        assert!(s.pop().is_none());
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut s = EventScheduler::new(1);
        s.push(50, ());
        s.pop();
        s.push(10, ()); // already past — fires at 50
        assert_eq!(s.pop(), Some((50, ())));
    }

    #[test]
    fn same_time_order_is_seeded_and_replayable() {
        let run = |seed: u64| {
            let mut s = EventScheduler::new(seed);
            for i in 0..16 {
                s.push(5, i);
            }
            let mut out = Vec::new();
            while let Some((_, i)) = s.pop() {
                out.push(i);
            }
            out
        };
        assert_eq!(run(7), run(7), "same seed must replay");
        assert_ne!(run(7), run(8), "different seeds shuffle ties differently");
    }
}
