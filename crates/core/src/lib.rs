#![warn(missing_docs)]
//! High-level API tying the fbdr workspace together.
//!
//! * [`Replicator`] — a remote filter-based replica connected to a master
//!   directory: queries are answered locally when semantically contained
//!   in replicated content and forwarded to the master otherwise
//!   (optionally caching the result for temporal locality). Periodic
//!   [`Replicator::sync`] keeps replicated filters consistent via ReSync,
//!   and an optional `FilterSelector` adapts the stored filter set to
//!   the access pattern.
//! * [`experiment`] — the trace-replay engine regenerating the paper's
//!   figures: hit-ratio vs replica size, update traffic vs hit ratio, hit
//!   ratio vs number of stored filters.
//!
//! # Example
//!
//! ```
//! use fbdr_core::Replicator;
//! use fbdr_ldap::{Entry, Filter, SearchRequest};
//! use fbdr_resync::SyncMaster;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut master = SyncMaster::new();
//! master.dit_mut().add_suffix("o=xyz".parse()?);
//! master.dit_mut().add(Entry::new("o=xyz".parse()?))?;
//! master.dit_mut().add(
//!     Entry::new("cn=a,o=xyz".parse()?)
//!         .with("objectclass", "person")
//!         .with("serialNumber", "045612"),
//! )?;
//!
//! let mut repl = Replicator::new(master, 50);
//! repl.install_filter(SearchRequest::from_root(Filter::parse("(serialNumber=0456*)")?))?;
//!
//! let q = SearchRequest::from_root(Filter::parse("(serialNumber=045612)")?);
//! let (entries, served) = repl.search(&q);
//! assert_eq!(entries.len(), 1);
//! assert_eq!(served, fbdr_core::ServedBy::Replica);
//! # Ok(())
//! # }
//! ```

pub mod deploy;
pub mod experiment;

mod replicator;

pub use replicator::{Replicator, ReplicatorReport, ServedBy, ShardedReplicator};
