//! The `Replicator` façade: master + filter replica + optional dynamic
//! selection behind one query interface.

use fbdr_dit::{ChangeRecord, DitError, UpdateOp};
use fbdr_ldap::{Entry, SearchRequest};
use fbdr_replica::{FilterReplica, ReplicaStats};
use fbdr_resync::{
    DriverStats, NotifyFlush, NotifyPolicy, ReconcileConfig, RetryConfig, ShardCoordinator,
    ShardId, ShardedMaster, SyncDriver, SyncError, SyncMaster, SyncTraffic, SystemClock,
};
use fbdr_selection::{FilterSelector, OnlineReport, OnlineSelector};
use serde::{Deserialize, Serialize};

/// Who answered a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServedBy {
    /// Answered locally by the replica (a hit).
    Replica,
    /// Forwarded to the master (a miss → referral in a real deployment).
    Master,
}

/// Accumulated traffic/cost report for a [`Replicator`].
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ReplicatorReport {
    /// ReSync traffic for the currently stored filters (component (i) of
    /// §7.3 update traffic).
    pub resync_traffic: SyncTraffic,
    /// Content-load traffic from installing new filters (component (ii)).
    pub revolution_traffic: SyncTraffic,
    /// Queries forwarded to the master.
    pub wan_queries: u64,
    /// Entries fetched from the master on misses.
    pub wan_entries: u64,
    /// Revolutions performed.
    pub revolutions: u64,
    /// Budgeted online selection steps performed.
    #[serde(default)]
    pub online_steps: u64,
    /// Promote/evict moves made by online selection steps (each step is
    /// capped at the configured move budget).
    #[serde(default)]
    pub online_moves: u64,
    /// What the sync driver had to do to keep the replica converged:
    /// retries, recoveries, reconciliations, reinstalls (the robustness
    /// cost of §5.2-style failures, alongside the bandwidth cost above).
    pub driver: DriverStats,
}

/// A remote filter-based replica bound to its master directory.
///
/// Owns the [`SyncMaster`] (the simulated wide-area master) and a
/// [`FilterReplica`]; optionally a [`FilterSelector`] observes the query
/// stream and periodically *revolves* the stored filter set (§6.2).
#[derive(Debug)]
pub struct Replicator {
    master: SyncMaster,
    replica: FilterReplica,
    driver: SyncDriver<SystemClock>,
    selector: Option<FilterSelector>,
    online: Option<OnlineSelector>,
    cache_misses: bool,
    report: ReplicatorReport,
}

impl Replicator {
    /// Creates a replicator; `cache_window` recent user queries are cached
    /// (0 disables caching).
    pub fn new(master: SyncMaster, cache_window: usize) -> Self {
        Replicator {
            master,
            replica: FilterReplica::new(cache_window),
            driver: SyncDriver::default(),
            selector: None,
            online: None,
            cache_misses: cache_window > 0,
            report: ReplicatorReport::default(),
        }
    }

    /// Attaches a dynamic filter selector.
    pub fn with_selector(mut self, selector: FilterSelector) -> Self {
        self.selector = Some(selector);
        self
    }

    /// Attaches a budgeted *online* selector: instead of periodic batch
    /// revolutions, the stored filter set is adjusted by at most the
    /// selector's move budget every `step_every` queries, on the search
    /// path (see [`OnlineSelector`]).
    pub fn with_online_selector(mut self, selector: OnlineSelector) -> Self {
        self.online = Some(selector);
        self
    }

    /// Overrides the sync driver's retry policy.
    pub fn with_retry_config(mut self, config: RetryConfig) -> Self {
        self.driver = SyncDriver::new(config);
        self
    }

    /// Sets the master's persist-mode notification policy: how many raw
    /// updates are batched per session wakeup and how long they may wait
    /// ([`NotifyPolicy::coalescing`] vs the per-update default).
    pub fn with_notify_policy(mut self, policy: NotifyPolicy) -> Self {
        self.master.set_notify_policy(policy);
        self
    }

    /// Advances the master's notification clock — drive this from the
    /// deployment loop so coalescing max-delay deadlines can expire.
    pub fn advance_to(&mut self, now_ms: u64) {
        self.master.advance_to(now_ms);
    }

    /// Flushes due (or, with `force`, all) coalesced persist-mode
    /// batches; returns one [`NotifyFlush`] per session wakeup.
    pub fn flush_notifications(&mut self, force: bool) -> Vec<NotifyFlush> {
        self.master.flush_notifications(force)
    }

    /// Read access to the master.
    pub fn master(&self) -> &SyncMaster {
        &self.master
    }

    /// Read access to the replica.
    pub fn replica(&self) -> &FilterReplica {
        &self.replica
    }

    /// Traffic report.
    pub fn report(&self) -> ReplicatorReport {
        self.report
    }

    /// Replica hit statistics.
    pub fn stats(&self) -> ReplicaStats {
        self.replica.stats()
    }

    /// Installs a statically configured generalized filter.
    ///
    /// # Errors
    ///
    /// Propagates [`SyncError`] from the master.
    pub fn install_filter(&mut self, request: SearchRequest) -> Result<SyncTraffic, SyncError> {
        let t = self.replica.install_filter(&mut self.master, request)?;
        self.report.revolution_traffic.absorb(&t);
        Ok(t)
    }

    /// Answers a query: locally when possible, otherwise from the master
    /// (counting WAN traffic and, if enabled, caching the result).
    pub fn search(&mut self, query: &SearchRequest) -> (Vec<Entry>, ServedBy) {
        if let Some(sel) = &mut self.selector {
            sel.observe(query);
        }
        if let Some(on) = &mut self.online {
            on.observe(query);
        }
        if let Some(entries) = self.replica.try_answer(query) {
            self.maybe_adapt();
            return (entries, ServedBy::Replica);
        }
        let entries = self.master.dit().search(query);
        self.report.wan_queries += 1;
        self.report.wan_entries += entries.len() as u64;
        if self.cache_misses {
            self.replica.cache_query(query.clone(), &entries);
        }
        self.maybe_adapt();
        (entries, ServedBy::Master)
    }

    /// Applies an update at the master (maintaining ReSync sessions).
    ///
    /// # Errors
    ///
    /// Propagates [`DitError`] from the master's store.
    pub fn apply_update(&mut self, op: UpdateOp) -> Result<ChangeRecord, DitError> {
        self.master.apply(op)
    }

    /// Polls the master for all replicated filters, through the retrying
    /// sync driver: transient failures are retried with backoff, lost
    /// sessions are reconciled by set digest (shipping only the diverged
    /// entries) or reinstalled when divergence exceeds the budget, and a
    /// filter whose retry budget runs out is served stale until the next
    /// cycle (see [`FilterReplica::sync_with`]).
    ///
    /// # Errors
    ///
    /// Propagates non-transient [`SyncError`]s.
    pub fn sync(&mut self) -> Result<SyncTraffic, SyncError> {
        let t = self.replica.sync_with(&mut self.master, &mut self.driver)?;
        self.report.resync_traffic.absorb(&t);
        self.report.driver = self.driver.stats();
        Ok(t)
    }

    /// Cumulative counters of the attached online selector, if any.
    pub fn online_report(&self) -> Option<OnlineReport> {
        self.online.as_ref().map(|on| on.report())
    }

    /// Candidate-table size of the attached online selector, if any —
    /// useful to show consideration sets stayed a strict subset of it.
    pub fn online_candidates(&self) -> Option<usize> {
        self.online.as_ref().map(|on| on.candidate_count())
    }

    fn maybe_adapt(&mut self) {
        if let Some(sel) = &mut self.selector {
            if sel.revolution_due() {
                if let Ok(rep) = sel.revolve(&mut self.master, &mut self.replica) {
                    self.report.revolutions += 1;
                    self.report.revolution_traffic.absorb(&rep.traffic);
                }
            }
        }
        if let Some(on) = &mut self.online {
            if on.step_due() {
                if let Ok(step) = on.step(&mut self.master, &mut self.replica) {
                    self.report.online_steps += 1;
                    self.report.online_moves += step.moves as u64;
                    self.report.revolution_traffic.absorb(&step.traffic);
                }
            }
        }
    }
}

/// A filter replica bound to a **sharded** master deployment: the
/// directory is partitioned across several master shards by naming
/// context ([`ShardedMaster`]), and every stored filter holds one ReSync
/// session per shard it overlaps, driven independently by a
/// [`ShardCoordinator`].
///
/// The query interface mirrors [`Replicator`]; the sync cycle degrades
/// per shard — a partitioned shard leaves that shard's slice stale while
/// the others keep delivering updates.
#[derive(Debug)]
pub struct ShardedReplicator {
    master: ShardedMaster,
    replica: FilterReplica,
    coordinator: ShardCoordinator<SystemClock>,
    cache_misses: bool,
    report: ReplicatorReport,
}

impl ShardedReplicator {
    /// Creates a sharded replicator; `cache_window` as for
    /// [`Replicator::new`]. The coordinator takes its shard map from the
    /// master.
    pub fn new(master: ShardedMaster, cache_window: usize) -> Self {
        let coordinator = ShardCoordinator::new(master.map().clone());
        ShardedReplicator {
            master,
            replica: FilterReplica::new(cache_window),
            coordinator,
            cache_misses: cache_window > 0,
            report: ReplicatorReport::default(),
        }
    }

    /// Overrides the per-shard retry and reconcile policies.
    pub fn with_config(mut self, retry: RetryConfig, reconcile: ReconcileConfig) -> Self {
        self.coordinator =
            ShardCoordinator::with_config(self.master.map().clone(), retry, reconcile);
        self
    }

    /// Sets every shard's persist-mode notification policy (see
    /// [`Replicator::with_notify_policy`]).
    pub fn with_notify_policy(mut self, policy: NotifyPolicy) -> Self {
        self.master.set_notify_policy(policy);
        self
    }

    /// Advances every shard's notification clock.
    pub fn advance_to(&mut self, now_ms: u64) {
        self.master.advance_to(now_ms);
    }

    /// Flushes due (or all, with `force`) coalesced persist-mode batches
    /// across every shard, tagged with the owning [`ShardId`].
    pub fn flush_notifications(&mut self, force: bool) -> Vec<(ShardId, NotifyFlush)> {
        self.master.flush_notifications(force)
    }

    /// Read access to the sharded master.
    pub fn master(&self) -> &ShardedMaster {
        &self.master
    }

    /// Read access to the replica.
    pub fn replica(&self) -> &FilterReplica {
        &self.replica
    }

    /// Traffic report.
    pub fn report(&self) -> ReplicatorReport {
        self.report
    }

    /// Replica hit statistics.
    pub fn stats(&self) -> ReplicaStats {
        self.replica.stats()
    }

    /// Installs a generalized filter: one session per overlapped shard.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SyncError`] any shard produced.
    pub fn install_filter(&mut self, request: SearchRequest) -> Result<SyncTraffic, SyncError> {
        let t = self.replica.install_filter_sharded(
            &mut self.master,
            &mut self.coordinator,
            request,
        )?;
        self.report.revolution_traffic.absorb(&t);
        Ok(t)
    }

    /// Answers a query: locally when possible, otherwise fanned out
    /// across the master shards (counting WAN traffic and, if enabled,
    /// caching the result).
    pub fn search(&mut self, query: &SearchRequest) -> (Vec<Entry>, ServedBy) {
        if let Some(entries) = self.replica.try_answer(query) {
            return (entries, ServedBy::Replica);
        }
        let entries = self.master.search(query);
        self.report.wan_queries += 1;
        self.report.wan_entries += entries.len() as u64;
        if self.cache_misses {
            self.replica.cache_query(query.clone(), &entries);
        }
        (entries, ServedBy::Master)
    }

    /// Applies an update at the shard owning its target DN.
    ///
    /// # Errors
    ///
    /// Propagates [`DitError`] from the owning shard's store.
    pub fn apply_update(&mut self, op: UpdateOp) -> Result<ChangeRecord, DitError> {
        self.master.apply(op)
    }

    /// One sync cycle: every filter polls each overlapped shard through
    /// its own retry/reconcile ladder (see
    /// [`FilterReplica::sync_with_sharded`]).
    ///
    /// # Errors
    ///
    /// The first hard [`SyncError`] any shard produced; partial progress
    /// is already published.
    pub fn sync(&mut self) -> Result<SyncTraffic, SyncError> {
        let t = self.replica.sync_with_sharded(&mut self.master, &mut self.coordinator)?;
        self.report.resync_traffic.absorb(&t);
        self.report.driver = self.coordinator.stats();
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_ldap::Filter;
    use fbdr_selection::generalize::ValuePrefix;
    use fbdr_selection::SelectorConfig;

    fn master() -> SyncMaster {
        let mut m = SyncMaster::new();
        m.dit_mut().add_suffix("o=xyz".parse().unwrap());
        m.dit_mut().add(Entry::new("o=xyz".parse().unwrap())).unwrap();
        for i in 0..20 {
            m.dit_mut()
                .add(
                    Entry::new(format!("cn=e{i},o=xyz").parse().unwrap())
                        .with("objectclass", "person")
                        .with("serialNumber", &format!("04{:04}", i)),
                )
                .unwrap();
        }
        m
    }

    fn q(sn: &str) -> SearchRequest {
        SearchRequest::from_root(Filter::parse(&format!("(serialNumber={sn})")).unwrap())
    }

    #[test]
    fn static_filter_serves_hits() {
        let mut r = Replicator::new(master(), 0);
        r.install_filter(SearchRequest::from_root(Filter::parse("(serialNumber=040*)").unwrap()))
            .unwrap();
        let (es, served) = r.search(&q("040005"));
        assert_eq!(served, ServedBy::Replica);
        assert_eq!(es.len(), 1);
        let (_, served) = r.search(&q("041000"));
        assert_eq!(served, ServedBy::Master);
        assert_eq!(r.report().wan_queries, 1);
        assert_eq!(r.stats().hits, 1);
    }

    #[test]
    fn miss_caching_serves_repeats() {
        let mut r = Replicator::new(master(), 8);
        let (_, s1) = r.search(&q("040010"));
        assert_eq!(s1, ServedBy::Master);
        let (es, s2) = r.search(&q("040010"));
        assert_eq!(s2, ServedBy::Replica);
        assert_eq!(es.len(), 1);
        assert_eq!(r.stats().cache_hits, 1);
    }

    #[test]
    fn notify_policy_wiring_coalesces_persist_batches() {
        use fbdr_dit::Modification;
        use fbdr_resync::ReSyncControl;

        let mut m = master();
        let resp = m
            .resync(
                &SearchRequest::from_root(Filter::parse("(serialNumber=04*)").unwrap()),
                ReSyncControl::persist(None),
            )
            .unwrap();
        let rx = m.take_receiver(resp.cookie.unwrap()).unwrap();

        let mut r = Replicator::new(m, 0).with_notify_policy(NotifyPolicy::coalescing(10, 50));
        for i in 0..3 {
            r.apply_update(UpdateOp::Modify {
                dn: format!("cn=e{i},o=xyz").parse().unwrap(),
                mods: vec![Modification::Replace("mail".into(), vec![format!("e{i}@x").into()])],
            })
            .unwrap();
        }
        // Not due yet: nothing waited max_delay.
        assert!(r.flush_notifications(false).is_empty());
        r.advance_to(60);
        let flushes = r.flush_notifications(false);
        assert_eq!(flushes.len(), 1, "three updates coalesce into one wakeup");
        assert_eq!(flushes[0].coalesced_from, 3);
        let batch = rx.try_recv().unwrap();
        assert_eq!(batch.coalesced_from, 3);
        assert_eq!(batch.actions.len(), 3);
    }

    #[test]
    fn dynamic_selection_installs_hot_region() {
        let selector = FilterSelector::new(
            SelectorConfig { revolution_interval: 10, entry_budget: 50, max_candidates: 64 },
            vec![Box::new(ValuePrefix::new("serialNumber", vec![4]))],
        );
        let mut r = Replicator::new(master(), 0).with_selector(selector);
        // 10 queries in the 0400xx region trigger a revolution.
        for i in 0..10 {
            r.search(&q(&format!("04{:04}", i % 5)));
        }
        assert_eq!(r.report().revolutions, 1);
        assert!(r.replica().filter_count() >= 1);
        let (_, served) = r.search(&q("040003"));
        assert_eq!(served, ServedBy::Replica);
    }

    #[test]
    fn online_selection_adapts_on_search_path() {
        use fbdr_selection::{OnlineConfig, OnlineSelector};

        let selector = OnlineSelector::new(
            OnlineConfig {
                entry_budget: 50,
                step_every: 10,
                move_budget: 2,
                min_dwell_steps: 0,
                ..OnlineConfig::default()
            },
            vec![Box::new(ValuePrefix::new("serialNumber", vec![4]))],
        );
        let mut r = Replicator::new(master(), 0).with_online_selector(selector);
        for i in 0..20 {
            r.search(&q(&format!("04{:04}", i % 5)));
        }
        let rep = r.report();
        assert_eq!(rep.online_steps, 2, "a step every 10 queries");
        assert!(rep.online_moves >= 1, "hot region promoted");
        assert!(rep.online_moves <= 4, "two steps × move budget 2");
        assert!(r.replica().filter_count() >= 1);
        let (_, served) = r.search(&q("040003"));
        assert_eq!(served, ServedBy::Replica);
        assert_eq!(r.online_report().unwrap().steps, 2);
    }

    #[test]
    fn sharded_replicator_syncs_across_shards() {
        use fbdr_resync::{ShardId, ShardMap};

        // Two shards: country g0 on shard 0, g1 on shard 1; each shard's
        // master holds the skeleton plus its own country subtree.
        let map = ShardMap::by_suffixes(vec![
            "c=g0,o=xyz".parse().unwrap(),
            "c=g1,o=xyz".parse().unwrap(),
        ]);
        let mut sharded = ShardedMaster::new(map);
        for i in 0..2u16 {
            let m = sharded.shard_mut(fbdr_resync::ShardId::new(i));
            m.dit_mut().add_suffix("o=xyz".parse().unwrap());
            m.dit_mut().add(Entry::new("o=xyz".parse().unwrap())).unwrap();
            m.dit_mut()
                .add(Entry::new(format!("c=g{i},o=xyz").parse().unwrap()))
                .unwrap();
        }
        for i in 0..10 {
            let cc = i % 2;
            sharded
                .apply(UpdateOp::Add(
                    Entry::new(format!("cn=e{i},c=g{cc},o=xyz").parse().unwrap())
                        .with("objectclass", "person")
                        .with("serialNumber", &format!("04{:04}", i)),
                ))
                .unwrap();
        }

        let mut r = ShardedReplicator::new(sharded, 0);
        r.install_filter(SearchRequest::from_root(Filter::parse("(serialNumber=040*)").unwrap()))
            .unwrap();
        // Both shards contributed content; hits answer locally.
        let (es, served) = r.search(&q("040003"));
        assert_eq!(served, ServedBy::Replica);
        assert_eq!(es.len(), 1);

        // Updates land on different shards; one sync picks up both.
        r.apply_update(UpdateOp::Add(
            Entry::new("cn=n0,c=g0,o=xyz".parse().unwrap())
                .with("objectclass", "person")
                .with("serialNumber", "040088"),
        ))
        .unwrap();
        r.apply_update(UpdateOp::Add(
            Entry::new("cn=n1,c=g1,o=xyz".parse().unwrap())
                .with("objectclass", "person")
                .with("serialNumber", "040099"),
        ))
        .unwrap();
        assert_eq!(r.master().shard(ShardId::new(0)).ops_applied(), 6);
        assert_eq!(r.master().shard(ShardId::new(1)).ops_applied(), 6);
        let t = r.sync().unwrap();
        assert_eq!(t.full_entries, 2);
        let (es, served) = r.search(&q("040099"));
        assert_eq!(served, ServedBy::Replica);
        assert_eq!(es.len(), 1);
        // A miss fans out across shards and merges.
        let (es, served) = r.search(&SearchRequest::from_root(
            Filter::parse("(objectclass=person)").unwrap(),
        ));
        assert_eq!(served, ServedBy::Master);
        assert_eq!(es.len(), 12);
    }

    #[test]
    fn sync_after_update_propagates() {
        let mut r = Replicator::new(master(), 0);
        r.install_filter(SearchRequest::from_root(Filter::parse("(serialNumber=040*)").unwrap()))
            .unwrap();
        r.apply_update(UpdateOp::Add(
            Entry::new("cn=new,o=xyz".parse().unwrap())
                .with("objectclass", "person")
                .with("serialNumber", "040099"),
        ))
        .unwrap();
        let t = r.sync().unwrap();
        assert_eq!(t.full_entries, 1);
        let (es, served) = r.search(&q("040099"));
        assert_eq!(served, ServedBy::Replica);
        assert_eq!(es.len(), 1);
        // The cycle ran through the driver: one clean attempt, no drama.
        let d = r.report().driver;
        assert_eq!(d.attempts, 1);
        assert_eq!(d.retries, 0);
        assert_eq!(d.exhausted, 0);
    }
}
