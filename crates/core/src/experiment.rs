//! The trace-replay experiment engine behind the paper's figures.
//!
//! Two drivers replay a workload (queries interleaved with updates)
//! against each replication model:
//!
//! * [`replay_filter`] — drives a [`Replicator`] (filter-based model);
//! * [`replay_subtree`] — drives a [`SubtreeReplica`]. Because the trace's
//!   queries are root-based (§3.1.1), a strict subtree replica would
//!   answer none of them; [`Routing::Oracle`] instead credits the subtree
//!   model whenever the query's full result lies inside held contexts —
//!   an upper bound that models perfectly-scoped applications, keeping
//!   the comparison conservative in the filter model's favour.
//!
//! Selection helpers implement the train-then-freeze configuration of
//! Figure 4 ([`select_static_filters`]) and the per-country greedy choice
//! a subtree deployment would make ([`select_subtree_contexts`]).

use crate::replicator::{Replicator, ServedBy};
use fbdr_containment::EngineStats;
use fbdr_dit::{DitStore, NamingContext, UpdateOp};
use fbdr_ldap::SearchRequest;
use fbdr_replica::{ReplicaStats, SubtreeReplica};
use fbdr_resync::SyncTraffic;
use fbdr_selection::generalize::Generalizer;
use fbdr_selection::{FilterSelector, SelectorConfig};
use fbdr_workload::{EnterpriseDirectory, QueryKind, TracedQuery};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Replay parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Queries between replica synchronization polls (0 = never sync).
    pub sync_every: usize,
    /// Queries between master updates drawn from the update stream
    /// (0 = apply no updates).
    pub update_every: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig { sync_every: 500, update_every: 25 }
    }
}

/// How the subtree driver decides answerability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Strict LDAP semantics: the query base must fall inside a held
    /// context (root-based queries always miss).
    Strict,
    /// Oracle scoping: a hit when the query's complete master-side result
    /// is non-empty and lies inside held contexts.
    Oracle,
}

/// Per-kind and aggregate metrics from one replay.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// Aggregate hit statistics.
    pub overall: ReplicaStats,
    /// `(queries, hits)` per query kind.
    pub per_kind: HashMap<String, (u64, u64)>,
    /// Replica size (entries) at the end of the replay.
    pub replica_entries: usize,
    /// Stored queries (filters + cached) at the end.
    pub stored_queries: usize,
    /// ReSync poll traffic (component (i)).
    pub resync_traffic: SyncTraffic,
    /// Filter-install traffic (component (ii), revolutions).
    pub revolution_traffic: SyncTraffic,
    /// Revolutions performed.
    pub revolutions: u64,
    /// Containment-engine work (filter model only).
    pub engine: EngineStats,
    /// Updates applied at the master during the replay.
    pub updates_applied: u64,
}

impl ReplayOutcome {
    /// Hit ratio for one query kind.
    pub fn kind_hit_ratio(&self, kind: QueryKind) -> f64 {
        match self.per_kind.get(kind.template()) {
            Some((q, h)) if *q > 0 => *h as f64 / *q as f64,
            _ => 0.0,
        }
    }

    /// Total update traffic in entries (full entries shipped; DN-only
    /// PDUs weighted as entries is deliberately avoided — the paper
    /// reports entries).
    pub fn update_traffic_entries(&self) -> u64 {
        self.resync_traffic.full_entries + self.revolution_traffic.full_entries
    }
}

fn record(per_kind: &mut HashMap<String, (u64, u64)>, kind: QueryKind, hit: bool) {
    let e = per_kind.entry(kind.template().to_owned()).or_insert((0, 0));
    e.0 += 1;
    if hit {
        e.1 += 1;
    }
}

/// Replays a trace (with interleaved updates) against a filter-based
/// [`Replicator`].
pub fn replay_filter(
    replicator: &mut Replicator,
    trace: &[TracedQuery],
    updates: &[UpdateOp],
    cfg: ReplayConfig,
) -> ReplayOutcome {
    let mut out = ReplayOutcome::default();
    let mut next_update = 0usize;
    let report_before = replicator.report();
    let stats_before = replicator.stats();
    for (i, tq) in trace.iter().enumerate() {
        let (_, served) = replicator.search(&tq.request);
        record(&mut out.per_kind, tq.kind, served == ServedBy::Replica);
        if cfg.update_every > 0 && (i + 1) % cfg.update_every == 0 && next_update < updates.len() {
            let _ = replicator.apply_update(updates[next_update].clone());
            next_update += 1;
            out.updates_applied += 1;
        }
        if cfg.sync_every > 0 && (i + 1) % cfg.sync_every == 0 {
            let _ = replicator.sync();
        }
    }
    let _ = replicator.sync();
    let report_after = replicator.report();
    let stats_after = replicator.stats();
    out.overall = ReplicaStats {
        queries: stats_after.queries - stats_before.queries,
        hits: stats_after.hits - stats_before.hits,
        generalized_hits: stats_after.generalized_hits - stats_before.generalized_hits,
        cache_hits: stats_after.cache_hits - stats_before.cache_hits,
        stale_serves: stats_after.stale_serves - stats_before.stale_serves,
        poll_fallbacks: stats_after.poll_fallbacks - stats_before.poll_fallbacks,
    };
    out.resync_traffic = SyncTraffic {
        full_entries: report_after.resync_traffic.full_entries - report_before.resync_traffic.full_entries,
        dn_only: report_after.resync_traffic.dn_only - report_before.resync_traffic.dn_only,
        bytes: report_after.resync_traffic.bytes - report_before.resync_traffic.bytes,
        redelivered_pdus: report_after.resync_traffic.redelivered_pdus
            - report_before.resync_traffic.redelivered_pdus,
    };
    out.revolution_traffic = SyncTraffic {
        full_entries: report_after.revolution_traffic.full_entries
            - report_before.revolution_traffic.full_entries,
        dn_only: report_after.revolution_traffic.dn_only - report_before.revolution_traffic.dn_only,
        bytes: report_after.revolution_traffic.bytes - report_before.revolution_traffic.bytes,
        redelivered_pdus: report_after.revolution_traffic.redelivered_pdus
            - report_before.revolution_traffic.redelivered_pdus,
    };
    out.revolutions = report_after.revolutions - report_before.revolutions;
    out.replica_entries = replicator.replica().entry_count();
    out.stored_queries = replicator.replica().stored_query_count();
    out.engine = replicator.replica().engine_stats();
    out
}

/// Replays a trace against a subtree replica.
pub fn replay_subtree(
    master: &mut DitStore,
    replica: &mut SubtreeReplica,
    trace: &[TracedQuery],
    updates: &[UpdateOp],
    cfg: ReplayConfig,
    routing: Routing,
) -> ReplayOutcome {
    let mut out = ReplayOutcome::default();
    let mut next_update = 0usize;
    for (i, tq) in trace.iter().enumerate() {
        let hit = match routing {
            Routing::Strict => replica.try_answer(&tq.request).is_some(),
            Routing::Oracle => {
                let dns = master.search_dns(&tq.request);
                let hit = !dns.is_empty() && dns.iter().all(|dn| replica.covers_dn(dn));
                out.overall.queries += 1;
                if hit {
                    out.overall.hits += 1;
                }
                hit
            }
        };
        record(&mut out.per_kind, tq.kind, hit);
        if cfg.update_every > 0 && (i + 1) % cfg.update_every == 0 && next_update < updates.len() {
            let _ = master.apply(updates[next_update].clone());
            next_update += 1;
            out.updates_applied += 1;
        }
        if cfg.sync_every > 0 && (i + 1) % cfg.sync_every == 0 {
            out.resync_traffic.absorb(&replica.sync_from(master));
        }
    }
    out.resync_traffic.absorb(&replica.sync_from(master));
    if routing == Routing::Strict {
        out.overall = replica.stats();
    }
    out.replica_entries = replica.entry_count();
    out
}

/// Trains a selector on a trace and returns the frozen benefit/size
/// selection (the Figure 4 static configuration).
pub fn select_static_filters(
    master: &DitStore,
    trace: &[TracedQuery],
    generalizers: Vec<Box<dyn Generalizer + Send>>,
    entry_budget: usize,
) -> Vec<SearchRequest> {
    let mut selector = FilterSelector::new(
        SelectorConfig {
            revolution_interval: u64::MAX,
            entry_budget,
            max_candidates: 65_536,
        },
        generalizers,
    );
    for tq in trace {
        selector.observe(&tq.request);
    }
    selector.select(master)
}

/// Greedy benefit/size choice of whole countries for the subtree model:
/// benefit = trace queries targeting employees of the country, size = its
/// population. Returns the chosen countries as typed [`NamingContext`]s
/// (suffix `c={cc},o=xyz`), best-first, within the entry budget.
pub fn select_subtree_contexts(
    dir: &EnterpriseDirectory,
    trace: &[TracedQuery],
    entry_budget: usize,
) -> Vec<NamingContext> {
    // Map serial/mail → country.
    let mut by_serial: HashMap<&str, &str> = HashMap::new();
    let mut by_mail: HashMap<&str, &str> = HashMap::new();
    for e in dir.employees() {
        by_serial.insert(e.serial.as_str(), e.country.as_str());
        by_mail.insert(e.mail.as_str(), e.country.as_str());
    }
    let mut benefit: HashMap<&str, u64> = HashMap::new();
    for tq in trace {
        let f = tq.request.filter().to_string();
        let country = match tq.kind {
            QueryKind::SerialNumber => {
                let sn = f.trim_start_matches("(serialNumber=").trim_end_matches(')');
                by_serial.get(sn).copied()
            }
            QueryKind::Mail => {
                let mail = f.trim_start_matches("(mail=").trim_end_matches(')');
                by_mail.get(mail).copied()
            }
            _ => None,
        };
        if let Some(c) = country {
            *benefit.entry(c).or_default() += 1;
        }
    }
    let mut scored: Vec<(&str, f64, usize)> = dir
        .countries()
        .iter()
        .filter(|(_, size)| *size > 0)
        .map(|(cc, size)| {
            let b = benefit.get(cc.as_str()).copied().unwrap_or(0);
            (cc.as_str(), b as f64 / *size as f64, *size)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut used = 0usize;
    let mut out = Vec::new();
    for (cc, ratio, size) in scored {
        if ratio <= 0.0 {
            break;
        }
        if used + size <= entry_budget {
            used += size;
            let suffix = format!("c={cc},o=xyz").parse().expect("valid dn");
            out.push(NamingContext::new(suffix));
        }
    }
    out
}

/// Builds a subtree replica holding the given naming contexts.
pub fn build_context_replica(master: &DitStore, contexts: &[NamingContext]) -> SubtreeReplica {
    let mut replica = SubtreeReplica::new();
    for ctx in contexts {
        replica.replicate_context(master, ctx.clone());
    }
    replica
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_selection::generalize::ValuePrefix;
    use fbdr_workload::{DirectoryConfig, TraceConfig, TraceGenerator, UpdateConfig, UpdateGenerator};

    fn setup() -> (EnterpriseDirectory, Vec<TracedQuery>, Vec<UpdateOp>) {
        let dir = EnterpriseDirectory::generate(DirectoryConfig::small());
        let tc = TraceConfig { queries: 2000, ..TraceConfig::default() };
        let trace = TraceGenerator::new(&dir, &tc).generate(&dir, &tc);
        let ops = UpdateGenerator::new(&dir).generate(&UpdateConfig {
            ops: 100,
            ..UpdateConfig::default()
        });
        (dir, trace, ops)
    }

    #[test]
    fn static_filter_replay_beats_subtree_at_same_size() {
        let (dir, trace, ops) = setup();
        let budget = dir.employee_count() / 5;

        // Filter model: train on the trace, freeze, replay.
        let filters = select_static_filters(
            dir.dit(),
            &trace,
            vec![Box::new(ValuePrefix::new("serialNumber", vec![4]))],
            budget,
        );
        assert!(!filters.is_empty());
        let master = fbdr_resync::SyncMaster::with_dit({
            let d = EnterpriseDirectory::generate(DirectoryConfig::small());
            d.into_parts().0
        });
        let mut repl = Replicator::new(master, 0);
        for f in filters {
            repl.install_filter(f).unwrap();
        }
        let filter_size = repl.replica().entry_count();
        assert!(filter_size <= budget);
        let f_out = replay_filter(&mut repl, &trace, &ops, ReplayConfig::default());

        // Subtree model at (at least) the same size.
        let countries = select_subtree_contexts(&dir, &trace, budget);
        let (mut mdit, _) = EnterpriseDirectory::generate(DirectoryConfig::small()).into_parts();
        let mut sub = build_context_replica(&mdit, &countries);
        let s_out = replay_subtree(&mut mdit, &mut sub, &trace, &ops, ReplayConfig::default(), Routing::Oracle);

        let f_serial = f_out.kind_hit_ratio(QueryKind::SerialNumber);
        let s_serial = s_out.kind_hit_ratio(QueryKind::SerialNumber);
        assert!(
            f_serial > s_serial,
            "filter model {f_serial} should beat subtree {s_serial} on serial queries"
        );
    }

    #[test]
    fn replay_accounts_per_kind() {
        let (dir, trace, ops) = setup();
        let master = fbdr_resync::SyncMaster::with_dit({
            let d = EnterpriseDirectory::generate(DirectoryConfig::small());
            d.into_parts().0
        });
        let mut repl = Replicator::new(master, 20);
        let out = replay_filter(&mut repl, &trace, &ops, ReplayConfig::default());
        let total_q: u64 = out.per_kind.values().map(|(q, _)| q).sum();
        assert_eq!(total_q, trace.len() as u64);
        assert_eq!(out.overall.queries, trace.len() as u64);
        assert!(out.updates_applied > 0);
        let _ = dir;
    }

    #[test]
    fn strict_routing_answers_nothing_for_root_queries() {
        let (dir, trace, ops) = setup();
        let (mut mdit, _) = EnterpriseDirectory::generate(DirectoryConfig::small()).into_parts();
        let countries = select_subtree_contexts(&dir, &trace, dir.employee_count());
        let mut sub = build_context_replica(&mdit, &countries);
        let out = replay_subtree(
            &mut mdit,
            &mut sub,
            &trace,
            &ops,
            ReplayConfig::default(),
            Routing::Strict,
        );
        assert_eq!(out.overall.hits, 0, "§3.1.1: root-based queries are unanswerable");
    }

    #[test]
    fn oracle_routing_gives_subtree_nonzero_hits() {
        let (dir, trace, ops) = setup();
        let (mut mdit, _) = EnterpriseDirectory::generate(DirectoryConfig::small()).into_parts();
        let countries = select_subtree_contexts(&dir, &trace, dir.employee_count() / 2);
        let mut sub = build_context_replica(&mdit, &countries);
        let out = replay_subtree(
            &mut mdit,
            &mut sub,
            &trace,
            &ops,
            ReplayConfig::default(),
            Routing::Oracle,
        );
        assert!(out.overall.hits > 0);
        assert!(out.overall.hit_ratio() < 1.0);
    }
}
