//! Deployment: a filter replica as a node in a simulated distributed
//! directory.
//!
//! [`ReplicaNode`] implements [`DirectoryService`]: queries semantically
//! contained in its replicated content are answered locally; everything
//! else gets a *default referral* to the master — exactly how the paper's
//! replica behaves at the protocol level (§3: "the meta information is
//! used to determine if an incoming query is semantically contained in
//! any stored query. Otherwise a referral is generated").
//!
//! ```
//! use fbdr_core::deploy::ReplicaNode;
//! use fbdr_dit::{DitStore, NamingContext};
//! use fbdr_ldap::{Entry, Filter, SearchRequest, Scope};
//! use fbdr_net::{Network, Server};
//! use fbdr_replica::FilterReplica;
//! use fbdr_resync::SyncMaster;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Master server and its data.
//! let mut dit = DitStore::new();
//! dit.add_suffix("o=xyz".parse()?);
//! dit.add(Entry::new("o=xyz".parse()?).with("objectclass", "organization"))?;
//! dit.add(Entry::new("cn=a,o=xyz".parse()?)
//!     .with("objectclass", "person")
//!     .with("serialNumber", "045612"))?;
//!
//! // The replica loads one filter from the master's content…
//! let mut sync_master = SyncMaster::with_dit(dit.clone());
//! let mut replica = FilterReplica::new(0);
//! replica.install_filter(&mut sync_master,
//!     SearchRequest::from_root(Filter::parse("(serialNumber=0456*)")?))?;
//!
//! // …and both are deployed into one network.
//! let mut net = Network::new();
//! net.add_server(Server::new("ldap://master", dit,
//!     vec![NamingContext::new("o=xyz".parse()?)], None));
//! net.add_service(Box::new(ReplicaNode::new("ldap://replica", replica, "ldap://master")));
//!
//! // A contained query is answered by the replica in one round trip.
//! let mut client = net.client();
//! let q = SearchRequest::from_root(Filter::parse("(serialNumber=045612)")?);
//! let res = client.search("ldap://replica", &q)?;
//! assert_eq!(res.entries.len(), 1);
//! assert_eq!(res.stats.round_trips, 1);
//!
//! // A miss is referred to the master: two round trips.
//! let q = SearchRequest::from_root(Filter::parse("(serialNumber=999999)")?);
//! let res = client.search("ldap://replica", &q)?;
//! assert_eq!(res.stats.round_trips, 2);
//! # Ok(())
//! # }
//! ```

use fbdr_net::{DirectoryService, ServerOutcome};
use fbdr_replica::FilterReplica;
use fbdr_resync::{Clock, SyncDriver, SyncError, SyncTraffic, SyncTransport};
use parking_lot::Mutex;

/// A filter-based replica addressable as a directory node: local answers
/// for contained queries, a default referral to the master otherwise.
#[derive(Debug)]
pub struct ReplicaNode {
    url: String,
    replica: Mutex<FilterReplica>,
    master_url: String,
}

impl ReplicaNode {
    /// Wraps a (loaded) replica as a network node referring misses to
    /// `master_url`.
    pub fn new(
        url: impl Into<String>,
        replica: FilterReplica,
        master_url: impl Into<String>,
    ) -> Self {
        ReplicaNode { url: url.into(), replica: Mutex::new(replica), master_url: master_url.into() }
    }

    /// Hit statistics accumulated while serving.
    pub fn stats(&self) -> fbdr_replica::ReplicaStats {
        self.replica.lock().stats()
    }

    /// Resynchronizes the deployed replica in place, through a retrying
    /// driver (see [`FilterReplica::sync_with`]): the node keeps serving
    /// — possibly stale — content while the cycle runs, and transport
    /// outages degrade to staleness instead of failing the node.
    ///
    /// # Errors
    ///
    /// Propagates non-transient [`SyncError`]s.
    pub fn sync_with<C: Clock>(
        &self,
        transport: &mut dyn SyncTransport,
        driver: &mut SyncDriver<C>,
    ) -> Result<SyncTraffic, SyncError> {
        self.replica.lock().sync_with(transport, driver)
    }

    /// Consumes the node, returning the replica (e.g. to resynchronize it).
    pub fn into_replica(self) -> FilterReplica {
        self.replica.into_inner()
    }
}

impl DirectoryService for ReplicaNode {
    fn url(&self) -> &str {
        &self.url
    }

    fn handle_search(&self, req: &fbdr_ldap::SearchRequest) -> ServerOutcome {
        match self.replica.lock().try_answer(req) {
            Some(entries) => ServerOutcome::Results { entries, continuations: Vec::new() },
            None => ServerOutcome::DefaultReferral(self.master_url.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_dit::{DitStore, NamingContext};
    use fbdr_ldap::{Entry, Filter, SearchRequest};
    use fbdr_net::{Network, Server};
    use fbdr_resync::SyncMaster;

    fn world() -> (Network, &'static str) {
        let mut dit = DitStore::new();
        dit.add_suffix("o=xyz".parse().unwrap());
        dit.add(Entry::new("o=xyz".parse().unwrap()).with("objectclass", "organization"))
            .unwrap();
        for i in 0..20 {
            dit.add(
                Entry::new(format!("cn=e{i},o=xyz").parse().unwrap())
                    .with("objectclass", "person")
                    .with("serialNumber", &format!("04{i:04}")),
            )
            .unwrap();
        }
        let mut master = SyncMaster::with_dit(dit.clone());
        let mut replica = FilterReplica::new(0);
        replica
            .install_filter(
                &mut master,
                SearchRequest::from_root(Filter::parse("(serialNumber=04000*)").unwrap()),
            )
            .unwrap();
        let mut net = Network::new();
        net.add_server(Server::new(
            "ldap://master",
            dit,
            vec![NamingContext::new("o=xyz".parse().unwrap())],
            None,
        ));
        net.add_service(Box::new(ReplicaNode::new("ldap://replica", replica, "ldap://master")));
        (net, "ldap://replica")
    }

    #[test]
    fn hit_is_one_round_trip_miss_is_two() {
        let (net, replica_url) = world();
        let mut client = net.client();
        let hit = SearchRequest::from_root(Filter::parse("(serialNumber=040007)").unwrap());
        let res = client.search(replica_url, &hit).unwrap();
        assert_eq!(res.stats.round_trips, 1);
        assert_eq!(res.entries.len(), 1);

        let miss = SearchRequest::from_root(Filter::parse("(serialNumber=040015)").unwrap());
        let res = client.search(replica_url, &miss).unwrap();
        assert_eq!(res.stats.round_trips, 2);
        assert_eq!(res.entries.len(), 1);
        assert_eq!(res.stats.referrals_received, 1);
    }

    #[test]
    fn deployed_node_resyncs_in_place() {
        let mut dit = DitStore::new();
        dit.add_suffix("o=xyz".parse().unwrap());
        dit.add(Entry::new("o=xyz".parse().unwrap()).with("objectclass", "organization"))
            .unwrap();
        dit.add(
            Entry::new("cn=a,o=xyz".parse().unwrap())
                .with("objectclass", "person")
                .with("serialNumber", "040001"),
        )
        .unwrap();
        let mut master = SyncMaster::with_dit(dit);
        let mut replica = FilterReplica::new(0);
        replica
            .install_filter(
                &mut master,
                SearchRequest::from_root(Filter::parse("(serialNumber=0400*)").unwrap()),
            )
            .unwrap();
        let node = ReplicaNode::new("ldap://replica", replica, "ldap://master");

        master
            .apply(fbdr_dit::UpdateOp::Add(
                Entry::new("cn=b,o=xyz".parse().unwrap())
                    .with("objectclass", "person")
                    .with("serialNumber", "040002"),
            ))
            .unwrap();
        let mut driver = SyncDriver::default();
        let t = node.sync_with(&mut master, &mut driver).unwrap();
        assert_eq!(t.full_entries, 1);
        assert_eq!(driver.stats().attempts, 1);

        let q = SearchRequest::from_root(Filter::parse("(serialNumber=040002)").unwrap());
        match node.handle_search(&q) {
            ServerOutcome::Results { entries, .. } => assert_eq!(entries.len(), 1),
            other => panic!("expected local answer, got {other:?}"),
        }
    }

    #[test]
    fn replica_node_tracks_stats() {
        let (net, replica_url) = world();
        let mut client = net.client();
        for i in 0..6 {
            let q = SearchRequest::from_root(
                Filter::parse(&format!("(serialNumber=04{:04})", i * 3)).unwrap(),
            );
            client.search(replica_url, &q).unwrap();
        }
        let node = net.server(replica_url).expect("node exists");
        // Downcast not needed: re-fetch stats through a fresh query path.
        // (The node's stats method is exercised in the doctest; here we
        // just confirm the node answered from the network's perspective.)
        assert_eq!(node.url(), replica_url);
    }
}
