//! Deployment: partial replicas as nodes in a simulated distributed
//! directory.
//!
//! [`ReplicaNode`] implements [`DirectoryService`]: queries semantically
//! contained in its replicated content are answered locally; everything
//! else gets a *default referral* to the master — exactly how the paper's
//! replica behaves at the protocol level (§3: "the meta information is
//! used to determine if an incoming query is semantically contained in
//! any stored query. Otherwise a referral is generated").
//! [`SubtreeReplicaNode`] does the same for the conventional subtree
//! model, so both replica types register in a [`Network`](fbdr_net::Network)
//! via `add_service` like any other node.
//!
//! Neither node wraps its replica in an exclusive lock on the read path:
//! `FilterReplica` answers from immutable content snapshots, so
//! [`ReplicaNode::handle_search`](DirectoryService::handle_search) runs
//! concurrently on any number of client threads, even while
//! [`ReplicaNode::sync_with`] is mid-cycle on another.
//!
//! ```
//! use fbdr_core::deploy::ReplicaNode;
//! use fbdr_dit::{DitStore, NamingContext};
//! use fbdr_ldap::{Entry, Filter, SearchRequest, Scope};
//! use fbdr_net::{Network, Server};
//! use fbdr_replica::FilterReplica;
//! use fbdr_resync::SyncMaster;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Master server and its data.
//! let mut dit = DitStore::new();
//! dit.add_suffix("o=xyz".parse()?);
//! dit.add(Entry::new("o=xyz".parse()?).with("objectclass", "organization"))?;
//! dit.add(Entry::new("cn=a,o=xyz".parse()?)
//!     .with("objectclass", "person")
//!     .with("serialNumber", "045612"))?;
//!
//! // The replica loads one filter from the master's content…
//! let mut sync_master = SyncMaster::with_dit(dit.clone());
//! let replica = FilterReplica::new(0);
//! replica.install_filter(&mut sync_master,
//!     SearchRequest::from_root(Filter::parse("(serialNumber=0456*)")?))?;
//!
//! // …and both are deployed into one network.
//! let mut net = Network::new();
//! net.add_server(Server::new("ldap://master", dit,
//!     vec![NamingContext::new("o=xyz".parse()?)], None));
//! net.add_service(Box::new(ReplicaNode::new("ldap://replica", replica, "ldap://master")));
//!
//! // A contained query is answered by the replica in one round trip.
//! let mut client = net.client();
//! let q = SearchRequest::from_root(Filter::parse("(serialNumber=045612)")?);
//! let res = client.search("ldap://replica", &q)?;
//! assert_eq!(res.entries.len(), 1);
//! assert_eq!(res.stats.round_trips, 1);
//!
//! // A miss is referred to the master: two round trips.
//! let q = SearchRequest::from_root(Filter::parse("(serialNumber=999999)")?);
//! let res = client.search("ldap://replica", &q)?;
//! assert_eq!(res.stats.round_trips, 2);
//! # Ok(())
//! # }
//! ```

use fbdr_dit::DitStore;
use fbdr_net::{DirectoryService, ServerOutcome};
use fbdr_replica::{FilterReplica, SubtreeReplica};
use fbdr_resync::{
    Clock, ShardCoordinator, SyncDriver, SyncError, SyncTraffic, SyncTransport, SystemClock,
};
use parking_lot::{Mutex, RwLock};

/// A filter-based replica addressable as a directory node: local answers
/// for contained queries, a default referral to the master otherwise.
///
/// The replica is held directly — no mutex. [`FilterReplica`]'s own
/// read/write split makes `handle_search` safe from any number of threads
/// while a sync cycle runs; the node is pure routing glue.
#[derive(Debug)]
pub struct ReplicaNode {
    url: String,
    replica: FilterReplica,
    master_url: String,
}

impl ReplicaNode {
    /// Wraps a (loaded) replica as a network node referring misses to
    /// `master_url`.
    pub fn new(
        url: impl Into<String>,
        replica: FilterReplica,
        master_url: impl Into<String>,
    ) -> Self {
        ReplicaNode { url: url.into(), replica, master_url: master_url.into() }
    }

    /// The underlying replica (all of whose operations take `&self`).
    pub fn replica(&self) -> &FilterReplica {
        &self.replica
    }

    /// Hit statistics accumulated while serving.
    pub fn stats(&self) -> fbdr_replica::ReplicaStats {
        self.replica.stats()
    }

    /// Resynchronizes the deployed replica in place, through a retrying
    /// driver (see [`FilterReplica::sync_with`]): the node keeps serving
    /// — possibly stale — content while the cycle runs, and transport
    /// outages degrade to staleness instead of failing the node.
    ///
    /// # Errors
    ///
    /// Propagates non-transient [`SyncError`]s.
    pub fn sync_with<C: Clock>(
        &self,
        transport: &mut dyn SyncTransport,
        driver: &mut SyncDriver<C>,
    ) -> Result<SyncTraffic, SyncError> {
        self.replica.sync_with(transport, driver)
    }

    /// Consumes the node, returning the replica.
    pub fn into_replica(self) -> FilterReplica {
        self.replica
    }
}

impl DirectoryService for ReplicaNode {
    fn url(&self) -> &str {
        &self.url
    }

    fn handle_search(&self, req: &fbdr_ldap::SearchRequest) -> ServerOutcome {
        match self.replica.try_answer(req) {
            Some(entries) => ServerOutcome::Results { entries, continuations: Vec::new() },
            None => ServerOutcome::DefaultReferral(self.master_url.clone()),
        }
    }
}

/// A filter-based replica deployed against a *sharded* master: the node
/// owns a [`ShardCoordinator`] whose per-shard drivers track retry and
/// reconcile state independently, so one slow or partitioned shard
/// degrades only the filters overlapping it.
///
/// The read path is identical to [`ReplicaNode`] — lock-free snapshot
/// answers, default referral on a miss. Only the coordinator sits behind
/// a [`Mutex`], taken for the duration of an install or sync cycle.
#[derive(Debug)]
pub struct ShardedReplicaNode {
    url: String,
    replica: FilterReplica,
    coordinator: Mutex<ShardCoordinator<SystemClock>>,
    master_url: String,
}

impl ShardedReplicaNode {
    /// Wraps a replica and its shard coordinator as a network node
    /// referring misses to `master_url`.
    pub fn new(
        url: impl Into<String>,
        replica: FilterReplica,
        coordinator: ShardCoordinator<SystemClock>,
        master_url: impl Into<String>,
    ) -> Self {
        ShardedReplicaNode {
            url: url.into(),
            replica,
            coordinator: Mutex::new(coordinator),
            master_url: master_url.into(),
        }
    }

    /// The underlying replica (all of whose operations take `&self`).
    pub fn replica(&self) -> &FilterReplica {
        &self.replica
    }

    /// Loads a filter through the coordinator, opening one session on
    /// every shard the filter's region overlaps.
    ///
    /// # Errors
    ///
    /// Propagates install failures; partially opened shard sessions are
    /// abandoned by the coordinator before the error surfaces.
    pub fn install_filter(
        &self,
        transport: &mut dyn SyncTransport,
        request: fbdr_ldap::SearchRequest,
    ) -> Result<SyncTraffic, SyncError> {
        self.replica.install_filter_sharded(transport, &mut self.coordinator.lock(), request)
    }

    /// Resynchronizes every filter across all overlapped shards (see
    /// [`FilterReplica::sync_with_sharded`]): the node keeps serving —
    /// possibly stale — content while the cycle runs, and a failing shard
    /// marks only the filters it backs stale.
    ///
    /// # Errors
    ///
    /// Propagates the first non-transient [`SyncError`], after the merged
    /// epoch has been published.
    pub fn sync_with(&self, transport: &mut dyn SyncTransport) -> Result<SyncTraffic, SyncError> {
        self.replica.sync_with_sharded(transport, &mut self.coordinator.lock())
    }

    /// Aggregate driver statistics across all shards.
    pub fn driver_stats(&self) -> fbdr_resync::DriverStats {
        self.coordinator.lock().stats()
    }
}

impl DirectoryService for ShardedReplicaNode {
    fn url(&self) -> &str {
        &self.url
    }

    fn handle_search(&self, req: &fbdr_ldap::SearchRequest) -> ServerOutcome {
        match self.replica.try_answer(req) {
            Some(entries) => ServerOutcome::Results { entries, continuations: Vec::new() },
            None => ServerOutcome::DefaultReferral(self.master_url.clone()),
        }
    }
}

/// A subtree replica addressable as a directory node, for head-to-head
/// deployments against [`ReplicaNode`] (§3.4.1 vs. the paper's model).
///
/// Unlike `FilterReplica`, the subtree store is not snapshot-isolated, so
/// the node holds an [`RwLock`]: concurrent readers share the read lock;
/// [`sync_from`](SubtreeReplicaNode::sync_from) briefly takes the write
/// lock for the whole cycle.
#[derive(Debug)]
pub struct SubtreeReplicaNode {
    url: String,
    replica: RwLock<SubtreeReplica>,
    master_url: String,
}

impl SubtreeReplicaNode {
    /// Wraps a (loaded) subtree replica as a network node referring
    /// misses to `master_url`.
    pub fn new(
        url: impl Into<String>,
        replica: SubtreeReplica,
        master_url: impl Into<String>,
    ) -> Self {
        SubtreeReplicaNode {
            url: url.into(),
            replica: RwLock::new(replica),
            master_url: master_url.into(),
        }
    }

    /// Hit statistics accumulated while serving.
    pub fn stats(&self) -> fbdr_replica::ReplicaStats {
        self.replica.read().stats()
    }

    /// Ships every pending change of the held contexts from the master
    /// (readers block for the duration of the cycle). Returns the sync
    /// traffic.
    pub fn sync_from(&self, master: &DitStore) -> SyncTraffic {
        self.replica.write().sync_from(master)
    }
}

impl DirectoryService for SubtreeReplicaNode {
    fn url(&self) -> &str {
        &self.url
    }

    fn handle_search(&self, req: &fbdr_ldap::SearchRequest) -> ServerOutcome {
        match self.replica.read().try_answer(req) {
            Some(entries) => ServerOutcome::Results { entries, continuations: Vec::new() },
            None => ServerOutcome::DefaultReferral(self.master_url.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_dit::{DitStore, NamingContext};
    use fbdr_ldap::{Entry, Filter, Scope, SearchRequest};
    use fbdr_net::{Network, Server};
    use fbdr_resync::SyncMaster;

    fn world() -> (Network, &'static str) {
        let mut dit = DitStore::new();
        dit.add_suffix("o=xyz".parse().unwrap());
        dit.add(Entry::new("o=xyz".parse().unwrap()).with("objectclass", "organization"))
            .unwrap();
        for i in 0..20 {
            dit.add(
                Entry::new(format!("cn=e{i},o=xyz").parse().unwrap())
                    .with("objectclass", "person")
                    .with("serialNumber", &format!("04{i:04}")),
            )
            .unwrap();
        }
        let mut master = SyncMaster::with_dit(dit.clone());
        let replica = FilterReplica::new(0);
        replica
            .install_filter(
                &mut master,
                SearchRequest::from_root(Filter::parse("(serialNumber=04000*)").unwrap()),
            )
            .unwrap();
        let mut net = Network::new();
        net.add_server(Server::new(
            "ldap://master",
            dit,
            vec![NamingContext::new("o=xyz".parse().unwrap())],
            None,
        ));
        net.add_service(Box::new(ReplicaNode::new("ldap://replica", replica, "ldap://master")));
        (net, "ldap://replica")
    }

    #[test]
    fn hit_is_one_round_trip_miss_is_two() {
        let (net, replica_url) = world();
        let mut client = net.client();
        let hit = SearchRequest::from_root(Filter::parse("(serialNumber=040007)").unwrap());
        let res = client.search(replica_url, &hit).unwrap();
        assert_eq!(res.stats.round_trips, 1);
        assert_eq!(res.entries.len(), 1);

        let miss = SearchRequest::from_root(Filter::parse("(serialNumber=040015)").unwrap());
        let res = client.search(replica_url, &miss).unwrap();
        assert_eq!(res.stats.round_trips, 2);
        assert_eq!(res.entries.len(), 1);
        assert_eq!(res.stats.referrals_received, 1);
    }

    #[test]
    fn deployed_node_resyncs_in_place() {
        let mut dit = DitStore::new();
        dit.add_suffix("o=xyz".parse().unwrap());
        dit.add(Entry::new("o=xyz".parse().unwrap()).with("objectclass", "organization"))
            .unwrap();
        dit.add(
            Entry::new("cn=a,o=xyz".parse().unwrap())
                .with("objectclass", "person")
                .with("serialNumber", "040001"),
        )
        .unwrap();
        let mut master = SyncMaster::with_dit(dit);
        let replica = FilterReplica::new(0);
        replica
            .install_filter(
                &mut master,
                SearchRequest::from_root(Filter::parse("(serialNumber=0400*)").unwrap()),
            )
            .unwrap();
        let node = ReplicaNode::new("ldap://replica", replica, "ldap://master");

        master
            .apply(fbdr_dit::UpdateOp::Add(
                Entry::new("cn=b,o=xyz".parse().unwrap())
                    .with("objectclass", "person")
                    .with("serialNumber", "040002"),
            ))
            .unwrap();
        let mut driver = SyncDriver::default();
        let t = node.sync_with(&mut master, &mut driver).unwrap();
        assert_eq!(t.full_entries, 1);
        assert_eq!(driver.stats().attempts, 1);

        let q = SearchRequest::from_root(Filter::parse("(serialNumber=040002)").unwrap());
        match node.handle_search(&q) {
            ServerOutcome::Results { entries, .. } => assert_eq!(entries.len(), 1),
            other => panic!("expected local answer, got {other:?}"),
        }
    }

    #[test]
    fn replica_node_tracks_stats() {
        let (net, replica_url) = world();
        let mut client = net.client();
        for i in 0..6 {
            let q = SearchRequest::from_root(
                Filter::parse(&format!("(serialNumber=04{:04})", i * 3)).unwrap(),
            );
            client.search(replica_url, &q).unwrap();
        }
        let node = net.server(replica_url).expect("node exists");
        assert_eq!(node.url(), replica_url);
    }

    #[test]
    fn sharded_node_installs_syncs_and_serves() {
        use fbdr_resync::{ShardCoordinator, ShardMap, ShardedMaster};

        let map = ShardMap::by_suffixes(vec![
            "c=g0,o=xyz".parse().unwrap(),
            "c=g1,o=xyz".parse().unwrap(),
        ]);
        let mut master = ShardedMaster::new(map.clone());
        for shard in map.shards() {
            let dit = master.shard_mut(shard).dit_mut();
            dit.add_suffix("o=xyz".parse().unwrap());
            dit.add(Entry::new("o=xyz".parse().unwrap()).with("objectclass", "organization"))
                .unwrap();
        }
        for g in 0..2 {
            master
                .apply(fbdr_dit::UpdateOp::Add(
                    Entry::new(format!("c=g{g},o=xyz").parse().unwrap())
                        .with("objectclass", "country"),
                ))
                .unwrap();
        }
        for i in 0..8 {
            master
                .apply(fbdr_dit::UpdateOp::Add(
                    Entry::new(format!("cn=e{i},c=g{},o=xyz", i % 2).parse().unwrap())
                        .with("objectclass", "person")
                        .with("serialNumber", &format!("04{i:04}")),
                ))
                .unwrap();
        }

        let node = ShardedReplicaNode::new(
            "ldap://replica",
            FilterReplica::new(0),
            ShardCoordinator::new(map),
            "ldap://master",
        );
        node.install_filter(
            &mut master,
            SearchRequest::from_root(Filter::parse("(serialNumber=04*)").unwrap()),
        )
        .unwrap();

        // Both shards contributed entries to the loaded filter.
        let q = SearchRequest::from_root(Filter::parse("(serialNumber=04*)").unwrap());
        match node.handle_search(&q) {
            ServerOutcome::Results { entries, .. } => assert_eq!(entries.len(), 8),
            other => panic!("expected local answer, got {other:?}"),
        }

        // An update lands on one shard and a sync cycle picks it up.
        master
            .apply(fbdr_dit::UpdateOp::Add(
                Entry::new("cn=new,c=g1,o=xyz".parse().unwrap())
                    .with("objectclass", "person")
                    .with("serialNumber", "049999"),
            ))
            .unwrap();
        let t = node.sync_with(&mut master).unwrap();
        assert_eq!(t.full_entries, 1);
        match node.handle_search(&q) {
            ServerOutcome::Results { entries, .. } => assert_eq!(entries.len(), 9),
            other => panic!("expected local answer, got {other:?}"),
        }
        // Two shard sessions opened at install plus two polled at sync.
        assert_eq!(node.driver_stats().attempts, 4);
    }

    #[test]
    fn subtree_node_answers_and_refers() {
        let mut dit = DitStore::new();
        dit.add_suffix("o=xyz".parse().unwrap());
        dit.add(Entry::new("o=xyz".parse().unwrap()).with("objectclass", "organization"))
            .unwrap();
        dit.add(Entry::new("c=us,o=xyz".parse().unwrap()).with("objectclass", "country"))
            .unwrap();
        dit.add(
            Entry::new("cn=a,c=us,o=xyz".parse().unwrap())
                .with("objectclass", "person")
                .with("serialNumber", "040001"),
        )
        .unwrap();

        let mut sub = SubtreeReplica::new();
        sub.replicate_context(&dit, NamingContext::new("c=us,o=xyz".parse().unwrap()));

        let mut net = Network::new();
        net.add_server(Server::new(
            "ldap://master",
            dit.clone(),
            vec![NamingContext::new("o=xyz".parse().unwrap())],
            None,
        ));
        net.add_service(Box::new(SubtreeReplicaNode::new(
            "ldap://sub",
            sub,
            "ldap://master",
        )));

        let mut client = net.client();
        // A query based inside the held context: answered locally.
        let hit = SearchRequest::new(
            "c=us,o=xyz".parse().unwrap(),
            Scope::Subtree,
            Filter::parse("(serialNumber=04*)").unwrap(),
        );
        let res = client.search("ldap://sub", &hit).unwrap();
        assert_eq!(res.stats.round_trips, 1);
        assert_eq!(res.entries.len(), 1);

        // A root-based query: subtree replicas can never answer those
        // (§3.1.1) — referred to the master.
        let miss = SearchRequest::from_root(Filter::parse("(serialNumber=040001)").unwrap());
        let res = client.search("ldap://sub", &miss).unwrap();
        assert_eq!(res.stats.round_trips, 2);
        assert_eq!(res.entries.len(), 1);

        // The node saw both queries; only one was a hit.
        let node = net.server("ldap://sub").unwrap();
        assert_eq!(node.url(), "ldap://sub");
    }

    #[test]
    fn subtree_node_syncs_in_place() {
        let mut dit = DitStore::new();
        dit.add_suffix("o=xyz".parse().unwrap());
        dit.add(Entry::new("o=xyz".parse().unwrap()).with("objectclass", "organization"))
            .unwrap();
        dit.add(Entry::new("c=us,o=xyz".parse().unwrap()).with("objectclass", "country"))
            .unwrap();
        let mut sub = SubtreeReplica::new();
        sub.replicate_context(&dit, NamingContext::new("c=us,o=xyz".parse().unwrap()));
        let node = SubtreeReplicaNode::new("ldap://sub", sub, "ldap://master");

        dit.add(
            Entry::new("cn=n,c=us,o=xyz".parse().unwrap())
                .with("objectclass", "person")
                .with("serialNumber", "049999"),
        )
        .unwrap();
        let t = node.sync_from(&dit);
        assert_eq!(t.full_entries, 1);

        let q = SearchRequest::new(
            "c=us,o=xyz".parse().unwrap(),
            Scope::Subtree,
            Filter::parse("(serialNumber=049999)").unwrap(),
        );
        match node.handle_search(&q) {
            ServerOutcome::Results { entries, .. } => assert_eq!(entries.len(), 1),
            other => panic!("expected local answer, got {other:?}"),
        }
        assert_eq!(node.stats().hits, 1);
    }
}
