//! Hit-ratio accounting shared by both replica models.

use fbdr_obs::{Counter, MetricsRegistry};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Query-answering statistics for a replica.
///
/// *Hit ratio* is the fraction of client requests completely answered by
/// the replica without generating referrals (§3.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaStats {
    /// Queries received.
    pub queries: u64,
    /// Queries fully answered locally.
    pub hits: u64,
    /// Hits answered by a synchronized (generalized) stored query.
    pub generalized_hits: u64,
    /// Hits answered by a cached recent user query.
    pub cache_hits: u64,
    /// Hits served from a filter known to be stale — its last sync cycle
    /// exhausted the retry budget, so the content may lag the master.
    pub stale_serves: u64,
    /// Persist subscriptions that degraded to cookie-based polling after
    /// their notification channel disconnected.
    pub poll_fallbacks: u64,
}

impl ReplicaStats {
    /// The hit ratio `hits / queries` (0.0 when no queries were seen).
    pub fn hit_ratio(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.hits as f64 / self.queries as f64
        }
    }

    /// Misses (queries that generated referrals).
    pub fn misses(&self) -> u64 {
        self.queries - self.hits
    }
}

/// Interior-mutable [`ReplicaStats`]: each counter is an atomic
/// [`Counter`] bumped with `fetch_add(1, Relaxed)`, so the query path
/// needs only `&self` and concurrent readers never contend on a lock just
/// to count.
///
/// Ordering guarantees: relaxed operations make each counter individually
/// exact (no lost increments) but establish **no ordering between
/// counters** — a [`snapshot`](AtomicReplicaStats::snapshot) taken while
/// queries are in flight may observe `queries` updated before `hits` for
/// the same query (so `hits <= queries` can transiently be violated by at
/// most the number of in-flight queries). Once all readers quiesce, a
/// snapshot is exact.
///
/// When built with [`AtomicReplicaStats::bound`], the counters **are**
/// the `fbdr_replica_*` counters of a [`MetricsRegistry`]: the registry
/// export and [`snapshot`](AtomicReplicaStats::snapshot) read the same
/// atomics and cannot disagree. [`AtomicReplicaStats::new`] creates
/// free-standing counters for unobserved replicas.
#[derive(Debug)]
pub struct AtomicReplicaStats {
    queries: Arc<Counter>,
    hits: Arc<Counter>,
    generalized_hits: Arc<Counter>,
    cache_hits: Arc<Counter>,
    stale_serves: Arc<Counter>,
    poll_fallbacks: Arc<Counter>,
}

impl Default for AtomicReplicaStats {
    fn default() -> Self {
        AtomicReplicaStats::new()
    }
}

impl AtomicReplicaStats {
    /// A fresh zeroed counter set, not attached to any registry.
    pub fn new() -> Self {
        AtomicReplicaStats {
            queries: Arc::new(Counter::new()),
            hits: Arc::new(Counter::new()),
            generalized_hits: Arc::new(Counter::new()),
            cache_hits: Arc::new(Counter::new()),
            stale_serves: Arc::new(Counter::new()),
            poll_fallbacks: Arc::new(Counter::new()),
        }
    }

    /// A counter set whose atomics live in `registry` under the
    /// `fbdr_replica_*` metric names — the single source both for
    /// [`snapshot`](AtomicReplicaStats::snapshot) and the registry's
    /// Prometheus/JSON export.
    pub fn bound(registry: &MetricsRegistry) -> Self {
        AtomicReplicaStats {
            queries: registry.counter("fbdr_replica_queries_total"),
            hits: registry.counter("fbdr_replica_hits_total"),
            generalized_hits: registry.counter("fbdr_replica_generalized_hits_total"),
            cache_hits: registry.counter("fbdr_replica_cache_hits_total"),
            stale_serves: registry.counter("fbdr_replica_stale_serves_total"),
            poll_fallbacks: registry.counter("fbdr_replica_poll_fallbacks_total"),
        }
    }

    /// Counts a received query.
    pub fn record_query(&self) {
        self.queries.inc();
    }

    /// Counts a hit answered by a generalized (synchronized) filter;
    /// `stale` additionally counts a stale serve.
    pub fn record_generalized_hit(&self, stale: bool) {
        self.hits.inc();
        self.generalized_hits.inc();
        if stale {
            self.stale_serves.inc();
        }
    }

    /// Counts a hit answered by a cached recent user query.
    pub fn record_cache_hit(&self) {
        self.hits.inc();
        self.cache_hits.inc();
    }

    /// Counts a plain hit (subtree model: no generalized/cached split).
    pub fn record_hit(&self) {
        self.hits.inc();
    }

    /// Counts a persist→poll degradation.
    pub fn record_poll_fallback(&self) {
        self.poll_fallbacks.inc();
    }

    /// A point-in-time copy of the counters as a plain [`ReplicaStats`].
    pub fn snapshot(&self) -> ReplicaStats {
        ReplicaStats {
            queries: self.queries.get(),
            hits: self.hits.get(),
            generalized_hits: self.generalized_hits.get(),
            cache_hits: self.cache_hits.get(),
            stale_serves: self.stale_serves.get(),
            poll_fallbacks: self.poll_fallbacks.get(),
        }
    }

    /// Zeroes all counters (e.g. after the training day).
    pub fn reset(&self) {
        self.queries.reset();
        self.hits.reset();
        self.generalized_hits.reset();
        self.cache_hits.reset();
        self.stale_serves.reset();
        self.poll_fallbacks.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ReplicaStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn ratio_and_misses() {
        let s = ReplicaStats {
            queries: 10,
            hits: 5,
            generalized_hits: 3,
            cache_hits: 2,
            ..ReplicaStats::default()
        };
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(s.misses(), 5);
    }

    #[test]
    fn atomic_counters_snapshot_and_reset() {
        let a = AtomicReplicaStats::new();
        a.record_query();
        a.record_query();
        a.record_generalized_hit(true);
        a.record_cache_hit();
        a.record_poll_fallback();
        let s = a.snapshot();
        assert_eq!(s.queries, 2);
        assert_eq!(s.hits, 2);
        assert_eq!(s.generalized_hits, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.stale_serves, 1);
        assert_eq!(s.poll_fallbacks, 1);
        a.reset();
        assert_eq!(a.snapshot(), ReplicaStats::default());
    }

    #[test]
    fn bound_stats_share_registry_atomics() {
        let registry = MetricsRegistry::new();
        let stats = AtomicReplicaStats::bound(&registry);
        stats.record_query();
        stats.record_generalized_hit(true);
        // One counter source: the registry export reads the same atomics.
        let snap = registry.snapshot();
        assert_eq!(snap.counters["fbdr_replica_queries_total"], 1);
        assert_eq!(snap.counters["fbdr_replica_hits_total"], 1);
        assert_eq!(snap.counters["fbdr_replica_stale_serves_total"], 1);
        // And increments through the registry are visible in snapshot().
        registry.counter("fbdr_replica_queries_total").inc();
        assert_eq!(stats.snapshot().queries, 2);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let a = AtomicReplicaStats::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let a = &a;
                s.spawn(move || {
                    for _ in 0..1000 {
                        a.record_query();
                        a.record_generalized_hit(false);
                    }
                });
            }
        });
        let s = a.snapshot();
        assert_eq!(s.queries, 4000);
        assert_eq!(s.hits, 4000);
        assert_eq!(s.generalized_hits, 4000);
    }
}
