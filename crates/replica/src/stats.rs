//! Hit-ratio accounting shared by both replica models.

use serde::{Deserialize, Serialize};

/// Query-answering statistics for a replica.
///
/// *Hit ratio* is the fraction of client requests completely answered by
/// the replica without generating referrals (§3.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaStats {
    /// Queries received.
    pub queries: u64,
    /// Queries fully answered locally.
    pub hits: u64,
    /// Hits answered by a synchronized (generalized) stored query.
    pub generalized_hits: u64,
    /// Hits answered by a cached recent user query.
    pub cache_hits: u64,
    /// Hits served from a filter known to be stale — its last sync cycle
    /// exhausted the retry budget, so the content may lag the master.
    pub stale_serves: u64,
    /// Persist subscriptions that degraded to cookie-based polling after
    /// their notification channel disconnected.
    pub poll_fallbacks: u64,
}

impl ReplicaStats {
    /// The hit ratio `hits / queries` (0.0 when no queries were seen).
    pub fn hit_ratio(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.hits as f64 / self.queries as f64
        }
    }

    /// Misses (queries that generated referrals).
    pub fn misses(&self) -> u64 {
        self.queries - self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ReplicaStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn ratio_and_misses() {
        let s = ReplicaStats {
            queries: 10,
            hits: 5,
            generalized_hits: 3,
            cache_hits: 2,
            ..ReplicaStats::default()
        };
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(s.misses(), 5);
    }
}
