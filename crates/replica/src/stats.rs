//! Hit-ratio accounting shared by both replica models.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Query-answering statistics for a replica.
///
/// *Hit ratio* is the fraction of client requests completely answered by
/// the replica without generating referrals (§3.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaStats {
    /// Queries received.
    pub queries: u64,
    /// Queries fully answered locally.
    pub hits: u64,
    /// Hits answered by a synchronized (generalized) stored query.
    pub generalized_hits: u64,
    /// Hits answered by a cached recent user query.
    pub cache_hits: u64,
    /// Hits served from a filter known to be stale — its last sync cycle
    /// exhausted the retry budget, so the content may lag the master.
    pub stale_serves: u64,
    /// Persist subscriptions that degraded to cookie-based polling after
    /// their notification channel disconnected.
    pub poll_fallbacks: u64,
}

impl ReplicaStats {
    /// The hit ratio `hits / queries` (0.0 when no queries were seen).
    pub fn hit_ratio(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.hits as f64 / self.queries as f64
        }
    }

    /// Misses (queries that generated referrals).
    pub fn misses(&self) -> u64 {
        self.queries - self.hits
    }
}

/// Interior-mutable [`ReplicaStats`]: each counter is an [`AtomicU64`]
/// bumped with `fetch_add(1, Relaxed)`, so the query path needs only
/// `&self` and concurrent readers never contend on a lock just to count.
///
/// Ordering guarantees: relaxed operations make each counter individually
/// exact (no lost increments) but establish **no ordering between
/// counters** — a [`snapshot`](AtomicReplicaStats::snapshot) taken while
/// queries are in flight may observe `queries` updated before `hits` for
/// the same query (so `hits <= queries` can transiently be violated by at
/// most the number of in-flight queries). Once all readers quiesce, a
/// snapshot is exact.
#[derive(Debug, Default)]
pub struct AtomicReplicaStats {
    queries: AtomicU64,
    hits: AtomicU64,
    generalized_hits: AtomicU64,
    cache_hits: AtomicU64,
    stale_serves: AtomicU64,
    poll_fallbacks: AtomicU64,
}

impl AtomicReplicaStats {
    /// A fresh zeroed counter set.
    pub fn new() -> Self {
        AtomicReplicaStats::default()
    }

    /// Counts a received query.
    pub fn record_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a hit answered by a generalized (synchronized) filter;
    /// `stale` additionally counts a stale serve.
    pub fn record_generalized_hit(&self, stale: bool) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.generalized_hits.fetch_add(1, Ordering::Relaxed);
        if stale {
            self.stale_serves.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts a hit answered by a cached recent user query.
    pub fn record_cache_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a plain hit (subtree model: no generalized/cached split).
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a persist→poll degradation.
    pub fn record_poll_fallback(&self) {
        self.poll_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters as a plain [`ReplicaStats`].
    pub fn snapshot(&self) -> ReplicaStats {
        ReplicaStats {
            queries: self.queries.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            generalized_hits: self.generalized_hits.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            stale_serves: self.stale_serves.load(Ordering::Relaxed),
            poll_fallbacks: self.poll_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all counters (e.g. after the training day).
    pub fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.generalized_hits.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.stale_serves.store(0, Ordering::Relaxed);
        self.poll_fallbacks.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ReplicaStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn ratio_and_misses() {
        let s = ReplicaStats {
            queries: 10,
            hits: 5,
            generalized_hits: 3,
            cache_hits: 2,
            ..ReplicaStats::default()
        };
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(s.misses(), 5);
    }

    #[test]
    fn atomic_counters_snapshot_and_reset() {
        let a = AtomicReplicaStats::new();
        a.record_query();
        a.record_query();
        a.record_generalized_hit(true);
        a.record_cache_hit();
        a.record_poll_fallback();
        let s = a.snapshot();
        assert_eq!(s.queries, 2);
        assert_eq!(s.hits, 2);
        assert_eq!(s.generalized_hits, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.stale_serves, 1);
        assert_eq!(s.poll_fallbacks, 1);
        a.reset();
        assert_eq!(a.snapshot(), ReplicaStats::default());
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let a = AtomicReplicaStats::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let a = &a;
                s.spawn(move || {
                    for _ in 0..1000 {
                        a.record_query();
                        a.record_generalized_hit(false);
                    }
                });
            }
        });
        let s = a.snapshot();
        assert_eq!(s.queries, 4000);
        assert_eq!(s.hits, 4000);
        assert_eq!(s.generalized_hits, 4000);
    }
}
