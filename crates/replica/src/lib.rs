#![warn(missing_docs)]
//! Partial replicas of a directory: the paper's two replication models.
//!
//! * [`SubtreeReplica`] — the conventional model (§3.4.1): the replica
//!   holds one or more naming contexts (subtrees, possibly delimited by
//!   referral objects) and answers a query iff the base lies inside a held
//!   context (`isContained`) and, for full answers, no subordinate
//!   referral intersects the query region.
//! * [`FilterReplica`] — the paper's model: the replica stores the content
//!   of one or more *LDAP queries* — statically configured generalized
//!   filters kept in sync via ReSync, plus a short window of recently
//!   performed user queries cached for temporal locality (§7.4). An
//!   incoming query is answerable iff it is semantically contained
//!   (`QC`) in some stored query.
//!
//! Both replicas expose [`try_answer`](FilterReplica::try_answer) returning
//! the locally computed result on a hit and `None` (→ referral to the
//! master) on a miss, plus hit-ratio accounting ([`ReplicaStats`]).
//!
//! # Indexed evaluation
//!
//! [`FilterReplica`] answers queries through a per-epoch snapshot index:
//! entry DNs are interned to dense `u32` ids, stored-filter contents are
//! sorted [`posting`] lists, and each epoch carries incrementally
//! maintained equality/prefix/range posting lists. A hit compiles the
//! query filter into a candidate plan, intersects it (galloping) with the
//! winning filter's list, and verifies residual predicates only on the
//! candidates. Containment decisions are memoized per epoch
//! ([`DecisionCacheStats`]).
//!
//! # Concurrency
//!
//! Query answering is `&self` on both models. [`FilterReplica`] goes
//! further: its content lives in immutable per-epoch snapshots behind an
//! `Arc` swap, so readers run concurrently with sync cycles and never see
//! a half-applied update batch. Statistics are relaxed atomics
//! ([`AtomicReplicaStats`]) snapshotted into plain [`ReplicaStats`].

mod filter_replica;
mod index;
pub mod posting;
mod stats;
mod subtree;

pub use filter_replica::{DecisionCacheStats, FilterReplica, StoredQueryKind};
pub use stats::{AtomicReplicaStats, ReplicaStats};
pub use subtree::SubtreeReplica;

pub use fbdr_resync::SyncTraffic;
