//! The filter-based replication model (the paper's contribution), with a
//! read/write-split concurrency design: query answering is `&self` and
//! lock-minimal, mutation publishes immutable per-epoch content snapshots.
//!
//! # Indexed evaluation
//!
//! Replica-local answering is index-backed. Every entry DN is interned to
//! a dense `u32` id once; stored-filter contents are sorted id posting
//! lists; the entry store is an id-addressed vector of shared entries; and
//! each published epoch carries a [`SnapshotIndex`] with
//! equality/prefix/range posting lists, maintained *incrementally* by the
//! writer (never rebuilt from the entry store). A query is answered by
//! compiling its filter into an index plan, intersecting (galloping) with
//! the winning stored filter's list, and verifying residual predicates
//! only on the candidates. Repeated queries skip the containment check
//! entirely through a per-epoch decision cache.

use crate::index::SnapshotIndex;
use crate::posting;
use crate::stats::{AtomicReplicaStats, ReplicaStats};
use crossbeam::channel::{Receiver, TryRecvError};
use fbdr_containment::{ContainmentEngine, EngineStats, PreparedQuery};
use fbdr_ldap::{Entry, SearchRequest};
use fbdr_obs::{event, Counter, Histogram, Obs};
use fbdr_resync::reconcile::entry_item_hash;
use fbdr_resync::{
    dn_key, entry_key, Clock, CompositeCookie, Cookie, DnInterner, NotifyBatch, ReSyncControl,
    ReconcileItem, ShardContent, ShardCoordinator, ShardId, ShardMap, ShardStatus, SyncAction,
    SyncDriver, SyncError, SyncMaster, SyncTransport, SyncTraffic,
};
use parking_lot::{Mutex, RwLock};
use std::borrow::Cow;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a query's content is stored in the replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoredQueryKind {
    /// A generalized filter, statically or dynamically selected, kept in
    /// sync with the master via ReSync.
    Generalized,
    /// A recently performed user query, cached for temporal locality and
    /// *not* updated (§7.4) — evicted FIFO from a fixed window.
    Cached,
}

/// One synchronized generalized filter inside a content snapshot.
///
/// Immutable once published, except for the hit counter: that is an
/// `Arc<AtomicU64>` shared across snapshot generations, so hits recorded
/// against an old epoch survive the next publish.
#[derive(Debug, Clone)]
struct StoredFilter {
    prepared: PreparedQuery,
    /// The filter's content as a sorted posting list of interned ids.
    ids: Vec<u32>,
    /// True when the last sync cycle could not reach the master: the
    /// content is served anyway (availability over freshness) but hits
    /// are accounted as stale until a cycle succeeds.
    stale: bool,
    hits: Arc<AtomicU64>,
}

/// The immutable-per-epoch read view: what `try_answer` consults.
///
/// Readers clone the `Arc` (the content lock is held only for that
/// pointer copy) and then work entirely on their private snapshot, so a
/// concurrent writer publishing epoch `n+1` never disturbs a reader still
/// answering from epoch `n`.
///
/// The interner and index are themselves behind `Arc`s: an epoch that
/// does not touch them shares its predecessor's allocation, and a sync
/// cycle that does touch them pays one structural clone plus the delta.
#[derive(Debug)]
struct ContentSnapshot {
    /// Monotonic generation number; bumped by every published mutation.
    epoch: u64,
    filters: Vec<Arc<StoredFilter>>,
    /// Id-addressed entry store: slot `id` holds the entry whose interned
    /// DN is `id`, or `None` when no stored filter references it.
    entries: Vec<Option<Arc<Entry>>>,
    /// Number of occupied slots (the replica-size metric).
    live: usize,
    /// DN-key → id map; ids are append-only and stable across epochs.
    interner: Arc<DnInterner>,
    /// Equality/prefix/range posting lists over the occupied slots.
    index: Arc<SnapshotIndex>,
}

impl ContentSnapshot {
    fn empty() -> Self {
        ContentSnapshot {
            epoch: 0,
            filters: Vec::new(),
            entries: Vec::new(),
            live: 0,
            interner: Arc::new(DnInterner::new()),
            index: Arc::new(SnapshotIndex::default()),
        }
    }

    /// The entry stored under an interned id, if the slot is occupied.
    fn entry(&self, id: u32) -> Option<&Entry> {
        self.entries.get(id as usize)?.as_deref()
    }

    /// True when a normalized DN key is held by some stored filter.
    fn contains_key(&self, key: &str) -> bool {
        self.interner.get(key).is_some_and(|id| self.entry(id).is_some())
    }
}

/// The writer's mutable working copy of a snapshot's content, threaded
/// through every mutator. Cloning from the previous snapshot copies the
/// filter/entry vectors (of `Arc`s — cheap) and *shares* the interner and
/// index until the first mutation touches them (`Arc::make_mut`).
struct Working {
    epoch: u64,
    filters: Vec<Arc<StoredFilter>>,
    entries: Vec<Option<Arc<Entry>>>,
    live: usize,
    interner: Arc<DnInterner>,
    index: Arc<SnapshotIndex>,
}

impl Working {
    fn from_snapshot(snap: &ContentSnapshot) -> Self {
        Working {
            epoch: snap.epoch,
            filters: snap.filters.clone(),
            entries: snap.entries.clone(),
            live: snap.live,
            interner: snap.interner.clone(),
            index: snap.index.clone(),
        }
    }

    fn into_snapshot(self) -> ContentSnapshot {
        ContentSnapshot {
            epoch: self.epoch + 1,
            filters: self.filters,
            entries: self.entries,
            live: self.live,
            interner: self.interner,
            index: self.index,
        }
    }

    /// Interns a DN key (cloning the shared interner only on a genuinely
    /// new DN) and grows the slot vector to fit.
    fn intern(&mut self, key: &str) -> u32 {
        let id = match self.interner.get(key) {
            Some(id) => id,
            None => Arc::make_mut(&mut self.interner).intern(key),
        };
        if self.entries.len() <= id as usize {
            self.entries.resize(id as usize + 1, None);
        }
        id
    }

    /// Upserts an entry into its slot, keeping the index exact: the old
    /// version's values are unindexed before the new ones are inserted.
    fn store(&mut self, id: u32, e: Entry) {
        let ix = Arc::make_mut(&mut self.index);
        if let Some(old) = self.entries[id as usize].take() {
            ix.remove_entry(id, &old);
        } else {
            self.live += 1;
        }
        ix.insert_entry(id, &e);
        self.entries[id as usize] = Some(Arc::new(e));
    }

    /// Clears a slot and unindexes the entry it held.
    fn evict(&mut self, id: u32) {
        if let Some(old) = self.entries[id as usize].take() {
            Arc::make_mut(&mut self.index).remove_entry(id, &old);
            self.live -= 1;
        }
    }
}

/// One stored filter's held content sliced by shard ownership — the
/// [`ShardContent`] view the coordinator reconciles/reinstalls against.
/// Ownership is decided by the shard map over each held entry's DN, so a
/// shard's slice is exactly what that shard's master serves.
struct WorkingShardContent<'a> {
    work: &'a Working,
    filter: usize,
    map: &'a ShardMap,
}

impl WorkingShardContent<'_> {
    /// The held entry `id`, when it belongs to `shard`.
    fn owned_entry(&self, shard: ShardId, id: u32) -> Option<&Entry> {
        let e = self.work.entries.get(id as usize)?.as_deref()?;
        (self.map.shard_of(e.dn()) == shard).then_some(e)
    }
}

impl ShardContent for WorkingShardContent<'_> {
    fn items(&self, shard: ShardId) -> Vec<ReconcileItem> {
        self.work.filters[self.filter]
            .ids
            .iter()
            .filter_map(|&id| {
                let e = self.owned_entry(shard, id)?;
                Some(ReconcileItem { hash: entry_item_hash(e), id })
            })
            .collect()
    }

    fn resolve(&self, shard: ShardId, key: &str) -> Option<u32> {
        let id = self.work.interner.get(key)?;
        self.work.filters[self.filter].ids.binary_search(&id).ok()?;
        self.owned_entry(shard, id).map(|_| id)
    }

    fn dn_of(&self, shard: ShardId, id: u32) -> Option<fbdr_ldap::Dn> {
        self.owned_entry(shard, id).map(|e| e.dn().clone())
    }

    fn held_dns(&self, shard: ShardId) -> Vec<fbdr_ldap::Dn> {
        self.work.filters[self.filter]
            .ids
            .iter()
            .filter_map(|&id| self.owned_entry(shard, id).map(|e| e.dn().clone()))
            .collect()
    }
}

/// Writer-side per-filter state that readers never touch: the ReSync
/// session cookie and the optional persist-mode notification channel.
///
/// Invariant: `WriterState::sessions` is index-aligned with the current
/// snapshot's `filters` — every mutator that adds/removes a filter updates
/// both under the writer lock before publishing.
#[derive(Debug)]
struct FilterSession {
    cookie: Option<Cookie>,
    /// Live notification channel for persist-mode filters.
    notifications: Option<Receiver<NotifyBatch>>,
    /// Per-shard session cookies for filters installed against a sharded
    /// master ([`FilterReplica::install_filter_sharded`]); `None` for
    /// single-master filters.
    composite: Option<CompositeCookie>,
}

/// All mutable bookkeeping, serialized behind one writer mutex.
#[derive(Debug, Default)]
struct WriterState {
    sessions: Vec<FilterSession>,
    /// How many filters reference each entry id (cache entries are owned
    /// by their cached query and not counted here).
    refcount: HashMap<u32, usize>,
}

/// A cached recent user query with its frozen result set (cached queries
/// are not synchronized, §7.4, so the result is a snapshot at cache time).
#[derive(Debug)]
struct CachedQuery {
    prepared: PreparedQuery,
    entries: Vec<Entry>,
    keys: HashSet<String>,
    hits: AtomicU64,
}

/// FIFO window of cached queries behind a short-critical-section mutex:
/// the lock is held only to push/evict/copy the `Arc` list — containment
/// checks and result evaluation run outside it.
#[derive(Debug, Default)]
struct QueryCache {
    queries: Mutex<VecDeque<Arc<CachedQuery>>>,
}

impl QueryCache {
    fn view(&self) -> Vec<Arc<CachedQuery>> {
        self.queries.lock().iter().cloned().collect()
    }
}

/// Upper bound on memoized containment decisions; reaching it clears the
/// map (Zipf traffic re-warms the hot keys within a few queries).
const DECISION_CACHE_CAP: usize = 4096;

/// Epoch-invalidated memo of containment decisions: normalized query key
/// → index of the first stored filter that contains it (`Some`) or proof
/// that none does (`None`). Valid only for the epoch it was filled in —
/// any publish changes the filter list or content, so the map is cleared
/// on the first probe against a newer epoch.
#[derive(Debug, Default)]
struct DecisionCache {
    epoch: u64,
    map: HashMap<String, Option<usize>>,
}

/// Point-in-time counters of the containment decision cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionCacheStats {
    /// Probes answered from the cache (containment check skipped).
    pub hits: u64,
    /// Probes that fell through to the containment engine.
    pub misses: u64,
    /// Decisions currently memoized for the probing epoch.
    pub entries: usize,
}

/// Pre-resolved metric handles for the answer path; `None` on an
/// unobserved replica, so the fast path pays one branch, no registry
/// lookups.
#[derive(Debug)]
struct AnswerMetrics {
    /// `fbdr_replica_try_answer_ns` — end-to-end local answer latency.
    answer_ns: Arc<Histogram>,
    /// `fbdr_replica_index_build_ns` — incremental index maintenance time
    /// per applied action batch.
    index_build_ns: Arc<Histogram>,
    /// `fbdr_replica_plan_candidates` — candidate-set size the planner
    /// handed to residual verification (plan selectivity).
    plan_candidates: Arc<Histogram>,
    /// `fbdr_replica_plan_indexed_total` — answers served via an index plan.
    plan_indexed: Arc<Counter>,
    /// `fbdr_replica_plan_scan_total` — answers that fell back to scanning
    /// the stored filter's posting list.
    plan_scan: Arc<Counter>,
    /// `fbdr_replica_decision_cache_hit_total`.
    decision_hits: Arc<Counter>,
    /// `fbdr_replica_decision_cache_miss_total`.
    decision_misses: Arc<Counter>,
}

/// A filter-based replica: entries satisfying one or more stored LDAP
/// queries plus the meta information (search specifications) needed to
/// decide answerability by semantic containment.
///
/// Entries are stored once and shared between overlapping stored queries;
/// [`FilterReplica::entry_count`] is the replica-size metric of Figures
/// 4–7, and [`FilterReplica::stored_query_count`] the x-axis of Figures
/// 8–9.
///
/// # Concurrency
///
/// The replica is split read/write:
///
/// * **Readers** ([`try_answer`](FilterReplica::try_answer),
///   [`try_answer_composed`](FilterReplica::try_answer_composed)) take
///   `&self`, clone the current content-snapshot `Arc` (the `RwLock` is
///   held only for that pointer copy) and answer from their private
///   epoch. Statistics are relaxed atomics. Any number of threads may
///   query one replica concurrently without external locking.
/// * **Writers** (install/remove/sync/cache management) also take `&self`
///   but serialize on an internal mutex; they build a new snapshot off to
///   the side and publish it with a single pointer swap, so each sync
///   cycle's updates become visible atomically and readers never observe
///   a half-applied batch.
#[derive(Debug)]
pub struct FilterReplica {
    content: RwLock<Arc<ContentSnapshot>>,
    cache: QueryCache,
    cache_window: usize,
    engine: ContainmentEngine,
    stats: AtomicReplicaStats,
    writer: Mutex<WriterState>,
    decisions: Mutex<DecisionCache>,
    decision_hits: AtomicU64,
    decision_misses: AtomicU64,
    obs: Obs,
    metrics: Option<AnswerMetrics>,
}

impl FilterReplica {
    /// Creates a replica that caches up to `cache_window` recent user
    /// queries (0 disables query caching).
    pub fn new(cache_window: usize) -> Self {
        FilterReplica::with_obs(cache_window, Obs::off())
    }

    /// Creates an observed replica: hit counters become the registry's
    /// `fbdr_replica_*_total` metrics (one counter source — see
    /// [`AtomicReplicaStats::bound`]), every
    /// [`try_answer`](FilterReplica::try_answer) is timed into
    /// `fbdr_replica_try_answer_ns`, index maintenance is timed into
    /// `fbdr_replica_index_build_ns`, plan selectivity and decision-cache
    /// effectiveness are counted, the embedded [`ContainmentEngine`]
    /// records through the same handle, and QC hits/misses plus epoch
    /// publishes emit trace events when a subscriber is installed. With
    /// [`Obs::off`] this is identical to [`FilterReplica::new`].
    pub fn with_obs(cache_window: usize, obs: Obs) -> Self {
        let (stats, metrics) = if obs.is_active() {
            let reg = obs.registry();
            (
                AtomicReplicaStats::bound(reg),
                Some(AnswerMetrics {
                    answer_ns: reg.histogram("fbdr_replica_try_answer_ns"),
                    index_build_ns: reg.histogram("fbdr_replica_index_build_ns"),
                    plan_candidates: reg.histogram("fbdr_replica_plan_candidates"),
                    plan_indexed: reg.counter("fbdr_replica_plan_indexed_total"),
                    plan_scan: reg.counter("fbdr_replica_plan_scan_total"),
                    decision_hits: reg.counter("fbdr_replica_decision_cache_hit_total"),
                    decision_misses: reg.counter("fbdr_replica_decision_cache_miss_total"),
                }),
            )
        } else {
            (AtomicReplicaStats::new(), None)
        };
        FilterReplica {
            content: RwLock::new(Arc::new(ContentSnapshot::empty())),
            cache: QueryCache::default(),
            cache_window,
            engine: ContainmentEngine::with_obs(obs.clone()),
            stats,
            writer: Mutex::new(WriterState::default()),
            decisions: Mutex::new(DecisionCache::default()),
            decision_hits: AtomicU64::new(0),
            decision_misses: AtomicU64::new(0),
            obs,
            metrics,
        }
    }

    /// The observability handle this replica records through.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The current content snapshot (lock held only for the `Arc` clone).
    fn snapshot(&self) -> Arc<ContentSnapshot> {
        self.content.read().clone()
    }

    /// Publishes a new snapshot; the write lock is held only for the swap.
    fn publish(&self, snap: ContentSnapshot) {
        event!(
            self.obs,
            "replica",
            "epoch_publish",
            epoch = snap.epoch,
            filters = snap.filters.len(),
            entries = snap.live,
        );
        *self.content.write() = Arc::new(snap);
    }

    /// Number of distinct entries stored (replica size): filter-referenced
    /// entries plus cached-query entries not already covered by a filter.
    pub fn entry_count(&self) -> usize {
        let snap = self.snapshot();
        let mut extra: HashSet<&str> = HashSet::new();
        let cached = self.cache.view();
        for cq in &cached {
            for k in &cq.keys {
                if !snap.contains_key(k) {
                    extra.insert(k);
                }
            }
        }
        snap.live + extra.len()
    }

    /// Number of stored queries (generalized + cached) — the §7.4
    /// processing-overhead driver.
    pub fn stored_query_count(&self) -> usize {
        self.snapshot().filters.len() + self.cached_query_count()
    }

    /// Number of synchronized generalized filters.
    pub fn filter_count(&self) -> usize {
        self.snapshot().filters.len()
    }

    /// Number of cached user queries currently held.
    pub fn cached_query_count(&self) -> usize {
        self.cache.queries.lock().len()
    }

    /// Number of generalized filters currently marked stale (their last
    /// sync cycle could not reach the master).
    pub fn stale_filter_count(&self) -> usize {
        self.snapshot().filters.iter().filter(|s| s.stale).count()
    }

    /// The current content epoch: a monotonic generation number bumped by
    /// every published mutation (install, remove, sync cycle). All entries
    /// returned by one `try_answer` call come from a single epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Hit statistics (a point-in-time snapshot of the atomic counters).
    pub fn stats(&self) -> ReplicaStats {
        self.stats.snapshot()
    }

    /// Resets hit statistics (e.g. after the training day).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Containment-engine work counters (for §7.4).
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Containment decision-cache counters: probes answered without
    /// running the containment engine (`hits`) versus full checks
    /// (`misses`), plus the number of currently memoized decisions.
    pub fn decision_cache_stats(&self) -> DecisionCacheStats {
        DecisionCacheStats {
            hits: self.decision_hits.load(Ordering::Relaxed),
            misses: self.decision_misses.load(Ordering::Relaxed),
            entries: self.decisions.lock().map.len(),
        }
    }

    /// Drops all memoized containment decisions (the counters keep
    /// accumulating). Invalidation is otherwise automatic on every
    /// published epoch.
    pub fn clear_decision_cache(&self) {
        self.decisions.lock().map.clear();
    }

    /// The stored generalized filters with their accumulated hit counts.
    pub fn filters(&self) -> impl Iterator<Item = (SearchRequest, u64)> {
        self.snapshot()
            .filters
            .iter()
            .map(|s| (s.prepared.request().clone(), s.hits.load(Ordering::Relaxed)))
            .collect::<Vec<_>>()
            .into_iter()
    }

    // ------------------------------------------------------------------
    // Filter management (replica content determination, §6)
    // ------------------------------------------------------------------

    /// Installs a generalized filter: starts a ReSync session at the
    /// master and loads the initial content. Returns the load traffic.
    ///
    /// # Errors
    ///
    /// Propagates [`SyncError`] from the master.
    pub fn install_filter(
        &self,
        master: &mut SyncMaster,
        request: SearchRequest,
    ) -> Result<SyncTraffic, SyncError> {
        let mut w = self.writer.lock();
        let resp = master.resync(&request, ReSyncControl::poll(None))?;
        let traffic = resp.traffic();
        self.install_loaded(&mut w, request, resp.cookie, None, &resp.actions);
        Ok(traffic)
    }

    /// Installs a generalized filter in *persist* mode: the master streams
    /// change notifications over an open channel instead of waiting for
    /// polls; [`FilterReplica::drain_notifications`] applies whatever has
    /// arrived. This is the persistent-search-style strong(er) consistency
    /// option of §5.2, at the cost of one open connection per filter.
    ///
    /// # Errors
    ///
    /// Propagates [`SyncError`] from the master.
    pub fn install_filter_persistent(
        &self,
        master: &mut SyncMaster,
        request: SearchRequest,
    ) -> Result<SyncTraffic, SyncError> {
        let mut w = self.writer.lock();
        let (resp, rx) = master.resync_persist(&request, None)?;
        let traffic = resp.traffic();
        self.install_loaded(&mut w, request, resp.cookie, Some(rx), &resp.actions);
        Ok(traffic)
    }

    /// Shared install tail: builds the filter, applies the initial load
    /// and publishes the next epoch. Caller holds the writer lock.
    fn install_loaded(
        &self,
        w: &mut WriterState,
        request: SearchRequest,
        cookie: Option<Cookie>,
        notifications: Option<Receiver<NotifyBatch>>,
        actions: &[SyncAction],
    ) {
        let snap = self.snapshot();
        let mut work = Working::from_snapshot(&snap);
        let mut sf = StoredFilter {
            prepared: PreparedQuery::new(request),
            ids: Vec::new(),
            stale: false,
            hits: Arc::new(AtomicU64::new(0)),
        };
        self.timed_apply(&mut work, &mut w.refcount, &mut sf, actions);
        work.filters.push(Arc::new(sf));
        w.sessions.push(FilterSession { cookie, notifications, composite: None });
        self.publish(work.into_snapshot());
    }

    /// Applies every pending persist-mode notification across all
    /// persistent filters. Returns the traffic the notifications
    /// represent.
    ///
    /// A filter whose notification channel has disconnected (master
    /// restart, dropped connection) degrades to cookie-based polling: the
    /// channel is discarded, `poll_fallbacks` is incremented, and the
    /// next [`FilterReplica::sync`] picks the filter up incrementally via
    /// its cookie.
    pub fn drain_notifications(&self) -> SyncTraffic {
        let mut w = self.writer.lock();
        let WriterState { sessions, refcount } = &mut *w;
        let snap = self.snapshot();
        let mut work = Working::from_snapshot(&snap);
        let mut traffic = SyncTraffic::default();
        let mut changed = false;
        for (i, session) in sessions.iter_mut().enumerate() {
            let Some(rx) = &session.notifications else { continue };
            let mut pending: Vec<SyncAction> = Vec::new();
            let disconnected = loop {
                match rx.try_recv() {
                    Ok(b) => pending.extend(b.actions),
                    Err(TryRecvError::Empty) => break false,
                    Err(TryRecvError::Disconnected) => break true,
                }
            };
            if !pending.is_empty() {
                for a in &pending {
                    traffic.count(a);
                }
                let mut sf = (*work.filters[i]).clone();
                self.timed_apply(&mut work, refcount, &mut sf, &pending);
                work.filters[i] = Arc::new(sf);
                changed = true;
            }
            if disconnected {
                session.notifications = None;
                self.stats.record_poll_fallback();
                event!(self.obs, "replica", "poll_fallback", filter_index = i);
            }
        }
        if changed {
            self.publish(work.into_snapshot());
        }
        traffic
    }

    /// Removes a generalized filter (revolution eviction), ending its sync
    /// session and garbage-collecting entries no other stored query needs.
    /// Returns true if the filter was present.
    pub fn remove_filter(&self, master: &mut SyncMaster, request: &SearchRequest) -> bool {
        let mut w = self.writer.lock();
        let snap = self.snapshot();
        let Some(pos) = snap.filters.iter().position(|s| s.prepared.request() == request) else {
            return false;
        };
        let mut work = Working::from_snapshot(&snap);
        let removed = work.filters.remove(pos);
        let session = w.sessions.remove(pos);
        if let Some(c) = session.cookie {
            master.abandon(c);
        }
        for &id in &removed.ids {
            unref(&mut work, &mut w.refcount, id);
        }
        self.publish(work.into_snapshot());
        true
    }

    /// Polls the master for every synchronized filter and applies the
    /// updates. Returns the total resync traffic — component (i) of the
    /// filter replica's update traffic (§7.3).
    ///
    /// When the master has expired a session (its §5.2 admin time limit),
    /// the filter recovers automatically: a fresh session is established
    /// and the content reloaded from scratch (stale entries are dropped).
    ///
    /// The whole cycle publishes as **one** new epoch, so concurrent
    /// readers see either the pre-cycle or the post-cycle content, never
    /// a half-applied batch.
    ///
    /// # Errors
    ///
    /// Propagates other [`SyncError`]s; filters synced before the failure
    /// keep their updates (the partial cycle is published before the error
    /// returns).
    pub fn sync(&self, master: &mut SyncMaster) -> Result<SyncTraffic, SyncError> {
        let mut w = self.writer.lock();
        let WriterState { sessions, refcount } = &mut *w;
        let snap = self.snapshot();
        let mut work = Working::from_snapshot(&snap);
        let mut total = SyncTraffic::default();
        let mut failed: Option<SyncError> = None;
        for i in 0..work.filters.len() {
            let request = work.filters[i].prepared.request().clone();
            let session = &mut sessions[i];
            let resp = match master.resync(&request, ReSyncControl::poll(session.cookie)) {
                Ok(resp) => resp,
                Err(e) if e.needs_reinstall() => {
                    // Session expired at the master (its §5.2 admin time
                    // limit) or a lost batch is past replay: start over
                    // with a full reload of this filter's content. (The
                    // driver-based `sync_with` tries the cheaper
                    // reconciliation rung first.)
                    if matches!(e, SyncError::ReplayExpired { .. }) {
                        // The session still exists at the master.
                        if let Some(c) = session.cookie {
                            master.abandon(c);
                        }
                    }
                    match master.resync(&request, ReSyncControl::poll(None)) {
                        Ok(resp) => {
                            drop_filter_content(&mut work, refcount, i);
                            resp
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            };
            session.cookie = resp.cookie;
            total.absorb(&resp.traffic());
            let mut sf = (*work.filters[i]).clone();
            sf.stale = false;
            self.timed_apply(&mut work, refcount, &mut sf, &resp.actions);
            work.filters[i] = Arc::new(sf);
        }
        self.publish(work.into_snapshot());
        match failed {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    /// Polls the master through a retrying [`SyncDriver`], degrading
    /// gracefully where the plain [`FilterReplica::sync`] would give up:
    ///
    /// - a transient failure that exhausts the driver's retry/time budget
    ///   marks the filter **stale** and moves on — the content keeps being
    ///   served (availability over freshness; hits are counted in
    ///   [`ReplicaStats::stale_serves`]) and the next cycle retries;
    /// - an unrecoverable session error (expired cookie, replay past its
    ///   window) first attempts a **reconciliation** exchange
    ///   (`fbdr_resync::reconcile`): the replica digests its held items
    ///   and receives only what actually diverged, re-establishing a live
    ///   cookie at divergence-proportional cost. Reconciliation is skipped
    ///   when the estimated divergence exceeds the driver's
    ///   [`ReconcileConfig::divergence_budget`](fbdr_resync::ReconcileConfig)
    ///   and falls back to a full reinstall when the exchange fails;
    /// - the reinstall itself runs through the driver, so even the reload
    ///   is retried on transient failures;
    /// - everything else propagates as in [`FilterReplica::sync`].
    ///
    /// Returns the total resync traffic of the cycle. Like `sync`, the
    /// cycle publishes one new epoch; readers keep answering from the
    /// previous epoch while it runs.
    ///
    /// # Errors
    ///
    /// Non-transient, non-session [`SyncError`]s only; transport outages
    /// never fail the cycle.
    pub fn sync_with<C: Clock>(
        &self,
        transport: &mut dyn SyncTransport,
        driver: &mut SyncDriver<C>,
    ) -> Result<SyncTraffic, SyncError> {
        let mut w = self.writer.lock();
        let WriterState { sessions, refcount } = &mut *w;
        let snap = self.snapshot();
        let mut work = Working::from_snapshot(&snap);
        let mut total = SyncTraffic::default();
        let mut failed: Option<SyncError> = None;
        for i in 0..work.filters.len() {
            let request = work.filters[i].prepared.request().clone();
            let session = &mut sessions[i];
            let resp = match driver.resync(transport, &request, ReSyncControl::poll(session.cookie))
            {
                Ok(resp) => resp,
                Err(e) if e.is_transient() => {
                    // Budget exhausted: serve what we have until the next
                    // cycle rather than failing the whole replica.
                    Arc::make_mut(&mut work.filters[i]).stale = true;
                    event!(self.obs, "replica", "filter_stale", filter_index = i, reason = "sync");
                    continue;
                }
                Err(e) if e.needs_reinstall() => {
                    if matches!(e, SyncError::ReplayExpired { .. }) {
                        if let Some(c) = session.cookie {
                            transport.abandon(c);
                        }
                    }
                    // Rung 2 of the ladder: reconcile — re-establish the
                    // session at divergence-proportional cost instead of
                    // re-shipping the whole content.
                    let est = e.estimated_divergence();
                    event!(
                        self.obs,
                        "replica",
                        "session_lost",
                        filter_index = i,
                        divergence_known = est.is_some(),
                        divergence = est.unwrap_or(0),
                    );
                    let budget = driver.reconcile_config().divergence_budget;
                    if est.is_some_and(|d| d > budget) {
                        driver.note_reconcile_fallback("divergence over budget");
                    } else {
                        let held = &work.filters[i].ids;
                        let items: Vec<ReconcileItem> = held
                            .iter()
                            .filter_map(|&id| {
                                let e = work.entries.get(id as usize)?.as_deref()?;
                                Some(ReconcileItem { hash: entry_item_hash(e), id })
                            })
                            .collect();
                        let resolve = |key: &str| {
                            work.interner
                                .get(key)
                                .filter(|id| work.filters[i].ids.binary_search(id).is_ok())
                        };
                        match driver.reconcile(transport, &request, &items, &resolve) {
                            Ok(outcome) => {
                                session.cookie = Some(outcome.cookie);
                                total.absorb(&outcome.traffic());
                                // Deletes BEFORE upserts: a modify caught
                                // as a round-two false positive arrives as
                                // a delete of the stale version plus an
                                // add of the current one.
                                let mut actions: Vec<SyncAction> = Vec::with_capacity(
                                    outcome.delete_ids.len() + outcome.upserts.len(),
                                );
                                for &id in &outcome.delete_ids {
                                    if let Some(e) =
                                        work.entries.get(id as usize).and_then(|s| s.as_deref())
                                    {
                                        actions.push(SyncAction::Delete(e.dn().clone()));
                                    }
                                }
                                actions.extend(outcome.upserts.into_iter().map(SyncAction::Add));
                                let mut sf = (*work.filters[i]).clone();
                                sf.stale = false;
                                self.timed_apply(&mut work, refcount, &mut sf, &actions);
                                work.filters[i] = Arc::new(sf);
                                continue;
                            }
                            Err(e) if e.is_transient() => {
                                // The exchange could not get through; the
                                // old content is still the best answer.
                                Arc::make_mut(&mut work.filters[i]).stale = true;
                                event!(
                                    self.obs,
                                    "replica",
                                    "filter_stale",
                                    filter_index = i,
                                    reason = "reconcile",
                                );
                                continue;
                            }
                            Err(_) => {
                                driver.note_reconcile_fallback("reconcile exchange failed");
                            }
                        }
                    }
                    // Rung 3: full reinstall.
                    driver.note_reinstall();
                    match driver.resync(transport, &request, ReSyncControl::poll(None)) {
                        Ok(resp) => {
                            drop_filter_content(&mut work, refcount, i);
                            resp
                        }
                        Err(e) if e.is_transient() => {
                            // Even the reinstall could not get through;
                            // the old content is still the best answer.
                            Arc::make_mut(&mut work.filters[i]).stale = true;
                            event!(
                                self.obs,
                                "replica",
                                "filter_stale",
                                filter_index = i,
                                reason = "reinstall",
                            );
                            continue;
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            };
            session.cookie = resp.cookie;
            total.absorb(&resp.traffic());
            let mut sf = (*work.filters[i]).clone();
            sf.stale = false;
            self.timed_apply(&mut work, refcount, &mut sf, &resp.actions);
            work.filters[i] = Arc::new(sf);
        }
        self.publish(work.into_snapshot());
        match failed {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    /// Installs a generalized filter against a **sharded** master: the
    /// coordinator splits the filter's base/scope across the shards it
    /// overlaps, establishes one ReSync session per shard, and the merged
    /// per-shard cookies are kept as a [`CompositeCookie`] for
    /// [`FilterReplica::sync_with_sharded`] cycles. Returns the load
    /// traffic.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SyncError`] any shard produced
    /// (all-or-nothing: partial sessions are abandoned).
    pub fn install_filter_sharded<C: Clock>(
        &self,
        transport: &mut dyn SyncTransport,
        coordinator: &mut ShardCoordinator<C>,
        request: SearchRequest,
    ) -> Result<SyncTraffic, SyncError> {
        let mut w = self.writer.lock();
        let (actions, cookie, traffic) = coordinator.install(transport, &request)?;
        self.install_loaded(&mut w, request, None, None, &actions);
        w.sessions.last_mut().expect("install_loaded pushed a session").composite = Some(cookie);
        Ok(traffic)
    }

    /// One sync cycle against a sharded master: every stored filter polls
    /// each shard it overlaps **independently** through the coordinator's
    /// per-shard retry/reconcile/reinstall ladders, so a slow or
    /// partitioned shard degrades only its own slice to stale while the
    /// other shards' updates land. A filter with any stale or failed
    /// shard is marked stale as a whole (its answers may miss that
    /// shard's updates) but keeps serving.
    ///
    /// Filters installed via the unsharded paths are polled through the
    /// plain transport legs, exactly as [`FilterReplica::sync_with`]
    /// would, so mixed deployments can share one cycle. Publishes one
    /// epoch.
    ///
    /// # Errors
    ///
    /// The first hard (non-transient, non-session) [`SyncError`] any
    /// shard produced, after the cycle's partial progress is published.
    pub fn sync_with_sharded<C: Clock>(
        &self,
        transport: &mut dyn SyncTransport,
        coordinator: &mut ShardCoordinator<C>,
    ) -> Result<SyncTraffic, SyncError> {
        let mut w = self.writer.lock();
        let WriterState { sessions, refcount } = &mut *w;
        let snap = self.snapshot();
        let mut work = Working::from_snapshot(&snap);
        let mut total = SyncTraffic::default();
        let mut failed: Option<SyncError> = None;
        let map = coordinator.map().clone();
        for i in 0..work.filters.len() {
            let request = work.filters[i].prepared.request().clone();
            let session = &mut sessions[i];
            let Some(mut composite) = session.composite.take() else {
                // Not a sharded filter; nothing to coordinate this cycle.
                continue;
            };
            let outcomes = {
                let content = WorkingShardContent { work: &work, filter: i, map: &map };
                coordinator.sync_filter(transport, &request, &mut composite, &content)
            };
            session.composite = Some(composite);
            let mut fresh = true;
            let mut actions: Vec<SyncAction> = Vec::new();
            for out in outcomes {
                total.absorb(&out.traffic);
                actions.extend(out.actions);
                match out.status {
                    ShardStatus::Stale => {
                        fresh = false;
                        event!(
                            self.obs,
                            "replica",
                            "shard_stale",
                            filter_index = i,
                            shard = out.shard.index(),
                        );
                    }
                    ShardStatus::Failed(e) => {
                        fresh = false;
                        event!(
                            self.obs,
                            "replica",
                            "shard_failed",
                            filter_index = i,
                            shard = out.shard.index(),
                        );
                        if failed.is_none() {
                            failed = Some(e);
                        }
                    }
                    _ => {}
                }
            }
            let mut sf = (*work.filters[i]).clone();
            sf.stale = !fresh;
            self.timed_apply(&mut work, refcount, &mut sf, &actions);
            work.filters[i] = Arc::new(sf);
        }
        self.publish(work.into_snapshot());
        match failed {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    /// Polls the master for a *single* stored filter, leaving the others
    /// untouched. This is what lets a deployment give different object
    /// types different consistency levels (§3.2): hot, volatile filters
    /// can poll frequently while stable ones poll rarely — something a
    /// subtree replica cannot do, since one subtree mixes object types.
    ///
    /// Returns `Ok(None)` when `request` is not a stored filter.
    ///
    /// # Errors
    ///
    /// Propagates [`SyncError`] from the master; on error nothing is
    /// published (the previous epoch stays current).
    pub fn sync_filter(
        &self,
        master: &mut SyncMaster,
        request: &SearchRequest,
    ) -> Result<Option<SyncTraffic>, SyncError> {
        let mut w = self.writer.lock();
        let snap = self.snapshot();
        let Some(pos) = snap.filters.iter().position(|s| s.prepared.request() == request) else {
            return Ok(None);
        };
        let resp = master.resync(request, ReSyncControl::poll(w.sessions[pos].cookie))?;
        w.sessions[pos].cookie = resp.cookie;
        let traffic = resp.traffic();
        let mut work = Working::from_snapshot(&snap);
        let mut sf = (*work.filters[pos]).clone();
        sf.stale = false;
        self.timed_apply(&mut work, &mut w.refcount, &mut sf, &resp.actions);
        work.filters[pos] = Arc::new(sf);
        self.publish(work.into_snapshot());
        Ok(Some(traffic))
    }

    /// Caches a recently performed user query and its result (fetched from
    /// the master after a miss). Evicts the oldest cached query beyond the
    /// window. Cached queries are not synchronized: the result set is
    /// frozen at cache time (§7.4).
    pub fn cache_query(&self, request: SearchRequest, result: &[Entry]) {
        if self.cache_window == 0 {
            return;
        }
        let cq = Arc::new(CachedQuery {
            prepared: PreparedQuery::new(request),
            keys: result.iter().map(entry_key).collect(),
            entries: result.to_vec(),
            hits: AtomicU64::new(0),
        });
        let mut q = self.cache.queries.lock();
        q.push_back(cq);
        while q.len() > self.cache_window {
            q.pop_front();
        }
    }

    /// Drops all cached user queries.
    pub fn clear_query_cache(&self) {
        self.cache.queries.lock().clear();
    }

    /// Applies an action batch to the working content, timing the
    /// incremental index maintenance when the replica is observed.
    fn timed_apply(
        &self,
        work: &mut Working,
        refcount: &mut HashMap<u32, usize>,
        sf: &mut StoredFilter,
        actions: &[SyncAction],
    ) {
        if actions.is_empty() {
            return;
        }
        let start = self.metrics.as_ref().map(|_| Instant::now());
        apply_actions(work, refcount, sf, actions);
        if let (Some(m), Some(t)) = (&self.metrics, start) {
            m.index_build_ns.record_since(t);
        }
    }

    // ------------------------------------------------------------------
    // Query answering
    // ------------------------------------------------------------------

    /// Tries to answer a query locally: the query must be semantically
    /// contained (`QC`) in some stored query. Returns the locally
    /// evaluated entries on a hit, `None` (→ referral) on a miss.
    ///
    /// Takes `&self` and is safe to call from any number of threads
    /// concurrently with each other and with a writer running a sync
    /// cycle: the answer is computed against one consistent content epoch.
    ///
    /// ```
    /// use fbdr_ldap::{Entry, Filter, SearchRequest};
    /// use fbdr_replica::FilterReplica;
    /// use fbdr_resync::SyncMaster;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut master = SyncMaster::new();
    /// master.dit_mut().add_suffix("o=xyz".parse()?);
    /// master.dit_mut().add(Entry::new("o=xyz".parse()?))?;
    /// master.dit_mut().add(
    ///     Entry::new("cn=a,o=xyz".parse()?).with("serialNumber", "045612"),
    /// )?;
    ///
    /// let replica = FilterReplica::new(0);
    /// replica.install_filter(
    ///     &mut master,
    ///     SearchRequest::from_root(Filter::parse("(serialNumber=0456*)")?),
    /// )?;
    ///
    /// // Contained in the stored filter → answered locally.
    /// let hit = SearchRequest::from_root(Filter::parse("(serialNumber=045612)")?);
    /// assert_eq!(replica.try_answer(&hit).unwrap().len(), 1);
    /// // Not contained → miss (the caller would chase a referral).
    /// let miss = SearchRequest::from_root(Filter::parse("(serialNumber=9*)")?);
    /// assert!(replica.try_answer(&miss).is_none());
    /// assert_eq!(replica.stats().hits, 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn try_answer(&self, query: &SearchRequest) -> Option<Vec<Entry>> {
        let start = self.metrics.as_ref().map(|_| Instant::now());
        self.stats.record_query();
        let prepared = PreparedQuery::new(query.clone());
        let snap = self.snapshot();
        let out = self.answer_prepared(query, &prepared, &snap);
        if let (Some(m), Some(t)) = (&self.metrics, start) {
            m.answer_ns.record_since(t);
        }
        out
    }

    /// The answer path proper, against an already-prepared query and an
    /// already-read snapshot (so composed answering reuses both).
    fn answer_prepared(
        &self,
        query: &SearchRequest,
        prepared: &PreparedQuery,
        snap: &ContentSnapshot,
    ) -> Option<Vec<Entry>> {
        // Generalized filters first (they are authoritative and synced).
        // The containment decision is memoized per epoch: a repeat of a
        // recently seen query skips the engine entirely.
        let qkey = query_key(query);
        let decision = match self.cached_decision(snap.epoch, &qkey) {
            Some(d) => d,
            None => {
                let d = snap
                    .filters
                    .iter()
                    .position(|sf| self.engine.query_contained(prepared, &sf.prepared));
                self.remember_decision(snap.epoch, qkey, d);
                d
            }
        };
        if let Some(pos) = decision {
            let sf = &snap.filters[pos];
            sf.hits.fetch_add(1, Ordering::Relaxed);
            self.stats.record_generalized_hit(sf.stale);
            event!(
                self.obs,
                "replica",
                "qc_hit",
                kind = "generalized",
                stale = sf.stale,
                epoch = snap.epoch,
            );
            return Some(self.evaluate_indexed(snap, query, &sf.ids));
        }
        for cq in self.cache.view() {
            if self.engine.query_contained(prepared, &cq.prepared) {
                cq.hits.fetch_add(1, Ordering::Relaxed);
                self.stats.record_cache_hit();
                event!(self.obs, "replica", "qc_hit", kind = "cached", epoch = snap.epoch);
                return Some(evaluate_cached(query, &cq.entries));
            }
        }
        event!(
            self.obs,
            "replica",
            "qc_miss",
            epoch = snap.epoch,
            filters = snap.filters.len(),
        );
        None
    }

    /// Probes the decision cache; a probe against a newer epoch clears the
    /// stale memo first.
    fn cached_decision(&self, epoch: u64, key: &str) -> Option<Option<usize>> {
        let mut dc = self.decisions.lock();
        if dc.epoch != epoch {
            dc.epoch = epoch;
            dc.map.clear();
        }
        let found = dc.map.get(key).copied();
        drop(dc);
        match (&found, &self.metrics) {
            (Some(_), Some(m)) => m.decision_hits.inc(),
            (None, Some(m)) => m.decision_misses.inc(),
            _ => {}
        }
        match found {
            Some(_) => self.decision_hits.fetch_add(1, Ordering::Relaxed),
            None => self.decision_misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Memoizes a containment decision, unless a publish raced in between
    /// (the decision would poison the newer epoch).
    fn remember_decision(&self, epoch: u64, key: String, decision: Option<usize>) {
        let mut dc = self.decisions.lock();
        if dc.epoch != epoch {
            return;
        }
        if dc.map.len() >= DECISION_CACHE_CAP {
            dc.map.clear();
        }
        dc.map.insert(key, decision);
    }

    /// Evaluates a query restricted to one stored filter's posting list,
    /// through the snapshot index: the filter is compiled to a candidate
    /// plan, intersected (galloping) with the filter's list, and only the
    /// surviving candidates are verified against the full query. Falls
    /// back to scanning the posting list when the filter is unplannable.
    fn evaluate_indexed(
        &self,
        snap: &ContentSnapshot,
        query: &SearchRequest,
        ids: &[u32],
    ) -> Vec<Entry> {
        let cands: Cow<'_, [u32]> = match snap.index.plan(query.filter()) {
            Some(plan) => {
                let sel = posting::intersect(&plan, ids);
                if let Some(m) = &self.metrics {
                    m.plan_indexed.inc();
                    m.plan_candidates.record(sel.len() as u64);
                }
                Cow::Owned(sel)
            }
            None => {
                if let Some(m) = &self.metrics {
                    m.plan_scan.inc();
                    m.plan_candidates.record(ids.len() as u64);
                }
                Cow::Borrowed(ids)
            }
        };
        collect_matching(snap, query, &cands)
    }

    /// Answers a query by brute-force scan, bypassing the index plan and
    /// the decision cache — the reference evaluator the indexed path is
    /// benchmarked and property-tested against. Runs the same containment
    /// gate as [`try_answer`](FilterReplica::try_answer) but records no
    /// replica statistics and no hit counts.
    pub fn try_answer_scan(&self, query: &SearchRequest) -> Option<Vec<Entry>> {
        let prepared = PreparedQuery::new(query.clone());
        let snap = self.snapshot();
        for sf in &snap.filters {
            if self.engine.query_contained(&prepared, &sf.prepared) {
                return Some(collect_matching(&snap, query, &sf.ids));
            }
        }
        None
    }

    /// Tries to answer a query from the **union** of stored generalized
    /// filters — an extension beyond the paper, which only checks
    /// containment in a single stored query (§3.4.2). A query like
    /// `(|(serialNumber=0456*)(serialNumber=0457*))` is answerable when
    /// each branch is covered by a different stored filter.
    ///
    /// The check is sound: the query region must lie inside every
    /// contributing filter's region, and the query filter must be
    /// contained (general Prop 1 procedure) in the disjunction of the
    /// contributing filters. Returns `None` on a miss; does not consult
    /// the query cache. Statistics count this as a generalized hit.
    ///
    /// Like [`try_answer`](FilterReplica::try_answer) this takes `&self`;
    /// the query is prepared once and the whole attempt — single-filter
    /// containment and union composition — runs against a single epoch
    /// read.
    pub fn try_answer_composed(&self, query: &SearchRequest) -> Option<Vec<Entry>> {
        let start = self.metrics.as_ref().map(|_| Instant::now());
        self.stats.record_query();
        let prepared = PreparedQuery::new(query.clone());
        let snap = self.snapshot();
        let out = self.answer_composed_prepared(query, &prepared, &snap);
        if let (Some(m), Some(t)) = (&self.metrics, start) {
            m.answer_ns.record_since(t);
        }
        out
    }

    fn answer_composed_prepared(
        &self,
        query: &SearchRequest,
        prepared: &PreparedQuery,
        snap: &ContentSnapshot,
    ) -> Option<Vec<Entry>> {
        if let Some(hit) = self.answer_prepared(query, prepared, snap) {
            return Some(hit);
        }
        // Candidates: stored filters whose region and attribute selection
        // cover the query's (the filter part is checked on the union).
        let candidates: Vec<&Arc<StoredFilter>> = snap
            .filters
            .iter()
            .filter(|sf| {
                let s = sf.prepared.request();
                fbdr_containment::region_contained(
                    query.base(),
                    query.scope(),
                    s.base(),
                    s.scope(),
                ) && query.attrs().is_subset_of(s.attrs())
            })
            .collect();
        if candidates.len() < 2 {
            return None; // single-filter containment already failed above
        }
        let union = fbdr_ldap::Filter::or(
            candidates.iter().map(|sf| sf.prepared.request().filter().clone()).collect(),
        );
        if fbdr_containment::filter_contained(query.filter(), &union)
            != fbdr_containment::Containment::Yes
        {
            return None;
        }
        // The answer_prepared call above already counted this query (as a
        // miss); composition converts it into a hit.
        self.stats.record_generalized_hit(false);
        let mut lists: Vec<&[u32]> = Vec::with_capacity(candidates.len());
        for sf in &candidates {
            sf.hits.fetch_add(1, Ordering::Relaxed);
            lists.push(&sf.ids);
        }
        let ids = posting::union_many(lists);
        Some(self.evaluate_indexed(snap, query, &ids))
    }
}

/// Verifies a candidate id list against the full query, sorts the
/// survivors by DN (deterministic output order) and projects the selected
/// attributes — projection runs only on entries that made the answer.
fn collect_matching(snap: &ContentSnapshot, query: &SearchRequest, ids: &[u32]) -> Vec<Entry> {
    let mut hits: Vec<&Entry> = ids
        .iter()
        .filter_map(|&id| snap.entry(id))
        .filter(|e| query.matches(e))
        .collect();
    hits.sort_by(|a, b| a.dn().cmp(b.dn()));
    hits.into_iter().map(|e| query.attrs().project(e)).collect()
}

/// Evaluates a query over a cached query's frozen result set.
fn evaluate_cached(query: &SearchRequest, entries: &[Entry]) -> Vec<Entry> {
    let mut out: Vec<Entry> = entries
        .iter()
        .filter(|e| query.matches(e))
        .map(|e| query.attrs().project(e))
        .collect();
    out.sort_by(|a, b| a.dn().cmp(b.dn()));
    out
}

/// A collision-free memo key for the decision cache: the query's region,
/// selection and canonical filter text. The filter printer escapes
/// `( ) * \` in values, so distinct queries cannot collide (a collision
/// would unsoundly reuse another query's containment decision).
fn query_key(query: &SearchRequest) -> String {
    format!(
        "{}\u{1f}{:?}\u{1f}{}\u{1f}{:?}",
        dn_key(query.base()),
        query.scope(),
        query.filter(),
        query.attrs(),
    )
}

/// Applies one batch of sync actions to the working content: the filter's
/// posting list, the shared id-addressed entry store, the snapshot index
/// and the refcounts.
fn apply_actions(
    work: &mut Working,
    refcount: &mut HashMap<u32, usize>,
    sf: &mut StoredFilter,
    actions: &[SyncAction],
) {
    for a in actions {
        match a {
            SyncAction::Add(e) | SyncAction::Modify(e) => {
                let id = work.intern(&entry_key(e));
                if posting::insert_sorted(&mut sf.ids, id) {
                    *refcount.entry(id).or_insert(0) += 1;
                }
                work.store(id, e.clone());
            }
            SyncAction::Delete(dn) => {
                if let Some(id) = work.interner.get(&dn_key(dn)) {
                    if posting::remove_sorted(&mut sf.ids, id) {
                        unref(work, refcount, id);
                    }
                }
            }
            SyncAction::Retain(_) => {}
        }
    }
}

/// Drops every id a filter references (full-reload preparation),
/// garbage-collecting entries no other filter needs.
fn drop_filter_content(work: &mut Working, refcount: &mut HashMap<u32, usize>, pos: usize) {
    let mut sf = (*work.filters[pos]).clone();
    for id in std::mem::take(&mut sf.ids) {
        unref(work, refcount, id);
    }
    work.filters[pos] = Arc::new(sf);
}

/// Drops one filter reference to an entry id, garbage-collecting the
/// entry (slot + index postings) when no filter references remain.
///
/// The id itself is recycled at that point: no filter posting list holds
/// it (refcount is zero), the slot was just emptied and the index
/// unindexed, so the interner slot is released for reuse and the
/// replica's id space — and every id-addressed vector built on it —
/// stops growing with lifetime churn. Earlier epochs are untouched: they
/// share the *previous* interner `Arc`, and the release copies on write.
fn unref(work: &mut Working, refcount: &mut HashMap<u32, usize>, id: u32) {
    if let Some(rc) = refcount.get_mut(&id) {
        *rc -= 1;
        if *rc == 0 {
            refcount.remove(&id);
            work.evict(id);
            Arc::make_mut(&mut work.interner).release(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_dit::{Modification, UpdateOp};
    use fbdr_ldap::{Dn, Filter, Scope};

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn person(cn: &str, c: &str, sn: &str, dept: &str) -> Entry {
        Entry::new(dn(&format!("cn={cn},c={c},o=xyz")))
            .with("objectclass", "inetOrgPerson")
            .with("cn", cn)
            .with("serialNumber", sn)
            .with("departmentNumber", dept)
    }

    fn master() -> SyncMaster {
        let mut m = SyncMaster::new();
        m.dit_mut().add_suffix(dn("o=xyz"));
        m.dit_mut().add(Entry::new(dn("o=xyz"))).unwrap();
        for c in ["us", "in"] {
            m.dit_mut().add(Entry::new(dn(&format!("c={c},o=xyz")))).unwrap();
        }
        for (cn, c, sn, dept) in [
            ("a", "us", "045611", "2406"),
            ("b", "us", "045612", "2406"),
            ("c", "in", "045621", "2407"),
            ("d", "in", "120001", "9900"),
        ] {
            m.dit_mut().add(person(cn, c, sn, dept)).unwrap();
        }
        m
    }

    fn root_query(f: &str) -> SearchRequest {
        SearchRequest::from_root(Filter::parse(f).unwrap())
    }

    fn sub_query(base: &str, f: &str) -> SearchRequest {
        SearchRequest::new(dn(base), Scope::Subtree, Filter::parse(f).unwrap())
    }

    #[test]
    fn install_filter_loads_content() {
        let mut m = master();
        let r = FilterReplica::new(0);
        let t = r
            .install_filter(&mut m, root_query("(serialNumber=0456*)"))
            .unwrap();
        assert_eq!(t.full_entries, 3);
        assert_eq!(r.entry_count(), 3);
        assert_eq!(r.filter_count(), 1);
        assert_eq!(r.epoch(), 1);
    }

    #[test]
    fn answers_contained_queries_spanning_subtrees() {
        // §3.1.2: semantic locality is not spatial — the 0456* filter
        // answers queries for entries in different country subtrees.
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();

        let q_us = root_query("(serialNumber=045611)");
        let hit = r.try_answer(&q_us).expect("hit");
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].dn(), &dn("cn=a,c=us,o=xyz"));

        let q_in = root_query("(serialNumber=045621)");
        let hit = r.try_answer(&q_in).expect("hit across subtrees");
        assert_eq!(hit[0].dn(), &dn("cn=c,c=in,o=xyz"));

        assert!(r.try_answer(&root_query("(serialNumber=120001)")).is_none());
        assert_eq!(r.stats().queries, 3);
        assert_eq!(r.stats().hits, 2);
        assert_eq!(r.stats().generalized_hits, 2);
    }

    #[test]
    fn null_based_queries_answerable() {
        // §3.1.1: filter replicas can replicate null-based queries.
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(departmentNumber=240*)")).unwrap();
        assert!(r.try_answer(&root_query("(departmentNumber=2406)")).is_some());
        // Narrower base still contained.
        assert!(r
            .try_answer(&sub_query("c=us,o=xyz", "(departmentNumber=2406)"))
            .is_some());
    }

    #[test]
    fn narrower_base_filters_results_by_scope() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        let q = sub_query("c=in,o=xyz", "(serialNumber=0456*)");
        let hit = r.try_answer(&q).expect("hit");
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].dn(), &dn("cn=c,c=in,o=xyz"));
    }

    #[test]
    fn sync_propagates_updates() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(departmentNumber=2406)")).unwrap();
        assert_eq!(r.entry_count(), 2);

        // d moves into the content, a moves out.
        m.apply(UpdateOp::Modify {
            dn: dn("cn=d,c=in,o=xyz"),
            mods: vec![Modification::Replace("departmentNumber".into(), vec!["2406".into()])],
        })
        .unwrap();
        m.apply(UpdateOp::Modify {
            dn: dn("cn=a,c=us,o=xyz"),
            mods: vec![Modification::Replace("departmentNumber".into(), vec!["2409".into()])],
        })
        .unwrap();
        let epoch_before = r.epoch();
        let t = r.sync(&mut m).unwrap();
        assert_eq!(t.full_entries, 1);
        assert_eq!(t.dn_only, 1);
        assert_eq!(r.entry_count(), 2);
        assert_eq!(r.epoch(), epoch_before + 1, "one cycle = one epoch");
        let hit = r.try_answer(&root_query("(departmentNumber=2406)")).unwrap();
        let dns: Vec<String> = hit.iter().map(|e| e.dn().to_string()).collect();
        assert_eq!(dns, ["cn=b,c=us,o=xyz", "cn=d,c=in,o=xyz"]);
    }

    #[test]
    fn overlapping_filters_share_entries() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        r.install_filter(&mut m, root_query("(departmentNumber=2406)")).unwrap();
        // a and b are in both contents; c only in the serial filter.
        assert_eq!(r.entry_count(), 3);
        // Removing one filter keeps shared entries alive.
        let serial = root_query("(serialNumber=0456*)");
        assert!(r.remove_filter(&mut m, &serial));
        assert_eq!(r.filter_count(), 1);
        assert_eq!(r.entry_count(), 2); // c garbage-collected
        assert!(r.try_answer(&root_query("(serialNumber=045611)")).is_none());
        assert!(r.try_answer(&root_query("(departmentNumber=2406)")).is_some());
    }

    #[test]
    fn query_cache_window_and_eviction() {
        let m = master();
        let r = FilterReplica::new(2);
        // Miss path: caller fetches from master and caches.
        let q1 = root_query("(serialNumber=045611)");
        assert!(r.try_answer(&q1).is_none());
        let res1 = m.dit().search(&q1);
        r.cache_query(q1.clone(), &res1);
        assert_eq!(r.cached_query_count(), 1);
        // Repeat of q1 now hits the cache.
        assert!(r.try_answer(&q1).is_some());
        assert_eq!(r.stats().cache_hits, 1);

        // Two more cached queries evict q1 (window = 2).
        for f in ["(serialNumber=045612)", "(serialNumber=120001)"] {
            let q = root_query(f);
            let res = m.dit().search(&q);
            r.cache_query(q, &res);
        }
        assert_eq!(r.cached_query_count(), 2);
        assert!(r.try_answer(&q1).is_none(), "q1 should be evicted");
    }

    #[test]
    fn clear_query_cache_drops_entries() {
        let m = master();
        let r = FilterReplica::new(4);
        let q = root_query("(serialNumber=045611)");
        let res = m.dit().search(&q);
        r.cache_query(q, &res);
        assert_eq!(r.entry_count(), 1);
        r.clear_query_cache();
        assert_eq!(r.entry_count(), 0);
        assert_eq!(r.cached_query_count(), 0);
    }

    #[test]
    fn composed_answering_covers_unions() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        r.install_filter(&mut m, root_query("(serialNumber=12*)")).unwrap();

        // Neither stored filter alone contains this disjunction, but
        // their union does.
        let q = root_query("(|(serialNumber=045612)(serialNumber=120001))");
        assert!(r.try_answer(&q).is_none(), "single-filter containment must miss");
        let hit = r.try_answer_composed(&q).expect("union containment hits");
        let dns: Vec<String> = hit.iter().map(|e| e.dn().to_string()).collect();
        assert_eq!(dns, ["cn=b,c=us,o=xyz", "cn=d,c=in,o=xyz"]);
        assert_eq!(r.stats().generalized_hits, 1);
        // The explicit try_answer above plus the composed call count two
        // query attempts; the composed hit is counted exactly once.
        assert_eq!(r.stats().queries, 2);
        assert_eq!(r.stats().hits, 1);

        // A disjunct outside both filters stays a miss.
        let q = root_query("(|(serialNumber=045612)(serialNumber=999999))");
        assert!(r.try_answer_composed(&q).is_none());
    }

    #[test]
    fn attribute_projection_on_answers() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        let q = SearchRequest::with_attrs(
            Dn::root(),
            Scope::Subtree,
            Filter::parse("(serialNumber=045611)").unwrap(),
            fbdr_ldap::AttrSelection::list(["cn"]),
        );
        let hit = r.try_answer(&q).expect("hit");
        assert!(hit[0].has_attr(&"cn".into()));
        assert!(!hit[0].has_attr(&"serialNumber".into()));
    }

    #[test]
    fn sync_recovers_from_expired_session() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        assert_eq!(r.entry_count(), 3);

        // Changes happen, then the master expires all idle sessions.
        m.apply(UpdateOp::Modify {
            dn: dn("cn=a,c=us,o=xyz"),
            mods: vec![Modification::Replace("serialNumber".into(), vec!["999999".into()])],
        })
        .unwrap();
        m.apply(UpdateOp::Add(person("e", "us", "045650", "2406"))).unwrap();
        assert_eq!(m.expire_idle(0), 1);

        // The poll recovers via a fresh full load; content converges.
        let t = r.sync(&mut m).unwrap();
        assert_eq!(t.full_entries, 3, "full reload of the filter content");
        assert_eq!(r.entry_count(), 3);
        let hit = r.try_answer(&root_query("(serialNumber=0456*)")).unwrap();
        let dns: Vec<String> = hit.iter().map(|e| e.dn().to_string()).collect();
        assert_eq!(dns, ["cn=b,c=us,o=xyz", "cn=c,c=in,o=xyz", "cn=e,c=us,o=xyz"]);
        // The stale entry (a, now 999999) is gone.
        assert!(r.try_answer(&root_query("(serialNumber=999999)")).is_none());

        // Subsequent polls use the recovered session incrementally.
        m.apply(UpdateOp::Add(person("f", "in", "045660", "2407"))).unwrap();
        let t = r.sync(&mut m).unwrap();
        assert_eq!(t.full_entries, 1);
    }

    #[test]
    fn persistent_filter_streams_updates() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter_persistent(&mut m, root_query("(departmentNumber=2406)")).unwrap();
        assert_eq!(r.entry_count(), 2);

        // An update at the master arrives without any poll.
        m.apply(UpdateOp::Modify {
            dn: dn("cn=d,c=in,o=xyz"),
            mods: vec![Modification::Replace("departmentNumber".into(), vec!["2406".into()])],
        })
        .unwrap();
        let t = r.drain_notifications();
        assert_eq!(t.full_entries, 1);
        assert_eq!(r.entry_count(), 3);
        let hit = r.try_answer(&root_query("(departmentNumber=2406)")).unwrap();
        assert_eq!(hit.len(), 3);

        // Draining again is a no-op.
        assert_eq!(r.drain_notifications().pdus(), 0);
    }

    #[test]
    fn per_filter_sync_supports_consistency_levels() {
        let mut m = master();
        let r = FilterReplica::new(0);
        let hot = root_query("(departmentNumber=2406)");
        let cold = root_query("(serialNumber=12*)");
        r.install_filter(&mut m, hot.clone()).unwrap();
        r.install_filter(&mut m, cold.clone()).unwrap();

        // Updates touch both contents.
        m.apply(UpdateOp::Modify {
            dn: dn("cn=a,c=us,o=xyz"),
            mods: vec![Modification::Replace("mail".into(), vec!["hot@x".into()])],
        })
        .unwrap();
        m.apply(UpdateOp::Modify {
            dn: dn("cn=d,c=in,o=xyz"),
            mods: vec![Modification::Replace("mail".into(), vec!["cold@x".into()])],
        })
        .unwrap();

        // Only the hot filter polls.
        let t = r.sync_filter(&mut m, &hot).unwrap().expect("hot filter stored");
        assert_eq!(t.full_entries, 1);
        let hot_ans = r.try_answer(&root_query("(mail=hot@x)"));
        assert!(hot_ans.is_none(), "mail query is not contained in dept filter");
        // The hot entry was refreshed...
        let e = r.try_answer(&hot).unwrap();
        assert!(e.iter().any(|e| e.has_value(&"mail".into(), &"hot@x".into())));
        // ...while the cold filter's content is still stale.
        let e = r.try_answer(&cold).unwrap();
        assert!(!e.iter().any(|e| e.has_value(&"mail".into(), &"cold@x".into())));

        // Unknown filters return None.
        assert!(r.sync_filter(&mut m, &root_query("(cn=zz)")).unwrap().is_none());
    }

    #[test]
    fn engine_stats_exposed() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        r.try_answer(&root_query("(serialNumber=045611)"));
        assert!(r.engine_stats().total() > 0);
    }

    #[test]
    fn concurrent_readers_share_the_replica() {
        // The acceptance shape of the read/write split: plain `&r` shared
        // across threads, no external Mutex, exact atomic accounting.
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = &r;
                s.spawn(move || {
                    for _ in 0..100 {
                        let hit = r.try_answer(&root_query("(serialNumber=045611)"));
                        assert_eq!(hit.expect("hit").len(), 1);
                    }
                });
            }
        });
        assert_eq!(r.stats().queries, 400);
        assert_eq!(r.stats().hits, 400);
    }

    // ------------------------------------------------------------------
    // Indexed evaluation
    // ------------------------------------------------------------------

    #[test]
    fn indexed_and_scan_paths_agree() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        r.install_filter(&mut m, root_query("(departmentNumber=2406)")).unwrap();
        let queries = [
            root_query("(serialNumber=045611)"),
            root_query("(serialNumber=04561*)"),
            root_query("(&(serialNumber=0456*)(departmentNumber=2406))"),
            root_query("(|(serialNumber=045611)(serialNumber=045621))"),
            root_query("(serialNumber=*45611)"), // unplannable → scan fallback
            sub_query("c=in,o=xyz", "(serialNumber=0456*)"),
            root_query("(serialNumber=999999)"),
            root_query("(departmentNumber=9900)"), // not contained → miss
        ];
        for q in &queries {
            assert_eq!(r.try_answer(q), r.try_answer_scan(q), "query {q}");
        }
    }

    #[test]
    fn decision_cache_memoizes_and_invalidates() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(departmentNumber=2406)")).unwrap();
        let q = root_query("(departmentNumber=2406)");

        r.try_answer(&q);
        let s = r.decision_cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 1, 1));

        // Repeat: the containment check is skipped, the answer unchanged.
        let before = r.engine_stats().total();
        assert_eq!(r.try_answer(&q).unwrap().len(), 2);
        assert_eq!(r.engine_stats().total(), before, "engine not consulted");
        let s = r.decision_cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));

        // Misses are memoized too.
        let miss = root_query("(serialNumber=120001)");
        assert!(r.try_answer(&miss).is_none());
        assert!(r.try_answer(&miss).is_none());
        let s = r.decision_cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 2, 2));

        // A publish (sync cycle) invalidates: the next probe misses and
        // sees the fresh content.
        m.apply(UpdateOp::Add(person("e", "us", "045650", "2406"))).unwrap();
        r.sync(&mut m).unwrap();
        assert_eq!(r.try_answer(&q).unwrap().len(), 3);
        let s = r.decision_cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 3, 1));

        // Manual clearing keeps counters but drops memos.
        r.clear_decision_cache();
        assert_eq!(r.decision_cache_stats().entries, 0);
    }

    #[test]
    fn epoch_shares_untouched_index() {
        // A sync cycle with no changes publishes a new epoch that shares
        // the previous epoch's interner and index allocations.
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(departmentNumber=2406)")).unwrap();
        let before = r.snapshot();
        r.sync(&mut m).unwrap();
        let after = r.snapshot();
        assert_eq!(after.epoch, before.epoch + 1);
        assert!(Arc::ptr_eq(&before.index, &after.index), "index shared");
        assert!(Arc::ptr_eq(&before.interner, &after.interner), "interner shared");
        // A cycle that does apply changes replaces them.
        m.apply(UpdateOp::Add(person("e", "us", "045650", "2406"))).unwrap();
        r.sync(&mut m).unwrap();
        let touched = r.snapshot();
        assert!(!Arc::ptr_eq(&after.index, &touched.index));
    }

    // ------------------------------------------------------------------
    // Robustness: degradation ladder
    // ------------------------------------------------------------------

    /// Simulated clock: sleeping advances time instantly.
    #[derive(Debug, Clone, Default)]
    struct TestClock {
        now: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }

    impl Clock for TestClock {
        fn now_ms(&self) -> u64 {
            self.now.load(std::sync::atomic::Ordering::SeqCst)
        }

        fn sleep_ms(&self, ms: u64) {
            self.now.fetch_add(ms, std::sync::atomic::Ordering::SeqCst);
        }
    }

    /// A transport over a real master that fails the next `outage` calls;
    /// `drop_responses` instead lets the master process the request and
    /// loses the answer on the way back (the replay-buffer case).
    struct FlakyMaster {
        master: SyncMaster,
        outage: u32,
        drop_responses: u32,
    }

    impl SyncTransport for FlakyMaster {
        fn resync(
            &mut self,
            request: &SearchRequest,
            ctl: ReSyncControl,
        ) -> Result<fbdr_resync::SyncResponse, SyncError> {
            if self.outage > 0 {
                self.outage -= 1;
                return Err(SyncError::Unavailable("outage".into()));
            }
            if self.drop_responses > 0 {
                self.drop_responses -= 1;
                let _ = self.master.resync(request, ctl);
                return Err(SyncError::Unavailable("response dropped".into()));
            }
            self.master.resync(request, ctl)
        }

        fn take_receiver(&mut self, cookie: Cookie) -> Option<Receiver<NotifyBatch>> {
            self.master.take_receiver(cookie)
        }

        fn abandon(&mut self, cookie: Cookie) {
            self.master.abandon(cookie);
        }

        fn reconcile(
            &mut self,
            request: &SearchRequest,
            req: fbdr_resync::reconcile::ReconcileRequest,
        ) -> Result<fbdr_resync::reconcile::ReconcileResponse, SyncError> {
            if self.outage > 0 {
                self.outage -= 1;
                return Err(SyncError::Unavailable("outage".into()));
            }
            self.master.reconcile(request, req)
        }

        fn reconcile_ranges(
            &mut self,
            cookie: Cookie,
            req: &fbdr_resync::reconcile::RangeRequest,
        ) -> Result<fbdr_resync::reconcile::RangeResponse, SyncError> {
            if self.outage > 0 {
                self.outage -= 1;
                return Err(SyncError::Unavailable("outage".into()));
            }
            self.master.reconcile_ranges(cookie, req)
        }
    }

    fn driver() -> SyncDriver<TestClock> {
        SyncDriver::with_clock(
            fbdr_resync::RetryConfig { max_retries: 2, ..Default::default() },
            TestClock::default(),
        )
    }

    #[test]
    fn sync_with_retries_through_transient_outage() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(departmentNumber=2406)")).unwrap();
        m.apply(UpdateOp::Add(person("e", "us", "045650", "2406"))).unwrap();

        let mut link = FlakyMaster { master: m, outage: 2, drop_responses: 0 };
        let mut d = driver();
        let t = r.sync_with(&mut link, &mut d).unwrap();
        assert_eq!(t.full_entries, 1);
        assert_eq!(r.stale_filter_count(), 0);
        assert_eq!(d.stats().retries, 2);
        assert_eq!(d.stats().recovered, 1);
    }

    #[test]
    fn exhausted_retries_serve_stale_until_recovery() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(departmentNumber=2406)")).unwrap();
        m.apply(UpdateOp::Add(person("e", "us", "045650", "2406"))).unwrap();

        // Outage longer than the retry budget (1 try + 2 retries).
        let mut link = FlakyMaster { master: m, outage: 10, drop_responses: 0 };
        let mut d = driver();
        let t = r.sync_with(&mut link, &mut d).expect("cycle must not fail");
        assert_eq!(t.pdus(), 0);
        assert_eq!(r.stale_filter_count(), 1);
        assert_eq!(d.stats().exhausted, 1);

        // Stale content is still served — and accounted as stale.
        let q = root_query("(departmentNumber=2406)");
        assert_eq!(r.try_answer(&q).expect("stale hit").len(), 2);
        assert_eq!(r.stats().stale_serves, 1);

        // The outage ends; the next cycle catches up and clears the mark.
        link.outage = 0;
        let t = r.sync_with(&mut link, &mut d).unwrap();
        assert_eq!(t.full_entries, 1);
        assert_eq!(r.stale_filter_count(), 0);
        r.try_answer(&q).expect("fresh hit");
        assert_eq!(r.stats().stale_serves, 1, "fresh hits are not stale serves");
    }

    #[test]
    fn sync_with_reconciles_after_session_expiry() {
        // The session dies at the master, but only one entry diverged:
        // recovery goes through the reconcile rung and ships exactly that
        // entry, never touching the reinstall counter.
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        let held_before = r.entry_count();
        m.apply(UpdateOp::Add(person("e", "us", "045650", "2406"))).unwrap();
        assert_eq!(m.expire_idle(0), 1);

        let mut link = FlakyMaster { master: m, outage: 0, drop_responses: 0 };
        let mut d = driver();
        let t = r.sync_with(&mut link, &mut d).unwrap();
        assert_eq!(t.full_entries, 1, "only the diverged entry crosses the wire");
        assert_eq!(d.stats().reconciliations, 1);
        assert_eq!(d.stats().reinstalls, 0);
        assert_eq!(r.stale_filter_count(), 0);
        assert_eq!(r.entry_count(), held_before + 1);
        // The re-established cookie polls incrementally.
        link.master.apply(UpdateOp::Add(person("f", "in", "045660", "7"))).unwrap();
        let t = r.sync_with(&mut link, &mut d).unwrap();
        assert_eq!(t.full_entries, 1);
        assert_eq!(d.stats().reconciliations, 1, "no second reconcile needed");
    }

    #[test]
    fn sync_with_reconcile_applies_detached_deletions() {
        // Deletions that happened while the session was dead must land
        // through reconciliation — the divergence Bloom digests alone
        // cannot see.
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        let held_before = r.entry_count();
        m.apply(UpdateOp::Delete(dn("cn=a,c=us,o=xyz"))).unwrap();
        assert_eq!(m.expire_idle(0), 1);

        let mut link = FlakyMaster { master: m, outage: 0, drop_responses: 0 };
        let mut d = driver();
        let t = r.sync_with(&mut link, &mut d).unwrap();
        assert_eq!(t.dn_only, 1, "the deletion travels as one hash, applied locally");
        assert_eq!(d.stats().reconciliations, 1);
        assert_eq!(d.stats().reinstalls, 0);
        assert_eq!(r.entry_count(), held_before - 1);
        let q = root_query("(serialNumber=0456*)");
        assert!(
            r.try_answer(&q).unwrap().iter().all(|e| e.dn() != &dn("cn=a,c=us,o=xyz")),
            "zero lost deletions"
        );
    }

    #[test]
    fn sync_with_falls_back_to_reinstall_when_transport_cannot_reconcile() {
        // A transport without the reconcile legs (the trait defaults)
        // routes recovery to the old full-reload rung.
        struct PlainLink {
            master: SyncMaster,
        }
        impl SyncTransport for PlainLink {
            fn resync(
                &mut self,
                request: &SearchRequest,
                ctl: ReSyncControl,
            ) -> Result<fbdr_resync::SyncResponse, SyncError> {
                self.master.resync(request, ctl)
            }
            fn take_receiver(&mut self, cookie: Cookie) -> Option<Receiver<NotifyBatch>> {
                self.master.take_receiver(cookie)
            }
            fn abandon(&mut self, cookie: Cookie) {
                self.master.abandon(cookie);
            }
        }

        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        m.apply(UpdateOp::Add(person("e", "us", "045650", "2406"))).unwrap();
        assert_eq!(m.expire_idle(0), 1);

        let mut link = PlainLink { master: m };
        let mut d = driver();
        let t = r.sync_with(&mut link, &mut d).unwrap();
        assert_eq!(t.full_entries, 4, "full reload");
        assert_eq!(d.stats().reconciliations, 0);
        assert_eq!(d.stats().reinstalls, 1);
        assert_eq!(r.stale_filter_count(), 0);
    }

    #[test]
    fn sync_with_respects_the_divergence_budget() {
        // A replay overrun reports how far behind the replica is; a
        // driver with a zero budget must skip reconciliation and
        // reinstall directly.
        let mut m = master();
        m.set_replay_expiry_ops(0);
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        m.apply(UpdateOp::Add(person("e", "us", "045650", "2406"))).unwrap();

        // The poll's response is lost; with no retries left the filter
        // goes stale while the master's session moves one batch ahead.
        let mut link = FlakyMaster { master: m, outage: 0, drop_responses: 1 };
        let mut d = SyncDriver::with_clock(
            fbdr_resync::RetryConfig { max_retries: 0, ..Default::default() },
            TestClock::default(),
        )
        .with_reconcile(fbdr_resync::ReconcileConfig {
            divergence_budget: 0,
            ..Default::default()
        });
        let t = r.sync_with(&mut link, &mut d).unwrap();
        assert_eq!(t.full_entries, 0);
        assert_eq!(r.stale_filter_count(), 1);

        // More updates land before the next cycle: the pending batch is
        // past its replay window, divergence (1) exceeds the budget (0).
        link.master
            .apply(UpdateOp::Add(person("f", "in", "045660", "7")))
            .unwrap();
        let t = r.sync_with(&mut link, &mut d).unwrap();
        assert_eq!(d.stats().reconciliations, 0, "budget forbids reconciliation");
        assert_eq!(d.stats().reinstalls, 1);
        assert_eq!(t.full_entries, 5, "full reload of the whole content");
        assert_eq!(r.stale_filter_count(), 0);
    }

    #[test]
    fn disconnected_persist_channel_degrades_to_polling() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter_persistent(&mut m, root_query("(departmentNumber=2406)")).unwrap();
        assert_eq!(r.entry_count(), 2);

        // A notification is queued, then the master drops every persist
        // channel (restart / connection loss).
        m.apply(UpdateOp::Add(person("e", "us", "045650", "2406"))).unwrap();
        assert_eq!(m.drop_persist_channels(), 1);

        // The queued update still lands; the filter falls back to polling.
        let t = r.drain_notifications();
        assert_eq!(t.full_entries, 1);
        assert_eq!(r.entry_count(), 3);
        assert_eq!(r.stats().poll_fallbacks, 1);
        // Draining again is a clean no-op (no double-counted fallback).
        assert_eq!(r.drain_notifications().pdus(), 0);
        assert_eq!(r.stats().poll_fallbacks, 1);

        // The session is still pollable via its cookie, and the poll
        // ledger knows what the stream already delivered: the fallback
        // poll sends only "f", not a redelivery of "e".
        m.apply(UpdateOp::Add(person("f", "in", "045660", "2406"))).unwrap();
        let t = r.sync(&mut m).unwrap();
        assert_eq!(t.full_entries, 1);
        assert_eq!(r.entry_count(), 4);
    }
}

#[cfg(test)]
mod proptests {
    //! Equivalence property: for arbitrary content and arbitrary filters,
    //! the planned/indexed evaluator and the naive scan oracle return the
    //! same entries in the same order — including across epochs where
    //! entries leave the content.

    use super::*;
    use fbdr_ldap::Filter;
    use proptest::prelude::*;

    /// Spec of one generated entry; the vector index names it. The tag
    /// byte encodes an optional attribute: values ≥ 4 mean "absent".
    type EntrySpec = (u8, u8, bool, u8);

    fn build_entry(i: usize, spec: &EntrySpec) -> Entry {
        let (dept, sn, has_mail, tag) = spec;
        let mut e = Entry::new(format!("cn=e{i},o=x").parse().unwrap())
            .with("objectclass", "person")
            .with("dept", &format!("{}", dept % 5))
            .with("sn", &format!("{}", 100_000 + (*sn as u32 % 40)));
        if *has_mail {
            e = e.with("mail", &format!("u{i}@x.com"));
        }
        if *tag < 4 {
            e = e.with("tag", &format!("t{}", tag % 3));
        }
        e
    }

    /// A replica whose single stored filter holds all generated entries,
    /// built through the real writer path (interner + incremental index).
    fn build_state(specs: &[EntrySpec]) -> (FilterReplica, ContentSnapshot, Vec<u32>) {
        let r = FilterReplica::new(0);
        let actions: Vec<SyncAction> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| SyncAction::Add(build_entry(i, s)))
            .collect();
        let mut work = Working::from_snapshot(&ContentSnapshot::empty());
        let mut refcount = HashMap::new();
        let mut sf = StoredFilter {
            prepared: PreparedQuery::new(SearchRequest::from_root(Filter::match_all())),
            ids: Vec::new(),
            stale: false,
            hits: Arc::new(AtomicU64::new(0)),
        };
        apply_actions(&mut work, &mut refcount, &mut sf, &actions);
        let ids = sf.ids.clone();
        work.filters.push(Arc::new(sf));
        (r, work.into_snapshot(), ids)
    }

    /// One leaf predicate, drawn to collide with generated values often
    /// enough to exercise non-empty plans.
    fn leaf() -> impl Strategy<Value = Filter> {
        let attr = prop_oneof![
            Just("dept".to_owned()),
            Just("sn".to_owned()),
            Just("mail".to_owned()),
            Just("tag".to_owned()),
            Just("ghost".to_owned()),
        ];
        (attr, 0u8..8, 0u8..7).prop_map(|(a, v, kind)| {
            let val = match a.as_str() {
                "dept" => format!("{}", v % 5),
                "sn" => format!("{}", 100_000 + (v as u32 % 40)),
                "mail" => format!("u{v}@x.com"),
                "tag" => format!("t{}", v % 3),
                _ => format!("{v}"),
            };
            let text = match kind {
                0 => format!("({a}={val})"),
                1 => format!("({a}>={val})"),
                2 => format!("({a}<={val})"),
                3 => format!("({a}=*)"),
                4 => {
                    // Prefix: plannable substring.
                    let cut = val.len().min(3);
                    format!("({a}={}*)", &val[..cut])
                }
                5 => {
                    // Middle substring: unplannable → scan fallback.
                    let cut = val.len().min(2);
                    format!("({a}=*{}*)", &val[val.len() - cut..])
                }
                _ => format!("(!({a}={val}))"),
            };
            Filter::parse(&text).expect("generated filter parses")
        })
    }

    /// Compose 1–3 leaves with a random connective.
    fn filter() -> impl Strategy<Value = Filter> {
        (prop::collection::vec(leaf(), 1..4), 0u8..3).prop_map(|(leaves, comb)| match comb {
            0 => Filter::and(leaves),
            1 => Filter::or(leaves),
            _ => leaves.into_iter().next().expect("non-empty"),
        })
    }

    /// Scan oracle: same verification/order/projection tail, no plan.
    fn oracle(snap: &ContentSnapshot, query: &SearchRequest, ids: &[u32]) -> Vec<Entry> {
        collect_matching(snap, query, ids)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]
        #[test]
        fn indexed_evaluation_matches_scan_oracle(
            specs in prop::collection::vec((0u8..8, 0u8..8, any::<bool>(), 0u8..8), 0..40),
            filters in prop::collection::vec(filter(), 1..6),
            doomed in prop::collection::vec(any::<bool>(), 0..40),
        ) {
            let (r, snap, ids) = build_state(&specs);
            for f in &filters {
                let q = SearchRequest::from_root(f.clone());
                let indexed = r.evaluate_indexed(&snap, &q, &ids);
                let scanned = oracle(&snap, &q, &ids);
                prop_assert_eq!(&indexed, &scanned, "epoch 1, filter {}", f);
            }

            // Entries leave between epochs: delete a subset through the
            // writer path and re-check equivalence on the new epoch.
            let deletes: Vec<SyncAction> = specs
                .iter()
                .enumerate()
                .filter(|(i, _)| doomed.get(*i).copied().unwrap_or(false))
                .map(|(i, s)| SyncAction::Delete(build_entry(i, s).dn().clone()))
                .collect();
            let mut work = Working::from_snapshot(&snap);
            let mut refcount: HashMap<u32, usize> =
                ids.iter().map(|&id| (id, 1usize)).collect();
            let mut sf = (*work.filters[0]).clone();
            apply_actions(&mut work, &mut refcount, &mut sf, &deletes);
            let ids2 = sf.ids.clone();
            work.filters[0] = Arc::new(sf);
            let snap2 = work.into_snapshot();
            for f in &filters {
                let q = SearchRequest::from_root(f.clone());
                let indexed = r.evaluate_indexed(&snap2, &q, &ids2);
                let scanned = oracle(&snap2, &q, &ids2);
                prop_assert_eq!(&indexed, &scanned, "epoch 2, filter {}", f);
            }
        }
    }
}
