//! The filter-based replication model (the paper's contribution), with a
//! read/write-split concurrency design: query answering is `&self` and
//! lock-minimal, mutation publishes immutable per-epoch content snapshots.

use crate::stats::{AtomicReplicaStats, ReplicaStats};
use crossbeam::channel::{Receiver, TryRecvError};
use fbdr_containment::{ContainmentEngine, EngineStats, PreparedQuery};
use fbdr_ldap::{Entry, SearchRequest};
use fbdr_obs::{event, Histogram, Obs};
use fbdr_resync::{
    Clock, Cookie, ReSyncControl, SyncAction, SyncDriver, SyncError, SyncMaster, SyncTransport,
    SyncTraffic,
};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a query's content is stored in the replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoredQueryKind {
    /// A generalized filter, statically or dynamically selected, kept in
    /// sync with the master via ReSync.
    Generalized,
    /// A recently performed user query, cached for temporal locality and
    /// *not* updated (§7.4) — evicted FIFO from a fixed window.
    Cached,
}

/// One synchronized generalized filter inside a content snapshot.
///
/// Immutable once published, except for the hit counter: that is an
/// `Arc<AtomicU64>` shared across snapshot generations, so hits recorded
/// against an old epoch survive the next publish.
#[derive(Debug, Clone)]
struct StoredFilter {
    prepared: PreparedQuery,
    dns: HashSet<String>,
    /// True when the last sync cycle could not reach the master: the
    /// content is served anyway (availability over freshness) but hits
    /// are accounted as stale until a cycle succeeds.
    stale: bool,
    hits: Arc<AtomicU64>,
}

/// The immutable-per-epoch read view: what `try_answer` consults.
///
/// Readers clone the `Arc` (the content lock is held only for that
/// pointer copy) and then work entirely on their private snapshot, so a
/// concurrent writer publishing epoch `n+1` never disturbs a reader still
/// answering from epoch `n`.
#[derive(Debug)]
struct ContentSnapshot {
    /// Monotonic generation number; bumped by every published mutation.
    epoch: u64,
    filters: Vec<Arc<StoredFilter>>,
    /// Entries referenced by at least one filter, keyed by normalized DN.
    entries: HashMap<String, Entry>,
}

impl ContentSnapshot {
    fn empty() -> Self {
        ContentSnapshot { epoch: 0, filters: Vec::new(), entries: HashMap::new() }
    }
}

/// Writer-side per-filter state that readers never touch: the ReSync
/// session cookie and the optional persist-mode notification channel.
///
/// Invariant: `WriterState::sessions` is index-aligned with the current
/// snapshot's `filters` — every mutator that adds/removes a filter updates
/// both under the writer lock before publishing.
#[derive(Debug)]
struct FilterSession {
    cookie: Option<Cookie>,
    /// Live notification channel for persist-mode filters.
    notifications: Option<Receiver<SyncAction>>,
}

/// All mutable bookkeeping, serialized behind one writer mutex.
#[derive(Debug, Default)]
struct WriterState {
    sessions: Vec<FilterSession>,
    /// How many filters reference each entry key (cache entries are owned
    /// by their cached query and not counted here).
    refcount: HashMap<String, usize>,
}

/// A cached recent user query with its frozen result set (cached queries
/// are not synchronized, §7.4, so the result is a snapshot at cache time).
#[derive(Debug)]
struct CachedQuery {
    prepared: PreparedQuery,
    entries: Vec<Entry>,
    keys: HashSet<String>,
    hits: AtomicU64,
}

/// FIFO window of cached queries behind a short-critical-section mutex:
/// the lock is held only to push/evict/copy the `Arc` list — containment
/// checks and result evaluation run outside it.
#[derive(Debug, Default)]
struct QueryCache {
    queries: Mutex<VecDeque<Arc<CachedQuery>>>,
}

impl QueryCache {
    fn view(&self) -> Vec<Arc<CachedQuery>> {
        self.queries.lock().iter().cloned().collect()
    }
}

/// A filter-based replica: entries satisfying one or more stored LDAP
/// queries plus the meta information (search specifications) needed to
/// decide answerability by semantic containment.
///
/// Entries are stored once and shared between overlapping stored queries;
/// [`FilterReplica::entry_count`] is the replica-size metric of Figures
/// 4–7, and [`FilterReplica::stored_query_count`] the x-axis of Figures
/// 8–9.
///
/// # Concurrency
///
/// The replica is split read/write:
///
/// * **Readers** ([`try_answer`](FilterReplica::try_answer),
///   [`try_answer_composed`](FilterReplica::try_answer_composed)) take
///   `&self`, clone the current content-snapshot `Arc` (the `RwLock` is
///   held only for that pointer copy) and answer from their private
///   epoch. Statistics are relaxed atomics. Any number of threads may
///   query one replica concurrently without external locking.
/// * **Writers** (install/remove/sync/cache management) also take `&self`
///   but serialize on an internal mutex; they build a new snapshot off to
///   the side and publish it with a single pointer swap, so each sync
///   cycle's updates become visible atomically and readers never observe
///   a half-applied batch.
#[derive(Debug)]
pub struct FilterReplica {
    content: RwLock<Arc<ContentSnapshot>>,
    cache: QueryCache,
    cache_window: usize,
    engine: ContainmentEngine,
    stats: AtomicReplicaStats,
    writer: Mutex<WriterState>,
    obs: Obs,
    /// Pre-resolved `fbdr_replica_try_answer_ns` histogram; `None` on an
    /// unobserved replica, so the fast path pays one branch, no clock.
    answer_hist: Option<Arc<Histogram>>,
}

impl FilterReplica {
    /// Creates a replica that caches up to `cache_window` recent user
    /// queries (0 disables query caching).
    pub fn new(cache_window: usize) -> Self {
        FilterReplica::with_obs(cache_window, Obs::off())
    }

    /// Creates an observed replica: hit counters become the registry's
    /// `fbdr_replica_*_total` metrics (one counter source — see
    /// [`AtomicReplicaStats::bound`]), every
    /// [`try_answer`](FilterReplica::try_answer) is timed into
    /// `fbdr_replica_try_answer_ns`, the embedded [`ContainmentEngine`]
    /// records through the same handle, and QC hits/misses plus epoch
    /// publishes emit trace events when a subscriber is installed. With
    /// [`Obs::off`] this is identical to [`FilterReplica::new`].
    pub fn with_obs(cache_window: usize, obs: Obs) -> Self {
        let (stats, answer_hist) = if obs.is_active() {
            (
                AtomicReplicaStats::bound(obs.registry()),
                Some(obs.registry().histogram("fbdr_replica_try_answer_ns")),
            )
        } else {
            (AtomicReplicaStats::new(), None)
        };
        FilterReplica {
            content: RwLock::new(Arc::new(ContentSnapshot::empty())),
            cache: QueryCache::default(),
            cache_window,
            engine: ContainmentEngine::with_obs(obs.clone()),
            stats,
            writer: Mutex::new(WriterState::default()),
            obs,
            answer_hist,
        }
    }

    /// The observability handle this replica records through.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The current content snapshot (lock held only for the `Arc` clone).
    fn snapshot(&self) -> Arc<ContentSnapshot> {
        self.content.read().clone()
    }

    /// Publishes a new snapshot; the write lock is held only for the swap.
    fn publish(&self, snap: ContentSnapshot) {
        event!(
            self.obs,
            "replica",
            "epoch_publish",
            epoch = snap.epoch,
            filters = snap.filters.len(),
            entries = snap.entries.len(),
        );
        *self.content.write() = Arc::new(snap);
    }

    /// Number of distinct entries stored (replica size): filter-referenced
    /// entries plus cached-query entries not already covered by a filter.
    pub fn entry_count(&self) -> usize {
        let snap = self.snapshot();
        let mut extra: HashSet<&str> = HashSet::new();
        let cached = self.cache.view();
        for cq in &cached {
            for k in &cq.keys {
                if !snap.entries.contains_key(k) {
                    extra.insert(k);
                }
            }
        }
        snap.entries.len() + extra.len()
    }

    /// Number of stored queries (generalized + cached) — the §7.4
    /// processing-overhead driver.
    pub fn stored_query_count(&self) -> usize {
        self.snapshot().filters.len() + self.cached_query_count()
    }

    /// Number of synchronized generalized filters.
    pub fn filter_count(&self) -> usize {
        self.snapshot().filters.len()
    }

    /// Number of cached user queries currently held.
    pub fn cached_query_count(&self) -> usize {
        self.cache.queries.lock().len()
    }

    /// Number of generalized filters currently marked stale (their last
    /// sync cycle could not reach the master).
    pub fn stale_filter_count(&self) -> usize {
        self.snapshot().filters.iter().filter(|s| s.stale).count()
    }

    /// The current content epoch: a monotonic generation number bumped by
    /// every published mutation (install, remove, sync cycle). All entries
    /// returned by one `try_answer` call come from a single epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Hit statistics (a point-in-time snapshot of the atomic counters).
    pub fn stats(&self) -> ReplicaStats {
        self.stats.snapshot()
    }

    /// Resets hit statistics (e.g. after the training day).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Containment-engine work counters (for §7.4).
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// The stored generalized filters with their accumulated hit counts.
    pub fn filters(&self) -> impl Iterator<Item = (SearchRequest, u64)> {
        self.snapshot()
            .filters
            .iter()
            .map(|s| (s.prepared.request().clone(), s.hits.load(Ordering::Relaxed)))
            .collect::<Vec<_>>()
            .into_iter()
    }

    // ------------------------------------------------------------------
    // Filter management (replica content determination, §6)
    // ------------------------------------------------------------------

    /// Installs a generalized filter: starts a ReSync session at the
    /// master and loads the initial content. Returns the load traffic.
    ///
    /// # Errors
    ///
    /// Propagates [`SyncError`] from the master.
    pub fn install_filter(
        &self,
        master: &mut SyncMaster,
        request: SearchRequest,
    ) -> Result<SyncTraffic, SyncError> {
        let mut w = self.writer.lock();
        let resp = master.resync(&request, ReSyncControl::poll(None))?;
        let traffic = resp.traffic();
        self.install_loaded(&mut w, request, resp.cookie, None, &resp.actions);
        Ok(traffic)
    }

    /// Installs a generalized filter in *persist* mode: the master streams
    /// change notifications over an open channel instead of waiting for
    /// polls; [`FilterReplica::drain_notifications`] applies whatever has
    /// arrived. This is the persistent-search-style strong(er) consistency
    /// option of §5.2, at the cost of one open connection per filter.
    ///
    /// # Errors
    ///
    /// Propagates [`SyncError`] from the master.
    pub fn install_filter_persistent(
        &self,
        master: &mut SyncMaster,
        request: SearchRequest,
    ) -> Result<SyncTraffic, SyncError> {
        let mut w = self.writer.lock();
        let (resp, rx) = master.resync_persist(&request, None)?;
        let traffic = resp.traffic();
        self.install_loaded(&mut w, request, resp.cookie, Some(rx), &resp.actions);
        Ok(traffic)
    }

    /// Shared install tail: builds the filter, applies the initial load
    /// and publishes the next epoch. Caller holds the writer lock.
    fn install_loaded(
        &self,
        w: &mut WriterState,
        request: SearchRequest,
        cookie: Option<Cookie>,
        notifications: Option<Receiver<SyncAction>>,
        actions: &[SyncAction],
    ) {
        let snap = self.snapshot();
        let mut filters = snap.filters.clone();
        let mut entries = snap.entries.clone();
        let mut sf = StoredFilter {
            prepared: PreparedQuery::new(request),
            dns: HashSet::new(),
            stale: false,
            hits: Arc::new(AtomicU64::new(0)),
        };
        apply_actions(&mut entries, &mut w.refcount, &mut sf, actions);
        filters.push(Arc::new(sf));
        w.sessions.push(FilterSession { cookie, notifications });
        self.publish(ContentSnapshot { epoch: snap.epoch + 1, filters, entries });
    }

    /// Applies every pending persist-mode notification across all
    /// persistent filters. Returns the traffic the notifications
    /// represent.
    ///
    /// A filter whose notification channel has disconnected (master
    /// restart, dropped connection) degrades to cookie-based polling: the
    /// channel is discarded, `poll_fallbacks` is incremented, and the
    /// next [`FilterReplica::sync`] picks the filter up incrementally via
    /// its cookie.
    pub fn drain_notifications(&self) -> SyncTraffic {
        let mut w = self.writer.lock();
        let WriterState { sessions, refcount } = &mut *w;
        let snap = self.snapshot();
        let mut filters = snap.filters.clone();
        let mut entries = snap.entries.clone();
        let mut traffic = SyncTraffic::default();
        let mut changed = false;
        for (i, session) in sessions.iter_mut().enumerate() {
            let Some(rx) = &session.notifications else { continue };
            let mut pending: Vec<SyncAction> = Vec::new();
            let disconnected = loop {
                match rx.try_recv() {
                    Ok(a) => pending.push(a),
                    Err(TryRecvError::Empty) => break false,
                    Err(TryRecvError::Disconnected) => break true,
                }
            };
            if !pending.is_empty() {
                for a in &pending {
                    traffic.count(a);
                }
                let sf = Arc::make_mut(&mut filters[i]);
                apply_actions(&mut entries, refcount, sf, &pending);
                changed = true;
            }
            if disconnected {
                session.notifications = None;
                self.stats.record_poll_fallback();
                event!(self.obs, "replica", "poll_fallback", filter_index = i);
            }
        }
        if changed {
            self.publish(ContentSnapshot { epoch: snap.epoch + 1, filters, entries });
        }
        traffic
    }

    /// Removes a generalized filter (revolution eviction), ending its sync
    /// session and garbage-collecting entries no other stored query needs.
    /// Returns true if the filter was present.
    pub fn remove_filter(&self, master: &mut SyncMaster, request: &SearchRequest) -> bool {
        let mut w = self.writer.lock();
        let snap = self.snapshot();
        let Some(pos) = snap.filters.iter().position(|s| s.prepared.request() == request) else {
            return false;
        };
        let mut filters = snap.filters.clone();
        let mut entries = snap.entries.clone();
        let removed = filters.remove(pos);
        let session = w.sessions.remove(pos);
        if let Some(c) = session.cookie {
            master.abandon(c);
        }
        for dn in &removed.dns {
            unref(&mut entries, &mut w.refcount, dn);
        }
        self.publish(ContentSnapshot { epoch: snap.epoch + 1, filters, entries });
        true
    }

    /// Polls the master for every synchronized filter and applies the
    /// updates. Returns the total resync traffic — component (i) of the
    /// filter replica's update traffic (§7.3).
    ///
    /// When the master has expired a session (its §5.2 admin time limit),
    /// the filter recovers automatically: a fresh session is established
    /// and the content reloaded from scratch (stale entries are dropped).
    ///
    /// The whole cycle publishes as **one** new epoch, so concurrent
    /// readers see either the pre-cycle or the post-cycle content, never
    /// a half-applied batch.
    ///
    /// # Errors
    ///
    /// Propagates other [`SyncError`]s; filters synced before the failure
    /// keep their updates (the partial cycle is published before the error
    /// returns).
    pub fn sync(&self, master: &mut SyncMaster) -> Result<SyncTraffic, SyncError> {
        let mut w = self.writer.lock();
        let WriterState { sessions, refcount } = &mut *w;
        let snap = self.snapshot();
        let mut filters = snap.filters.clone();
        let mut entries = snap.entries.clone();
        let mut total = SyncTraffic::default();
        let mut failed: Option<SyncError> = None;
        for i in 0..filters.len() {
            let request = filters[i].prepared.request().clone();
            let session = &mut sessions[i];
            let resp = match master.resync(&request, ReSyncControl::poll(session.cookie)) {
                Ok(resp) => resp,
                Err(e) if e.needs_reinstall() => {
                    // Session expired at the master (its §5.2 admin time
                    // limit) or a lost batch is past replay: start over
                    // with a full reload of this filter's content.
                    if matches!(e, SyncError::ReplayExpired(_)) {
                        // The session still exists at the master.
                        if let Some(c) = session.cookie {
                            master.abandon(c);
                        }
                    }
                    match master.resync(&request, ReSyncControl::poll(None)) {
                        Ok(resp) => {
                            let sf = Arc::make_mut(&mut filters[i]);
                            let old: Vec<String> = sf.dns.drain().collect();
                            for dn in old {
                                unref(&mut entries, refcount, &dn);
                            }
                            resp
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            };
            session.cookie = resp.cookie;
            total.absorb(&resp.traffic());
            let sf = Arc::make_mut(&mut filters[i]);
            sf.stale = false;
            apply_actions(&mut entries, refcount, sf, &resp.actions);
        }
        self.publish(ContentSnapshot { epoch: snap.epoch + 1, filters, entries });
        match failed {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    /// Polls the master through a retrying [`SyncDriver`], degrading
    /// gracefully where the plain [`FilterReplica::sync`] would give up:
    ///
    /// - a transient failure that exhausts the driver's retry/time budget
    ///   marks the filter **stale** and moves on — the content keeps being
    ///   served (availability over freshness; hits are counted in
    ///   [`ReplicaStats::stale_serves`]) and the next cycle retries;
    /// - an unrecoverable session error (expired cookie, replay past its
    ///   window) triggers a full reinstall through the driver, so even the
    ///   reload is retried on transient failures;
    /// - everything else propagates as in [`FilterReplica::sync`].
    ///
    /// Returns the total resync traffic of the cycle. Like `sync`, the
    /// cycle publishes one new epoch; readers keep answering from the
    /// previous epoch while it runs.
    ///
    /// # Errors
    ///
    /// Non-transient, non-session [`SyncError`]s only; transport outages
    /// never fail the cycle.
    pub fn sync_with<C: Clock>(
        &self,
        transport: &mut dyn SyncTransport,
        driver: &mut SyncDriver<C>,
    ) -> Result<SyncTraffic, SyncError> {
        let mut w = self.writer.lock();
        let WriterState { sessions, refcount } = &mut *w;
        let snap = self.snapshot();
        let mut filters = snap.filters.clone();
        let mut entries = snap.entries.clone();
        let mut total = SyncTraffic::default();
        let mut failed: Option<SyncError> = None;
        for i in 0..filters.len() {
            let request = filters[i].prepared.request().clone();
            let session = &mut sessions[i];
            let resp = match driver.resync(transport, &request, ReSyncControl::poll(session.cookie))
            {
                Ok(resp) => resp,
                Err(e) if e.is_transient() => {
                    // Budget exhausted: serve what we have until the next
                    // cycle rather than failing the whole replica.
                    Arc::make_mut(&mut filters[i]).stale = true;
                    event!(self.obs, "replica", "filter_stale", filter_index = i, reason = "sync");
                    continue;
                }
                Err(e) if e.needs_reinstall() => {
                    if matches!(e, SyncError::ReplayExpired(_)) {
                        if let Some(c) = session.cookie {
                            transport.abandon(c);
                        }
                    }
                    driver.note_reinstall();
                    match driver.resync(transport, &request, ReSyncControl::poll(None)) {
                        Ok(resp) => {
                            let sf = Arc::make_mut(&mut filters[i]);
                            let old: Vec<String> = sf.dns.drain().collect();
                            for dn in old {
                                unref(&mut entries, refcount, &dn);
                            }
                            resp
                        }
                        Err(e) if e.is_transient() => {
                            // Even the reinstall could not get through;
                            // the old content is still the best answer.
                            Arc::make_mut(&mut filters[i]).stale = true;
                            event!(
                                self.obs,
                                "replica",
                                "filter_stale",
                                filter_index = i,
                                reason = "reinstall",
                            );
                            continue;
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            };
            session.cookie = resp.cookie;
            total.absorb(&resp.traffic());
            let sf = Arc::make_mut(&mut filters[i]);
            sf.stale = false;
            apply_actions(&mut entries, refcount, sf, &resp.actions);
        }
        self.publish(ContentSnapshot { epoch: snap.epoch + 1, filters, entries });
        match failed {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    /// Polls the master for a *single* stored filter, leaving the others
    /// untouched. This is what lets a deployment give different object
    /// types different consistency levels (§3.2): hot, volatile filters
    /// can poll frequently while stable ones poll rarely — something a
    /// subtree replica cannot do, since one subtree mixes object types.
    ///
    /// Returns `Ok(None)` when `request` is not a stored filter.
    ///
    /// # Errors
    ///
    /// Propagates [`SyncError`] from the master; on error nothing is
    /// published (the previous epoch stays current).
    pub fn sync_filter(
        &self,
        master: &mut SyncMaster,
        request: &SearchRequest,
    ) -> Result<Option<SyncTraffic>, SyncError> {
        let mut w = self.writer.lock();
        let snap = self.snapshot();
        let Some(pos) = snap.filters.iter().position(|s| s.prepared.request() == request) else {
            return Ok(None);
        };
        let resp = master.resync(request, ReSyncControl::poll(w.sessions[pos].cookie))?;
        w.sessions[pos].cookie = resp.cookie;
        let traffic = resp.traffic();
        let mut filters = snap.filters.clone();
        let mut entries = snap.entries.clone();
        let sf = Arc::make_mut(&mut filters[pos]);
        sf.stale = false;
        apply_actions(&mut entries, &mut w.refcount, sf, &resp.actions);
        self.publish(ContentSnapshot { epoch: snap.epoch + 1, filters, entries });
        Ok(Some(traffic))
    }

    /// Caches a recently performed user query and its result (fetched from
    /// the master after a miss). Evicts the oldest cached query beyond the
    /// window. Cached queries are not synchronized: the result set is
    /// frozen at cache time (§7.4).
    pub fn cache_query(&self, request: SearchRequest, result: &[Entry]) {
        if self.cache_window == 0 {
            return;
        }
        let cq = Arc::new(CachedQuery {
            prepared: PreparedQuery::new(request),
            keys: result.iter().map(key).collect(),
            entries: result.to_vec(),
            hits: AtomicU64::new(0),
        });
        let mut q = self.cache.queries.lock();
        q.push_back(cq);
        while q.len() > self.cache_window {
            q.pop_front();
        }
    }

    /// Drops all cached user queries.
    pub fn clear_query_cache(&self) {
        self.cache.queries.lock().clear();
    }

    // ------------------------------------------------------------------
    // Query answering
    // ------------------------------------------------------------------

    /// Tries to answer a query locally: the query must be semantically
    /// contained (`QC`) in some stored query. Returns the locally
    /// evaluated entries on a hit, `None` (→ referral) on a miss.
    ///
    /// Takes `&self` and is safe to call from any number of threads
    /// concurrently with each other and with a writer running a sync
    /// cycle: the answer is computed against one consistent content epoch.
    ///
    /// ```
    /// use fbdr_ldap::{Entry, Filter, SearchRequest};
    /// use fbdr_replica::FilterReplica;
    /// use fbdr_resync::SyncMaster;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut master = SyncMaster::new();
    /// master.dit_mut().add_suffix("o=xyz".parse()?);
    /// master.dit_mut().add(Entry::new("o=xyz".parse()?))?;
    /// master.dit_mut().add(
    ///     Entry::new("cn=a,o=xyz".parse()?).with("serialNumber", "045612"),
    /// )?;
    ///
    /// let replica = FilterReplica::new(0);
    /// replica.install_filter(
    ///     &mut master,
    ///     SearchRequest::from_root(Filter::parse("(serialNumber=0456*)")?),
    /// )?;
    ///
    /// // Contained in the stored filter → answered locally.
    /// let hit = SearchRequest::from_root(Filter::parse("(serialNumber=045612)")?);
    /// assert_eq!(replica.try_answer(&hit).unwrap().len(), 1);
    /// // Not contained → miss (the caller would chase a referral).
    /// let miss = SearchRequest::from_root(Filter::parse("(serialNumber=9*)")?);
    /// assert!(replica.try_answer(&miss).is_none());
    /// assert_eq!(replica.stats().hits, 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn try_answer(&self, query: &SearchRequest) -> Option<Vec<Entry>> {
        let start = self.answer_hist.as_ref().map(|_| Instant::now());
        let out = self.answer_inner(query);
        if let (Some(h), Some(t)) = (&self.answer_hist, start) {
            h.record_since(t);
        }
        out
    }

    /// The answer path proper; [`FilterReplica::try_answer`] wraps it
    /// with the latency measurement.
    fn answer_inner(&self, query: &SearchRequest) -> Option<Vec<Entry>> {
        self.stats.record_query();
        let prepared = PreparedQuery::new(query.clone());
        let snap = self.snapshot();
        // Generalized filters first (they are authoritative and synced).
        for sf in &snap.filters {
            if self.engine.query_contained(&prepared, &sf.prepared) {
                sf.hits.fetch_add(1, Ordering::Relaxed);
                self.stats.record_generalized_hit(sf.stale);
                event!(
                    self.obs,
                    "replica",
                    "qc_hit",
                    kind = "generalized",
                    stale = sf.stale,
                    epoch = snap.epoch,
                );
                return Some(evaluate(&snap.entries, query, &sf.dns));
            }
        }
        for cq in self.cache.view() {
            if self.engine.query_contained(&prepared, &cq.prepared) {
                cq.hits.fetch_add(1, Ordering::Relaxed);
                self.stats.record_cache_hit();
                event!(self.obs, "replica", "qc_hit", kind = "cached", epoch = snap.epoch);
                return Some(evaluate_cached(query, &cq.entries));
            }
        }
        event!(
            self.obs,
            "replica",
            "qc_miss",
            epoch = snap.epoch,
            filters = snap.filters.len(),
        );
        None
    }

    /// Tries to answer a query from the **union** of stored generalized
    /// filters — an extension beyond the paper, which only checks
    /// containment in a single stored query (§3.4.2). A query like
    /// `(|(serialNumber=0456*)(serialNumber=0457*))` is answerable when
    /// each branch is covered by a different stored filter.
    ///
    /// The check is sound: the query region must lie inside every
    /// contributing filter's region, and the query filter must be
    /// contained (general Prop 1 procedure) in the disjunction of the
    /// contributing filters. Returns `None` on a miss; does not consult
    /// the query cache. Statistics count this as a generalized hit.
    ///
    /// Like [`try_answer`](FilterReplica::try_answer) this takes `&self`;
    /// the composed answer is evaluated against a single content epoch.
    pub fn try_answer_composed(&self, query: &SearchRequest) -> Option<Vec<Entry>> {
        if let Some(hit) = self.try_answer(query) {
            return Some(hit);
        }
        let snap = self.snapshot();
        // Candidates: stored filters whose region and attribute selection
        // cover the query's (the filter part is checked on the union).
        let candidates: Vec<&Arc<StoredFilter>> = snap
            .filters
            .iter()
            .filter(|sf| {
                let s = sf.prepared.request();
                fbdr_containment::region_contained(
                    query.base(),
                    query.scope(),
                    s.base(),
                    s.scope(),
                ) && query.attrs().is_subset_of(s.attrs())
            })
            .collect();
        if candidates.len() < 2 {
            return None; // single-filter containment already failed above
        }
        let union = fbdr_ldap::Filter::or(
            candidates.iter().map(|sf| sf.prepared.request().filter().clone()).collect(),
        );
        if fbdr_containment::filter_contained(query.filter(), &union)
            != fbdr_containment::Containment::Yes
        {
            return None;
        }
        // The try_answer call above already counted this query (as a
        // miss); composition converts it into a hit.
        self.stats.record_generalized_hit(false);
        let mut dns: HashSet<String> = HashSet::new();
        for sf in &candidates {
            sf.hits.fetch_add(1, Ordering::Relaxed);
            dns.extend(sf.dns.iter().cloned());
        }
        Some(evaluate(&snap.entries, query, &dns))
    }
}

/// Evaluates a query over a snapshot's entry store restricted to one
/// stored query's DN set.
fn evaluate(entries: &HashMap<String, Entry>, query: &SearchRequest, dns: &HashSet<String>) -> Vec<Entry> {
    let mut out: Vec<Entry> = dns
        .iter()
        .filter_map(|k| entries.get(k))
        .filter(|e| query.matches(e))
        .map(|e| query.attrs().project(e))
        .collect();
    out.sort_by(|a, b| a.dn().cmp(b.dn()));
    out
}

/// Evaluates a query over a cached query's frozen result set.
fn evaluate_cached(query: &SearchRequest, entries: &[Entry]) -> Vec<Entry> {
    let mut out: Vec<Entry> = entries
        .iter()
        .filter(|e| query.matches(e))
        .map(|e| query.attrs().project(e))
        .collect();
    out.sort_by(|a, b| a.dn().cmp(b.dn()));
    out
}

/// Applies one batch of sync actions to a working copy of the content:
/// the filter's DN set, the shared entry store and the refcounts.
fn apply_actions(
    entries: &mut HashMap<String, Entry>,
    refcount: &mut HashMap<String, usize>,
    sf: &mut StoredFilter,
    actions: &[SyncAction],
) {
    for a in actions {
        match a {
            SyncAction::Add(e) | SyncAction::Modify(e) => {
                let k = key(e);
                if sf.dns.insert(k.clone()) {
                    *refcount.entry(k.clone()).or_insert(0) += 1;
                }
                entries.insert(k, e.clone());
            }
            SyncAction::Delete(dn) => {
                let k = dn_key(dn);
                if sf.dns.remove(&k) {
                    unref(entries, refcount, &k);
                }
            }
            SyncAction::Retain(_) => {}
        }
    }
}

/// Drops one filter reference to an entry key, garbage-collecting the
/// entry when no filter references remain.
fn unref(entries: &mut HashMap<String, Entry>, refcount: &mut HashMap<String, usize>, k: &str) {
    if let Some(rc) = refcount.get_mut(k) {
        *rc -= 1;
        if *rc == 0 {
            refcount.remove(k);
            entries.remove(k);
        }
    }
}

fn key(e: &Entry) -> String {
    dn_key(e.dn())
}

fn dn_key(dn: &fbdr_ldap::Dn) -> String {
    dn.rdns()
        .iter()
        .map(|r| format!("{}={}", r.attr().lower(), r.value().normalized()))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_dit::{Modification, UpdateOp};
    use fbdr_ldap::{Dn, Filter, Scope};

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn person(cn: &str, c: &str, sn: &str, dept: &str) -> Entry {
        Entry::new(dn(&format!("cn={cn},c={c},o=xyz")))
            .with("objectclass", "inetOrgPerson")
            .with("cn", cn)
            .with("serialNumber", sn)
            .with("departmentNumber", dept)
    }

    fn master() -> SyncMaster {
        let mut m = SyncMaster::new();
        m.dit_mut().add_suffix(dn("o=xyz"));
        m.dit_mut().add(Entry::new(dn("o=xyz"))).unwrap();
        for c in ["us", "in"] {
            m.dit_mut().add(Entry::new(dn(&format!("c={c},o=xyz")))).unwrap();
        }
        for (cn, c, sn, dept) in [
            ("a", "us", "045611", "2406"),
            ("b", "us", "045612", "2406"),
            ("c", "in", "045621", "2407"),
            ("d", "in", "120001", "9900"),
        ] {
            m.dit_mut().add(person(cn, c, sn, dept)).unwrap();
        }
        m
    }

    fn root_query(f: &str) -> SearchRequest {
        SearchRequest::from_root(Filter::parse(f).unwrap())
    }

    fn sub_query(base: &str, f: &str) -> SearchRequest {
        SearchRequest::new(dn(base), Scope::Subtree, Filter::parse(f).unwrap())
    }

    #[test]
    fn install_filter_loads_content() {
        let mut m = master();
        let r = FilterReplica::new(0);
        let t = r
            .install_filter(&mut m, root_query("(serialNumber=0456*)"))
            .unwrap();
        assert_eq!(t.full_entries, 3);
        assert_eq!(r.entry_count(), 3);
        assert_eq!(r.filter_count(), 1);
        assert_eq!(r.epoch(), 1);
    }

    #[test]
    fn answers_contained_queries_spanning_subtrees() {
        // §3.1.2: semantic locality is not spatial — the 0456* filter
        // answers queries for entries in different country subtrees.
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();

        let q_us = root_query("(serialNumber=045611)");
        let hit = r.try_answer(&q_us).expect("hit");
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].dn(), &dn("cn=a,c=us,o=xyz"));

        let q_in = root_query("(serialNumber=045621)");
        let hit = r.try_answer(&q_in).expect("hit across subtrees");
        assert_eq!(hit[0].dn(), &dn("cn=c,c=in,o=xyz"));

        assert!(r.try_answer(&root_query("(serialNumber=120001)")).is_none());
        assert_eq!(r.stats().queries, 3);
        assert_eq!(r.stats().hits, 2);
        assert_eq!(r.stats().generalized_hits, 2);
    }

    #[test]
    fn null_based_queries_answerable() {
        // §3.1.1: filter replicas can replicate null-based queries.
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(departmentNumber=240*)")).unwrap();
        assert!(r.try_answer(&root_query("(departmentNumber=2406)")).is_some());
        // Narrower base still contained.
        assert!(r
            .try_answer(&sub_query("c=us,o=xyz", "(departmentNumber=2406)"))
            .is_some());
    }

    #[test]
    fn narrower_base_filters_results_by_scope() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        let q = sub_query("c=in,o=xyz", "(serialNumber=0456*)");
        let hit = r.try_answer(&q).expect("hit");
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].dn(), &dn("cn=c,c=in,o=xyz"));
    }

    #[test]
    fn sync_propagates_updates() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(departmentNumber=2406)")).unwrap();
        assert_eq!(r.entry_count(), 2);

        // d moves into the content, a moves out.
        m.apply(UpdateOp::Modify {
            dn: dn("cn=d,c=in,o=xyz"),
            mods: vec![Modification::Replace("departmentNumber".into(), vec!["2406".into()])],
        })
        .unwrap();
        m.apply(UpdateOp::Modify {
            dn: dn("cn=a,c=us,o=xyz"),
            mods: vec![Modification::Replace("departmentNumber".into(), vec!["2409".into()])],
        })
        .unwrap();
        let epoch_before = r.epoch();
        let t = r.sync(&mut m).unwrap();
        assert_eq!(t.full_entries, 1);
        assert_eq!(t.dn_only, 1);
        assert_eq!(r.entry_count(), 2);
        assert_eq!(r.epoch(), epoch_before + 1, "one cycle = one epoch");
        let hit = r.try_answer(&root_query("(departmentNumber=2406)")).unwrap();
        let dns: Vec<String> = hit.iter().map(|e| e.dn().to_string()).collect();
        assert_eq!(dns, ["cn=b,c=us,o=xyz", "cn=d,c=in,o=xyz"]);
    }

    #[test]
    fn overlapping_filters_share_entries() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        r.install_filter(&mut m, root_query("(departmentNumber=2406)")).unwrap();
        // a and b are in both contents; c only in the serial filter.
        assert_eq!(r.entry_count(), 3);
        // Removing one filter keeps shared entries alive.
        let serial = root_query("(serialNumber=0456*)");
        assert!(r.remove_filter(&mut m, &serial));
        assert_eq!(r.filter_count(), 1);
        assert_eq!(r.entry_count(), 2); // c garbage-collected
        assert!(r.try_answer(&root_query("(serialNumber=045611)")).is_none());
        assert!(r.try_answer(&root_query("(departmentNumber=2406)")).is_some());
    }

    #[test]
    fn query_cache_window_and_eviction() {
        let m = master();
        let r = FilterReplica::new(2);
        // Miss path: caller fetches from master and caches.
        let q1 = root_query("(serialNumber=045611)");
        assert!(r.try_answer(&q1).is_none());
        let res1 = m.dit().search(&q1);
        r.cache_query(q1.clone(), &res1);
        assert_eq!(r.cached_query_count(), 1);
        // Repeat of q1 now hits the cache.
        assert!(r.try_answer(&q1).is_some());
        assert_eq!(r.stats().cache_hits, 1);

        // Two more cached queries evict q1 (window = 2).
        for f in ["(serialNumber=045612)", "(serialNumber=120001)"] {
            let q = root_query(f);
            let res = m.dit().search(&q);
            r.cache_query(q, &res);
        }
        assert_eq!(r.cached_query_count(), 2);
        assert!(r.try_answer(&q1).is_none(), "q1 should be evicted");
    }

    #[test]
    fn clear_query_cache_drops_entries() {
        let m = master();
        let r = FilterReplica::new(4);
        let q = root_query("(serialNumber=045611)");
        let res = m.dit().search(&q);
        r.cache_query(q, &res);
        assert_eq!(r.entry_count(), 1);
        r.clear_query_cache();
        assert_eq!(r.entry_count(), 0);
        assert_eq!(r.cached_query_count(), 0);
    }

    #[test]
    fn composed_answering_covers_unions() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        r.install_filter(&mut m, root_query("(serialNumber=12*)")).unwrap();

        // Neither stored filter alone contains this disjunction, but
        // their union does.
        let q = root_query("(|(serialNumber=045612)(serialNumber=120001))");
        assert!(r.try_answer(&q).is_none(), "single-filter containment must miss");
        let hit = r.try_answer_composed(&q).expect("union containment hits");
        let dns: Vec<String> = hit.iter().map(|e| e.dn().to_string()).collect();
        assert_eq!(dns, ["cn=b,c=us,o=xyz", "cn=d,c=in,o=xyz"]);
        assert_eq!(r.stats().generalized_hits, 1);
        // The explicit try_answer above plus the composed call count two
        // query attempts; the composed hit is counted exactly once.
        assert_eq!(r.stats().queries, 2);
        assert_eq!(r.stats().hits, 1);

        // A disjunct outside both filters stays a miss.
        let q = root_query("(|(serialNumber=045612)(serialNumber=999999))");
        assert!(r.try_answer_composed(&q).is_none());
    }

    #[test]
    fn attribute_projection_on_answers() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        let q = SearchRequest::with_attrs(
            Dn::root(),
            Scope::Subtree,
            Filter::parse("(serialNumber=045611)").unwrap(),
            fbdr_ldap::AttrSelection::list(["cn"]),
        );
        let hit = r.try_answer(&q).expect("hit");
        assert!(hit[0].has_attr(&"cn".into()));
        assert!(!hit[0].has_attr(&"serialNumber".into()));
    }

    #[test]
    fn sync_recovers_from_expired_session() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        assert_eq!(r.entry_count(), 3);

        // Changes happen, then the master expires all idle sessions.
        m.apply(UpdateOp::Modify {
            dn: dn("cn=a,c=us,o=xyz"),
            mods: vec![Modification::Replace("serialNumber".into(), vec!["999999".into()])],
        })
        .unwrap();
        m.apply(UpdateOp::Add(person("e", "us", "045650", "2406"))).unwrap();
        assert_eq!(m.expire_idle(0), 1);

        // The poll recovers via a fresh full load; content converges.
        let t = r.sync(&mut m).unwrap();
        assert_eq!(t.full_entries, 3, "full reload of the filter content");
        assert_eq!(r.entry_count(), 3);
        let hit = r.try_answer(&root_query("(serialNumber=0456*)")).unwrap();
        let dns: Vec<String> = hit.iter().map(|e| e.dn().to_string()).collect();
        assert_eq!(dns, ["cn=b,c=us,o=xyz", "cn=c,c=in,o=xyz", "cn=e,c=us,o=xyz"]);
        // The stale entry (a, now 999999) is gone.
        assert!(r.try_answer(&root_query("(serialNumber=999999)")).is_none());

        // Subsequent polls use the recovered session incrementally.
        m.apply(UpdateOp::Add(person("f", "in", "045660", "2407"))).unwrap();
        let t = r.sync(&mut m).unwrap();
        assert_eq!(t.full_entries, 1);
    }

    #[test]
    fn persistent_filter_streams_updates() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter_persistent(&mut m, root_query("(departmentNumber=2406)")).unwrap();
        assert_eq!(r.entry_count(), 2);

        // An update at the master arrives without any poll.
        m.apply(UpdateOp::Modify {
            dn: dn("cn=d,c=in,o=xyz"),
            mods: vec![Modification::Replace("departmentNumber".into(), vec!["2406".into()])],
        })
        .unwrap();
        let t = r.drain_notifications();
        assert_eq!(t.full_entries, 1);
        assert_eq!(r.entry_count(), 3);
        let hit = r.try_answer(&root_query("(departmentNumber=2406)")).unwrap();
        assert_eq!(hit.len(), 3);

        // Draining again is a no-op.
        assert_eq!(r.drain_notifications().pdus(), 0);
    }

    #[test]
    fn per_filter_sync_supports_consistency_levels() {
        let mut m = master();
        let r = FilterReplica::new(0);
        let hot = root_query("(departmentNumber=2406)");
        let cold = root_query("(serialNumber=12*)");
        r.install_filter(&mut m, hot.clone()).unwrap();
        r.install_filter(&mut m, cold.clone()).unwrap();

        // Updates touch both contents.
        m.apply(UpdateOp::Modify {
            dn: dn("cn=a,c=us,o=xyz"),
            mods: vec![Modification::Replace("mail".into(), vec!["hot@x".into()])],
        })
        .unwrap();
        m.apply(UpdateOp::Modify {
            dn: dn("cn=d,c=in,o=xyz"),
            mods: vec![Modification::Replace("mail".into(), vec!["cold@x".into()])],
        })
        .unwrap();

        // Only the hot filter polls.
        let t = r.sync_filter(&mut m, &hot).unwrap().expect("hot filter stored");
        assert_eq!(t.full_entries, 1);
        let hot_ans = r.try_answer(&root_query("(mail=hot@x)"));
        assert!(hot_ans.is_none(), "mail query is not contained in dept filter");
        // The hot entry was refreshed...
        let e = r.try_answer(&hot).unwrap();
        assert!(e.iter().any(|e| e.has_value(&"mail".into(), &"hot@x".into())));
        // ...while the cold filter's content is still stale.
        let e = r.try_answer(&cold).unwrap();
        assert!(!e.iter().any(|e| e.has_value(&"mail".into(), &"cold@x".into())));

        // Unknown filters return None.
        assert!(r.sync_filter(&mut m, &root_query("(cn=zz)")).unwrap().is_none());
    }

    #[test]
    fn engine_stats_exposed() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        r.try_answer(&root_query("(serialNumber=045611)"));
        assert!(r.engine_stats().total() > 0);
    }

    #[test]
    fn concurrent_readers_share_the_replica() {
        // The acceptance shape of the read/write split: plain `&r` shared
        // across threads, no external Mutex, exact atomic accounting.
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = &r;
                s.spawn(move || {
                    for _ in 0..100 {
                        let hit = r.try_answer(&root_query("(serialNumber=045611)"));
                        assert_eq!(hit.expect("hit").len(), 1);
                    }
                });
            }
        });
        assert_eq!(r.stats().queries, 400);
        assert_eq!(r.stats().hits, 400);
    }

    // ------------------------------------------------------------------
    // Robustness: degradation ladder
    // ------------------------------------------------------------------

    /// Simulated clock: sleeping advances time instantly.
    #[derive(Debug, Clone, Default)]
    struct TestClock {
        now: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }

    impl Clock for TestClock {
        fn now_ms(&self) -> u64 {
            self.now.load(std::sync::atomic::Ordering::SeqCst)
        }

        fn sleep_ms(&self, ms: u64) {
            self.now.fetch_add(ms, std::sync::atomic::Ordering::SeqCst);
        }
    }

    /// A transport over a real master that fails the next `outage` calls.
    struct FlakyMaster {
        master: SyncMaster,
        outage: u32,
    }

    impl SyncTransport for FlakyMaster {
        fn resync(
            &mut self,
            request: &SearchRequest,
            ctl: ReSyncControl,
        ) -> Result<fbdr_resync::SyncResponse, SyncError> {
            if self.outage > 0 {
                self.outage -= 1;
                return Err(SyncError::Unavailable("outage".into()));
            }
            self.master.resync(request, ctl)
        }

        fn take_receiver(&mut self, cookie: Cookie) -> Option<Receiver<SyncAction>> {
            self.master.take_receiver(cookie)
        }

        fn abandon(&mut self, cookie: Cookie) {
            self.master.abandon(cookie);
        }
    }

    fn driver() -> SyncDriver<TestClock> {
        SyncDriver::with_clock(
            fbdr_resync::RetryConfig { max_retries: 2, ..Default::default() },
            TestClock::default(),
        )
    }

    #[test]
    fn sync_with_retries_through_transient_outage() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(departmentNumber=2406)")).unwrap();
        m.apply(UpdateOp::Add(person("e", "us", "045650", "2406"))).unwrap();

        let mut link = FlakyMaster { master: m, outage: 2 };
        let mut d = driver();
        let t = r.sync_with(&mut link, &mut d).unwrap();
        assert_eq!(t.full_entries, 1);
        assert_eq!(r.stale_filter_count(), 0);
        assert_eq!(d.stats().retries, 2);
        assert_eq!(d.stats().recovered, 1);
    }

    #[test]
    fn exhausted_retries_serve_stale_until_recovery() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(departmentNumber=2406)")).unwrap();
        m.apply(UpdateOp::Add(person("e", "us", "045650", "2406"))).unwrap();

        // Outage longer than the retry budget (1 try + 2 retries).
        let mut link = FlakyMaster { master: m, outage: 10 };
        let mut d = driver();
        let t = r.sync_with(&mut link, &mut d).expect("cycle must not fail");
        assert_eq!(t.pdus(), 0);
        assert_eq!(r.stale_filter_count(), 1);
        assert_eq!(d.stats().exhausted, 1);

        // Stale content is still served — and accounted as stale.
        let q = root_query("(departmentNumber=2406)");
        assert_eq!(r.try_answer(&q).expect("stale hit").len(), 2);
        assert_eq!(r.stats().stale_serves, 1);

        // The outage ends; the next cycle catches up and clears the mark.
        link.outage = 0;
        let t = r.sync_with(&mut link, &mut d).unwrap();
        assert_eq!(t.full_entries, 1);
        assert_eq!(r.stale_filter_count(), 0);
        r.try_answer(&q).expect("fresh hit");
        assert_eq!(r.stats().stale_serves, 1, "fresh hits are not stale serves");
    }

    #[test]
    fn sync_with_reinstalls_after_session_expiry() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter(&mut m, root_query("(serialNumber=0456*)")).unwrap();
        m.apply(UpdateOp::Add(person("e", "us", "045650", "2406"))).unwrap();
        assert_eq!(m.expire_idle(0), 1);

        let mut link = FlakyMaster { master: m, outage: 0 };
        let mut d = driver();
        let t = r.sync_with(&mut link, &mut d).unwrap();
        assert_eq!(t.full_entries, 4, "full reload");
        assert_eq!(d.stats().reinstalls, 1);
        assert_eq!(r.stale_filter_count(), 0);
    }

    #[test]
    fn disconnected_persist_channel_degrades_to_polling() {
        let mut m = master();
        let r = FilterReplica::new(0);
        r.install_filter_persistent(&mut m, root_query("(departmentNumber=2406)")).unwrap();
        assert_eq!(r.entry_count(), 2);

        // A notification is queued, then the master drops every persist
        // channel (restart / connection loss).
        m.apply(UpdateOp::Add(person("e", "us", "045650", "2406"))).unwrap();
        assert_eq!(m.drop_persist_channels(), 1);

        // The queued update still lands; the filter falls back to polling.
        let t = r.drain_notifications();
        assert_eq!(t.full_entries, 1);
        assert_eq!(r.entry_count(), 3);
        assert_eq!(r.stats().poll_fallbacks, 1);
        // Draining again is a clean no-op (no double-counted fallback).
        assert_eq!(r.drain_notifications().pdus(), 0);
        assert_eq!(r.stats().poll_fallbacks, 1);

        // The session is still pollable via its cookie, and the poll
        // ledger knows what the stream already delivered: the fallback
        // poll sends only "f", not a redelivery of "e".
        m.apply(UpdateOp::Add(person("f", "in", "045660", "2406"))).unwrap();
        let t = r.sync(&mut m).unwrap();
        assert_eq!(t.full_entries, 1);
        assert_eq!(r.entry_count(), 4);
    }
}
