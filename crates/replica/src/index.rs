//! Per-epoch attribute indexes over a content snapshot.
//!
//! A [`SnapshotIndex`] maps attribute values to sorted posting lists of
//! interned entry ids, mirroring the master-side DIT index design
//! (equality via normalized text, ranges via [`AttrValue`] order, prefix
//! via text-range scans) but keyed by dense ids instead of DNs.
//!
//! Lifecycle: the writer keeps the index inside an `Arc` that each
//! published snapshot shares. A sync cycle that touches no entries
//! publishes the *same* `Arc` (zero rebuild); a cycle that does touch
//! entries clones the structure once (`Arc::make_mut`) and applies only
//! the delta — the index is never rebuilt from the entry store.

use crate::posting;
use fbdr_ldap::{AttrName, AttrValue, Comparison, Entry, Filter, Predicate};
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// Posting lists for one attribute.
#[derive(Debug, Clone, Default)]
struct AttrPostings {
    /// Normalized value text → ids, in lexicographic order (equality and
    /// prefix lookups).
    text: BTreeMap<String, Vec<u32>>,
    /// Values in [`AttrValue`] order (numeric-aware) → ids (range
    /// lookups with the same semantics as predicate evaluation).
    ord: BTreeMap<AttrValue, Vec<u32>>,
    /// Ids of entries carrying the attribute at all.
    present: Vec<u32>,
}

/// Immutable-per-epoch equality/prefix/range index over snapshot entries.
#[derive(Debug, Clone, Default)]
pub(crate) struct SnapshotIndex {
    by_attr: HashMap<AttrName, AttrPostings>,
}

impl SnapshotIndex {
    /// Indexes every attribute value of `e` under `id`.
    pub(crate) fn insert_entry(&mut self, id: u32, e: &Entry) {
        for (attr, values) in e.attrs() {
            let idx = self.by_attr.entry(attr.clone()).or_default();
            posting::insert_sorted(&mut idx.present, id);
            for v in values {
                posting::insert_sorted(
                    idx.text.entry(v.normalized().to_owned()).or_default(),
                    id,
                );
                posting::insert_sorted(idx.ord.entry(v.clone()).or_default(), id);
            }
        }
    }

    /// Removes every attribute value of `e` from under `id`. `e` must be
    /// the entry version previously inserted for `id`.
    pub(crate) fn remove_entry(&mut self, id: u32, e: &Entry) {
        for (attr, values) in e.attrs() {
            let Some(idx) = self.by_attr.get_mut(attr) else { continue };
            posting::remove_sorted(&mut idx.present, id);
            for v in values {
                if let Some(list) = idx.text.get_mut(v.normalized()) {
                    posting::remove_sorted(list, id);
                    if list.is_empty() {
                        idx.text.remove(v.normalized());
                    }
                }
                if let Some(list) = idx.ord.get_mut(v) {
                    posting::remove_sorted(list, id);
                    if list.is_empty() {
                        idx.ord.remove(v);
                    }
                }
            }
            if idx.present.is_empty() {
                self.by_attr.remove(attr);
            }
        }
    }

    /// Compiles a filter into a candidate posting list: a sorted id set
    /// guaranteed to be a **superset** of the entries matching `filter`
    /// (callers verify residual predicates on the candidates). Returns
    /// `None` when the index cannot bound the result (negations,
    /// substring patterns without an `initial` component) and the caller
    /// must scan.
    ///
    /// Conjunctions intersect every plannable child (galloping);
    /// disjunctions require every child to plan and union them.
    pub(crate) fn plan<'a>(&'a self, filter: &Filter) -> Option<Cow<'a, [u32]>> {
        if let Some(p) = filter.as_predicate() {
            return self.plan_pred(p);
        }
        if filter.negated().is_some() {
            return None;
        }
        let children = filter.children();
        match filter {
            Filter::And(_) => {
                let mut plans: Vec<Cow<'a, [u32]>> =
                    children.iter().filter_map(|c| self.plan(c)).collect();
                if plans.is_empty() {
                    return None;
                }
                plans.sort_by_key(|p| p.len());
                let mut it = plans.into_iter();
                let mut acc = it.next().expect("non-empty");
                for p in it {
                    if acc.is_empty() {
                        break;
                    }
                    acc = Cow::Owned(posting::intersect(&acc, &p));
                }
                Some(acc)
            }
            Filter::Or(_) => {
                let mut parts: Vec<Cow<'a, [u32]>> = Vec::with_capacity(children.len());
                for c in children {
                    parts.push(self.plan(c)?);
                }
                Some(posting::union_cows(parts))
            }
            _ => None,
        }
    }

    fn plan_pred<'a>(&'a self, p: &Predicate) -> Option<Cow<'a, [u32]>> {
        let idx = self.by_attr.get(p.attr());
        match p.comparison() {
            Comparison::Eq(v) => Some(
                idx.and_then(|i| i.text.get(v.normalized()))
                    .map_or(Cow::Owned(Vec::new()), |l| Cow::Borrowed(l.as_slice())),
            ),
            Comparison::Ge(v) => Some(self.one_bound(idx, v, true)),
            Comparison::Le(v) => Some(self.one_bound(idx, v, false)),
            Comparison::Present => {
                Some(idx.map_or(Cow::Owned(Vec::new()), |i| Cow::Borrowed(i.present.as_slice())))
            }
            Comparison::Substring(pat) => {
                let init = pat.initial()?;
                let Some(i) = idx else { return Some(Cow::Owned(Vec::new())) };
                let lists = i
                    .text
                    .range::<str, _>((Bound::Included(init), Bound::Unbounded))
                    .take_while(|(k, _)| k.starts_with(init))
                    .map(|(_, l)| Cow::Borrowed(l.as_slice()))
                    .collect();
                Some(posting::union_cows(lists))
            }
        }
    }

    /// Candidates for a single `>=` (`is_lower`) or `<=` bound. Mirrors
    /// the DIT index's typed dispatch: integer bounds scan the `ord` map
    /// widened by one (alternate spellings of the bound value, "0500" for
    /// 500, sort before its canonical spelling), string bounds scan the
    /// `text` map whose order is exactly the predicate's.
    fn one_bound<'a>(
        &'a self,
        idx: Option<&'a AttrPostings>,
        bound: &AttrValue,
        is_lower: bool,
    ) -> Cow<'a, [u32]> {
        let Some(i) = idx else { return Cow::Owned(Vec::new()) };
        match bound.as_int() {
            Some(n) => {
                let (lo, hi) = if is_lower {
                    let b = if n > i64::MIN {
                        Bound::Excluded(AttrValue::new((n - 1).to_string()))
                    } else {
                        Bound::Unbounded
                    };
                    (b, Bound::Unbounded)
                } else {
                    let b = if n < i64::MAX {
                        Bound::Excluded(AttrValue::new((n + 1).to_string()))
                    } else {
                        Bound::Unbounded
                    };
                    (Bound::Unbounded, b)
                };
                let lists = i.ord.range((lo, hi)).map(|(_, l)| Cow::Borrowed(l.as_slice()));
                posting::union_cows(lists.collect())
            }
            None => {
                let key = bound.normalized();
                let range: (Bound<&str>, Bound<&str>) = if is_lower {
                    (Bound::Included(key), Bound::Unbounded)
                } else {
                    (Bound::Unbounded, Bound::Included(key))
                };
                let lists = i
                    .text
                    .range::<str, _>(range)
                    .map(|(_, l)| Cow::Borrowed(l.as_slice()));
                posting::union_cows(lists.collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u32) -> Entry {
        Entry::new(format!("cn=e{id},o=x").parse().unwrap())
            .with("objectclass", "person")
            .with("serialNumber", &format!("{:06}", 100_000 + id))
            .with("dept", &format!("{}", id % 3))
    }

    fn sample(n: u32) -> SnapshotIndex {
        let mut ix = SnapshotIndex::default();
        for id in 0..n {
            ix.insert_entry(id, &entry(id));
        }
        ix
    }

    fn plan_of(ix: &SnapshotIndex, f: &str) -> Option<Vec<u32>> {
        ix.plan(&Filter::parse(f).unwrap()).map(|c| c.into_owned())
    }

    #[test]
    fn equality_and_present_plans() {
        let ix = sample(10);
        assert_eq!(plan_of(&ix, "(serialNumber=100003)"), Some(vec![3]));
        assert_eq!(plan_of(&ix, "(serialNumber=999999)"), Some(vec![]));
        assert_eq!(plan_of(&ix, "(missing=1)"), Some(vec![]));
        assert_eq!(plan_of(&ix, "(objectclass=*)"), Some((0..10).collect()));
    }

    #[test]
    fn prefix_and_range_plans() {
        let ix = sample(20);
        // 100000..100019 — prefix 10001 covers ids 10..19.
        assert_eq!(plan_of(&ix, "(serialNumber=10001*)"), Some((10..20).collect()));
        assert_eq!(plan_of(&ix, "(serialNumber>=100015)"), Some((15..20).collect()));
        assert_eq!(plan_of(&ix, "(serialNumber<=100002)"), Some((0..3).collect()));
        // No initial component: cannot plan.
        assert_eq!(plan_of(&ix, "(serialNumber=*5)"), None);
    }

    #[test]
    fn boolean_plans() {
        let ix = sample(12);
        // And intersects; the dept list has ~4 ids, serial range 6.
        assert_eq!(plan_of(&ix, "(&(dept=0)(serialNumber>=100006))"), Some(vec![6, 9]));
        // A non-plannable conjunct is simply dropped from the plan.
        assert_eq!(
            plan_of(&ix, "(&(dept=1)(serialNumber=*x*))"),
            Some(vec![1, 4, 7, 10])
        );
        // Or unions, but only if every branch plans.
        assert_eq!(
            plan_of(&ix, "(|(serialNumber=100001)(dept=2))"),
            Some(vec![1, 2, 5, 8, 11])
        );
        assert_eq!(plan_of(&ix, "(|(dept=0)(x=*y))"), None);
        assert_eq!(plan_of(&ix, "(!(dept=0))"), None);
        assert_eq!(plan_of(&ix, "(&(!(dept=0))(x=*y))"), None);
    }

    #[test]
    fn remove_keeps_index_exact() {
        let mut ix = sample(6);
        ix.remove_entry(2, &entry(2));
        assert_eq!(plan_of(&ix, "(serialNumber=100002)"), Some(vec![]));
        assert_eq!(plan_of(&ix, "(dept=2)"), Some(vec![5]));
        assert_eq!(plan_of(&ix, "(objectclass=*)"), Some(vec![0, 1, 3, 4, 5]));
        // Removing everything empties the maps entirely.
        for id in [0u32, 1, 3, 4, 5] {
            ix.remove_entry(id, &entry(id));
        }
        assert!(ix.by_attr.is_empty());
    }
}
