//! The subtree-based replication model (§3.4.1).

use crate::stats::{AtomicReplicaStats, ReplicaStats};
use fbdr_dit::{ChangeKind, Csn, DitStore, NamingContext};
use fbdr_ldap::{Dn, Entry, Scope, SearchRequest};
use fbdr_resync::SyncTraffic;

/// A replica holding one or more subtree replication contexts.
///
/// Each context is a [`NamingContext`]: a suffix plus referral objects for
/// subordinate contexts held elsewhere. The replica stores every entry of
/// each context and answers queries whose base falls inside a held context
/// (the paper's `isContained` algorithm); a query additionally counts as a
/// *hit* only when no referral intersects its region (§3.1.3).
///
/// Like [`FilterReplica`](crate::FilterReplica), query answering takes
/// `&self` (statistics are relaxed atomics), so concurrent readers need no
/// external lock; [`sync_from`](SubtreeReplica::sync_from) and
/// [`replicate_context`](SubtreeReplica::replicate_context) mutate the
/// entry store and keep `&mut self`.
#[derive(Debug, Default)]
pub struct SubtreeReplica {
    contexts: Vec<NamingContext>,
    store: DitStore,
    stats: AtomicReplicaStats,
    last_csn: Csn,
}

impl SubtreeReplica {
    /// Creates an empty replica.
    pub fn new() -> Self {
        SubtreeReplica::default()
    }

    /// The replication contexts held.
    pub fn contexts(&self) -> &[NamingContext] {
        &self.contexts
    }

    /// Number of entries currently stored — the replica size compared
    /// against hit ratio in Figures 4 and 5.
    pub fn entry_count(&self) -> usize {
        self.store.len()
    }

    /// Accumulated hit statistics (a snapshot of the atomic counters).
    pub fn stats(&self) -> ReplicaStats {
        self.stats.snapshot()
    }

    /// Resets hit statistics (e.g. between training and evaluation days).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Adds a replication context and loads its entries from the master.
    /// Returns the initial-load traffic.
    pub fn replicate_context(&mut self, master: &DitStore, context: NamingContext) -> SyncTraffic {
        let mut traffic = SyncTraffic::default();
        self.store.add_suffix(context.suffix().clone());
        for e in master.subtree(context.suffix()) {
            if context.holds(e.dn()) && !self.store.contains(e.dn()) {
                traffic.full_entries += 1;
                traffic.bytes += e.estimated_size() as u64 + 8;
                self.store.add(e.clone()).expect("subtree iteration is parent-first");
            }
        }
        self.contexts.push(context);
        self.last_csn = master.csn();
        traffic
    }

    /// True when `dn` falls inside one of the held contexts (used by
    /// oracle-routed hit accounting in the experiment engine).
    pub fn covers_dn(&self, dn: &Dn) -> bool {
        self.holds_dn(dn)
    }

    /// The paper's `isContained(b, C)`: can a query based at `b` be
    /// (at least partially) answered by this replica?
    pub fn is_contained(&self, base: &Dn) -> bool {
        for c in &self.contexts {
            if c.suffix() == base {
                return true;
            }
            if !c.suffix().is_ancestor_or_self_of(base) {
                continue;
            }
            // Inside this context unless the base sits in a referral
            // subtree (held by a subordinate server).
            return !c.referrals().iter().any(|(r, _)| r.is_ancestor_or_self_of(base));
        }
        false
    }

    /// Can the query be *fully* answered (no referral intersects its
    /// region)? Partial answers generate referrals and do not count as
    /// hits (§3.1.3).
    pub fn is_fully_answerable(&self, query: &SearchRequest) -> bool {
        if !self.is_contained(query.base()) {
            return false;
        }
        let ctx = self
            .contexts
            .iter()
            .find(|c| c.suffix().is_ancestor_or_self_of(query.base()))
            .expect("is_contained implies a holding context");
        match query.scope() {
            Scope::Base => true,
            Scope::OneLevel => !ctx
                .referrals()
                .iter()
                .any(|(r, _)| query.base().is_parent_of(r)),
            Scope::Subtree => !ctx
                .referrals()
                .iter()
                .any(|(r, _)| query.base().is_ancestor_or_self_of(r)),
        }
    }

    /// Tries to answer a query locally. Returns the entries on a hit,
    /// `None` (→ referral) on a miss. Statistics are updated either way.
    ///
    /// Takes `&self`: any number of threads may query concurrently. Note
    /// that unlike [`FilterReplica`](crate::FilterReplica), the subtree
    /// store itself is not snapshot-isolated — readers must not run
    /// concurrently with `sync_from` (wrap in a `RwLock` for that, as
    /// `SubtreeReplicaNode` in `fbdr-core` does).
    pub fn try_answer(&self, query: &SearchRequest) -> Option<Vec<Entry>> {
        self.stats.record_query();
        if self.is_fully_answerable(query) {
            self.stats.record_hit();
            Some(self.store.search(query))
        } else {
            None
        }
    }

    /// Synchronizes with the master: every change to an entry inside a
    /// held context is shipped (full entry for adds/mods, DN for
    /// deletes/renames). Subtree replication has no filter to consult, so
    /// *all* entries of the subtree travel, whether or not any query needs
    /// them — the §3.2 update-traffic argument.
    pub fn sync_from(&mut self, master: &DitStore) -> SyncTraffic {
        let mut traffic = SyncTraffic::default();
        let records: Vec<_> = master.changelog_since(self.last_csn).to_vec();
        for rec in records {
            let old_held = self.holds_dn(&rec.dn);
            match rec.kind {
                ChangeKind::Delete => {
                    if old_held {
                        traffic.dn_only += 1;
                        traffic.bytes += rec.dn.to_string().len() as u64 + 8;
                        let _ = self.store.delete(&rec.dn);
                    }
                }
                ChangeKind::ModifyDn => {
                    if old_held {
                        traffic.dn_only += 1;
                        traffic.bytes += rec.dn.to_string().len() as u64 + 8;
                        let _ = self.store.delete(&rec.dn);
                    }
                    if let Some(new_dn) = &rec.new_dn {
                        if self.holds_dn(new_dn) {
                            if let Some(e) = master.get(new_dn) {
                                traffic.full_entries += 1;
                                traffic.bytes += e.estimated_size() as u64 + 8;
                                self.upsert(e.clone());
                            }
                        }
                    }
                }
                ChangeKind::Add | ChangeKind::Modify => {
                    if old_held {
                        if let Some(e) = master.get(&rec.dn) {
                            traffic.full_entries += 1;
                            traffic.bytes += e.estimated_size() as u64 + 8;
                            self.upsert(e.clone());
                        }
                    }
                }
            }
        }
        self.last_csn = master.csn();
        traffic
    }

    fn holds_dn(&self, dn: &Dn) -> bool {
        self.contexts.iter().any(|c| c.holds(dn))
    }

    fn upsert(&mut self, e: Entry) {
        if self.store.contains(e.dn()) {
            let _ = self.store.delete(e.dn());
        }
        // Ignore orphan adds: a parent outside the context was not
        // replicated (referral-delimited contexts).
        let _ = self.store.add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_dit::Modification;
    use fbdr_ldap::Filter;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn master() -> DitStore {
        let mut m = DitStore::new();
        m.add_suffix(dn("o=xyz"));
        m.add(Entry::new(dn("o=xyz"))).unwrap();
        for c in ["us", "in"] {
            m.add(Entry::new(dn(&format!("c={c},o=xyz")))).unwrap();
        }
        for (cn, c, sn) in [
            ("a", "us", "045611"),
            ("b", "us", "045612"),
            ("c", "in", "120001"),
            ("d", "in", "120002"),
        ] {
            m.add(
                Entry::new(dn(&format!("cn={cn},c={c},o=xyz")))
                    .with("objectclass", "person")
                    .with("serialNumber", sn),
            )
            .unwrap();
        }
        m
    }

    fn us_replica(m: &DitStore) -> SubtreeReplica {
        let mut r = SubtreeReplica::new();
        r.replicate_context(m, NamingContext::new(dn("c=us,o=xyz")));
        r
    }

    #[test]
    fn replicate_context_copies_subtree() {
        let m = master();
        let r = us_replica(&m);
        assert_eq!(r.entry_count(), 3); // c=us + 2 persons
    }

    #[test]
    fn is_contained_algorithm() {
        let m = master();
        let r = us_replica(&m);
        assert!(r.is_contained(&dn("c=us,o=xyz")));
        assert!(r.is_contained(&dn("cn=a,c=us,o=xyz")));
        assert!(!r.is_contained(&dn("c=in,o=xyz")));
        assert!(!r.is_contained(&dn("o=xyz"))); // base above the context
        assert!(!r.is_contained(&Dn::root()));
    }

    #[test]
    fn referral_subtree_not_contained() {
        let m = master();
        let mut r = SubtreeReplica::new();
        let ctx = NamingContext::new(dn("c=us,o=xyz"))
            .with_referral(dn("cn=a,c=us,o=xyz"), "ldap://other");
        r.replicate_context(&m, ctx);
        assert!(r.is_contained(&dn("c=us,o=xyz")));
        assert!(!r.is_contained(&dn("cn=a,c=us,o=xyz")));
        // Referral excluded from storage too.
        assert_eq!(r.entry_count(), 2);
        // Subtree query over the context is only partially answerable.
        let q = SearchRequest::new(dn("c=us,o=xyz"), Scope::Subtree, Filter::match_all());
        assert!(!r.is_fully_answerable(&q));
        // One-level query at c=us is also cut by the child referral.
        let q1 = SearchRequest::new(dn("c=us,o=xyz"), Scope::OneLevel, Filter::match_all());
        assert!(!r.is_fully_answerable(&q1));
        // Base query is fine.
        let qb = SearchRequest::new(dn("c=us,o=xyz"), Scope::Base, Filter::match_all());
        assert!(r.is_fully_answerable(&qb));
    }

    #[test]
    fn root_based_queries_always_miss() {
        // §3.1.1: minimally directory enabled applications search from the
        // DIT root; a subtree replica can never answer those.
        let m = master();
        let r = us_replica(&m);
        let q = SearchRequest::from_root(Filter::parse("(serialNumber=045611)").unwrap());
        assert!(r.try_answer(&q).is_none());
        assert_eq!(r.stats().hit_ratio(), 0.0);
    }

    #[test]
    fn subtree_query_hit() {
        let m = master();
        let r = us_replica(&m);
        let q = SearchRequest::new(
            dn("c=us,o=xyz"),
            Scope::Subtree,
            Filter::parse("(serialNumber=0456*)").unwrap(),
        );
        let entries = r.try_answer(&q).expect("hit");
        assert_eq!(entries.len(), 2);
        let miss = SearchRequest::new(
            dn("c=in,o=xyz"),
            Scope::Subtree,
            Filter::parse("(serialNumber=1*)").unwrap(),
        );
        assert!(r.try_answer(&miss).is_none());
        assert_eq!(r.stats().queries, 2);
        assert_eq!(r.stats().hits, 1);
    }

    #[test]
    fn sync_ships_all_subtree_changes() {
        let mut m = master();
        let mut r = us_replica(&m);
        // Change inside the context: shipped even though no query needs it.
        m.modify(
            &dn("cn=a,c=us,o=xyz"),
            vec![Modification::Replace("mail".into(), vec!["a@x".into()])],
        )
        .unwrap();
        // Change outside the context: not shipped.
        m.modify(
            &dn("cn=c,c=in,o=xyz"),
            vec![Modification::Replace("mail".into(), vec!["c@x".into()])],
        )
        .unwrap();
        let t = r.sync_from(&m);
        assert_eq!(t.full_entries, 1);
        assert_eq!(t.dn_only, 0);
        // Replica content reflects the modify.
        let q = SearchRequest::new(dn("c=us,o=xyz"), Scope::Subtree, Filter::parse("(mail=a@x)").unwrap());
        assert_eq!(r.try_answer(&q).unwrap().len(), 1);
    }

    #[test]
    fn sync_handles_add_delete_rename() {
        let mut m = master();
        let mut r = us_replica(&m);
        m.add(
            Entry::new(dn("cn=e,c=us,o=xyz"))
                .with("objectclass", "person")
                .with("serialNumber", "045699"),
        )
        .unwrap();
        m.delete(&dn("cn=b,c=us,o=xyz")).unwrap();
        m.modify_dn(&dn("cn=a,c=us,o=xyz"), fbdr_ldap::Rdn::new("cn", "a2"), None).unwrap();
        let t = r.sync_from(&m);
        assert_eq!(t.full_entries, 2); // add e + rename target a2
        assert_eq!(t.dn_only, 2); // delete b + rename source a
        assert_eq!(r.entry_count(), 3); // c=us, e, a2
        let q = SearchRequest::new(dn("c=us,o=xyz"), Scope::Subtree, Filter::parse("(cn=a2)").unwrap());
        assert_eq!(r.try_answer(&q).unwrap().len(), 1);
    }
}
