//! Sorted `u32` posting lists: the id-set representation behind indexed
//! snapshot evaluation.
//!
//! A posting list is a strictly increasing `Vec<u32>` of interned entry
//! ids. Set operations stay allocation-light and branch-predictable:
//! intersection *gallops* (exponential probe + binary search) through the
//! longer list, so intersecting a point-query candidate list with a
//! country-sized stored-filter list costs `O(small · log large)` rather
//! than `O(large)`.

use std::borrow::Cow;

/// First index in `slice` whose value is `>= target`, found by galloping:
/// probe positions 1, 2, 4, 8, … then binary-search the final octave.
/// Cheaper than a full binary search when the answer is near the front —
/// which it is when the caller advances a cursor through sorted merges.
fn gallop(slice: &[u32], target: u32) -> usize {
    let mut hi = 1usize;
    while hi < slice.len() && slice[hi] < target {
        hi <<= 1;
    }
    let lo = hi >> 1;
    let end = hi.min(slice.len());
    lo + slice[lo..end].partition_point(|&v| v < target)
}

/// Intersects two sorted id lists.
///
/// Uses a linear merge when the lists are of comparable length and
/// galloping (iterate the short list, exponential-search the long one)
/// when they differ by more than ~4×: the common point-query shape is a
/// one-element equality list against a country-sized filter list.
///
/// ```
/// use fbdr_replica::posting;
///
/// let big: Vec<u32> = (0..1000).collect();
/// assert_eq!(posting::intersect(&[3, 500, 2000], &big), vec![3, 500]);
/// assert_eq!(posting::intersect(&[], &big), Vec::<u32>::new());
/// ```
pub fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return Vec::new();
    }
    if large.len() <= small.len().saturating_mul(4) {
        return merge_intersect(small, large);
    }
    let mut out = Vec::with_capacity(small.len());
    let mut rest = large;
    for &x in small {
        let pos = gallop(rest, x);
        rest = &rest[pos..];
        if let Some(&head) = rest.first() {
            if head == x {
                out.push(x);
                rest = &rest[1..];
            }
        } else {
            break;
        }
    }
    out
}

/// Two-pointer intersection for similarly sized lists.
fn merge_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Unions any number of sorted id lists into one sorted deduplicated
/// list. Used by `Or` plans and range scans (one list per indexed value).
pub fn union_many<'a, I: IntoIterator<Item = &'a [u32]>>(lists: I) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    for l in lists {
        out.extend_from_slice(l);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Unions a sequence of copy-on-write lists, borrowing when a single
/// non-empty input makes the union trivial.
pub fn union_cows<'a>(mut parts: Vec<Cow<'a, [u32]>>) -> Cow<'a, [u32]> {
    parts.retain(|p| !p.is_empty());
    match parts.len() {
        0 => Cow::Owned(Vec::new()),
        1 => parts.pop().expect("len checked"),
        _ => Cow::Owned(union_many(parts.iter().map(|p| p.as_ref()))),
    }
}

/// Inserts `id` into a sorted list; returns true when it was absent.
pub fn insert_sorted(list: &mut Vec<u32>, id: u32) -> bool {
    match list.binary_search(&id) {
        Ok(_) => false,
        Err(pos) => {
            list.insert(pos, id);
            true
        }
    }
}

/// Removes `id` from a sorted list; returns true when it was present.
pub fn remove_sorted(list: &mut Vec<u32>, id: u32) -> bool {
    match list.binary_search(&id) {
        Ok(pos) => {
            list.remove(pos);
            true
        }
        Err(_) => false,
    }
}

/// Membership test by binary search.
pub fn contains(list: &[u32], id: u32) -> bool {
    list.binary_search(&id).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().filter(|x| b.contains(x)).copied().collect()
    }

    #[test]
    fn gallop_finds_lower_bound() {
        let v: Vec<u32> = (0..100).map(|i| i * 3).collect();
        assert_eq!(gallop(&v, 0), 0);
        assert_eq!(gallop(&v, 1), 1);
        assert_eq!(gallop(&v, 3), 1);
        assert_eq!(gallop(&v, 296), 99);
        assert_eq!(gallop(&v, 297), 99);
        assert_eq!(gallop(&v, 298), 100);
        assert_eq!(gallop(&[], 5), 0);
    }

    #[test]
    fn intersect_matches_naive_on_shapes() {
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![], vec![1, 2, 3]),
            (vec![1, 2, 3], vec![]),
            (vec![1, 5, 9], vec![1, 5, 9]),
            (vec![2, 4, 6, 8], vec![1, 3, 5, 7]),
            ((0..1000).collect(), vec![0, 17, 999, 1001]),
            (vec![500], (0..10_000).collect()),
            ((0..10_000).step_by(7).collect(), (0..10_000).step_by(13).collect()),
        ];
        for (a, b) in cases {
            assert_eq!(intersect(&a, &b), naive_intersect(&a, &b), "a={a:?}");
            assert_eq!(intersect(&b, &a), naive_intersect(&a, &b), "commuted");
        }
    }

    #[test]
    fn union_dedups_and_sorts() {
        let u = union_many([&[3, 9][..], &[1, 3, 5][..], &[][..], &[9][..]]);
        assert_eq!(u, vec![1, 3, 5, 9]);
    }

    #[test]
    fn union_cows_borrows_single_list() {
        let a: Vec<u32> = vec![1, 2];
        let parts = vec![Cow::Borrowed(&a[..]), Cow::Owned(Vec::new())];
        let u = union_cows(parts);
        assert!(matches!(u, Cow::Borrowed(_)));
        assert_eq!(&*u, &[1, 2]);
    }

    #[test]
    fn sorted_insert_remove_contains() {
        let mut v = Vec::new();
        for id in [5u32, 1, 9, 5, 3] {
            insert_sorted(&mut v, id);
        }
        assert_eq!(v, vec![1, 3, 5, 9]);
        assert!(contains(&v, 3));
        assert!(!contains(&v, 4));
        assert!(remove_sorted(&mut v, 3));
        assert!(!remove_sorted(&mut v, 3));
        assert_eq!(v, vec![1, 5, 9]);
    }
}
