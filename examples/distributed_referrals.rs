//! The Figure 2 walkthrough: why referral-based distributed operation
//! completion is slow — and why partial replicas want high hit ratios.
//!
//! Three servers jointly serve `o=xyz`: hostA masters the top, hostB the
//! research subtree, hostC the India subtree. A client sends one subtree
//! search to hostB and the library chases every referral.
//!
//! Run with: `cargo run --example distributed_referrals`

use fbdr::dit::{DitStore, NamingContext};
use fbdr::net::{Network, Server};
use fbdr::prelude::{Dn, Entry, Filter, Scope, SearchRequest};

fn dn(s: &str) -> Dn {
    s.parse().expect("valid dn")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut net = Network::new();

    // hostA: naming context (o=xyz, R1: ldap://hostB, R2: ldap://hostC).
    let mut dit_a = DitStore::new();
    dit_a.add_suffix(dn("o=xyz"));
    dit_a.add(Entry::new(dn("o=xyz")).with("objectclass", "organization"))?;
    dit_a.add(Entry::new(dn("c=us,o=xyz")).with("objectclass", "country"))?;
    dit_a.add(
        Entry::new(dn("cn=Fred Jones,c=us,o=xyz"))
            .with("objectclass", "person")
            .with("cn", "Fred Jones"),
    )?;
    let ctx_a = NamingContext::new(dn("o=xyz"))
        .with_referral(dn("ou=research,c=us,o=xyz"), "ldap://hostB")
        .with_referral(dn("c=in,o=xyz"), "ldap://hostC");
    println!("hostA holds {ctx_a}");
    net.add_server(Server::new("ldap://hostA", dit_a, vec![ctx_a], None));

    // hostB: the research subtree, default referral to hostA.
    let mut dit_b = DitStore::new();
    dit_b.add_suffix(dn("ou=research,c=us,o=xyz"));
    dit_b.add(Entry::new(dn("ou=research,c=us,o=xyz")).with("objectclass", "organizationalUnit"))?;
    for name in ["John Doe", "Carl Miller", "John Smith"] {
        dit_b.add(
            Entry::new(dn(&format!("cn={name},ou=research,c=us,o=xyz")))
                .with("objectclass", "person")
                .with("cn", name),
        )?;
    }
    let ctx_b = NamingContext::new(dn("ou=research,c=us,o=xyz"));
    println!("hostB holds {ctx_b}");
    net.add_server(Server::new("ldap://hostB", dit_b, vec![ctx_b], Some("ldap://hostA".into())));

    // hostC: the India subtree.
    let mut dit_c = DitStore::new();
    dit_c.add_suffix(dn("c=in,o=xyz"));
    dit_c.add(Entry::new(dn("c=in,o=xyz")).with("objectclass", "country"))?;
    dit_c.add(
        Entry::new(dn("cn=Asha Rao,c=in,o=xyz"))
            .with("objectclass", "person")
            .with("cn", "Asha Rao"),
    )?;
    let ctx_c = NamingContext::new(dn("c=in,o=xyz"));
    println!("hostC holds {ctx_c}");
    net.add_server(Server::new("ldap://hostC", dit_c, vec![ctx_c], Some("ldap://hostA".into())));

    // The client asks hostB for the whole o=xyz subtree, as in Figure 2:
    //   1. hostB -> default referral to hostA (name resolution)
    //   2. hostA -> 3 entries + continuation references for hostB, hostC
    //   3. hostB -> research entries      4. hostC -> India entries
    let req = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::match_all());
    let mut client = net.client();
    let result = client.search("ldap://hostB", &req)?;

    println!("\nsubtree search base=\"o=xyz\" sent to hostB:");
    println!("  round trips : {}", result.stats.round_trips);
    println!("  referrals   : {}", result.stats.referrals_received);
    println!("  entries     : {}", result.entries.len());
    println!(
        "  elapsed     : {:.0} ms at {} ms RTT",
        net.cost_model().elapsed_ms(result.stats.round_trips),
        net.cost_model().rtt_ms,
    );
    println!(
        "  bytes       : {} sent, {} received",
        result.stats.bytes_sent, result.stats.bytes_received
    );

    println!("\nentries collected:");
    for e in &result.entries {
        println!("  {}", e.dn());
    }

    // Contrast: a search a single server can answer takes one round trip.
    let local = SearchRequest::new(dn("ou=research,c=us,o=xyz"), Scope::Subtree, Filter::match_all());
    let mut client = net.client();
    let result = client.search("ldap://hostB", &local)?;
    println!(
        "\nsame-server search base=\"ou=research,c=us,o=xyz\": {} round trip(s), {} entries",
        result.stats.round_trips,
        result.entries.len()
    );
    Ok(())
}
