//! Syncing across a lossy link: the README fault-injection example.
//!
//! A `FaultyLink` drops 30% of the master's responses in flight — the
//! master's state still advances, so a fire-and-forget client would lose
//! those batches forever. The retrying `SyncDriver` plus the master's
//! cookie-replay buffer recover every one of them, and the whole run is
//! deterministic: same seed, same faults, same recovery.
//!
//! Run with `cargo run --release --example fault_injection`.

use fbdr_faults::{FaultPlan, FaultyLink, SimClock};
use fbdr_ldap::{Entry, Filter, SearchRequest};
use fbdr_replica::FilterReplica;
use fbdr_resync::{RetryConfig, SyncDriver, SyncMaster};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut master = SyncMaster::new();
    master.dit_mut().add_suffix("o=xyz".parse()?);
    master.dit_mut().add(Entry::new("o=xyz".parse()?))?;
    master.dit_mut().add(
        Entry::new("cn=a,o=xyz".parse()?)
            .with("objectclass", "person")
            .with("serialNumber", "045612"),
    )?;
    let replica = FilterReplica::new(0);
    replica.install_filter(
        &mut master,
        SearchRequest::from_root(Filter::parse("(serialNumber=0456*)")?),
    )?;

    // 30% of responses are lost in flight; the master still advances,
    // so a naive client would silently lose those batches forever.
    let clock = SimClock::new();
    let plan = FaultPlan::builder(7).drop_response(0.30).latency_ms(1, 20).build();
    let mut link = FaultyLink::new(master, plan, clock.clone());
    let mut driver = SyncDriver::with_clock(RetryConfig::default(), clock);

    for i in 0..50 {
        link.master_mut().apply(fbdr_dit::UpdateOp::Add(
            Entry::new(format!("cn=e{i},o=xyz").parse()?)
                .with("objectclass", "person")
                .with("serialNumber", &format!("0456{i:02}")),
        ))?;
        // Retries + cookie replay recover every lost response: the master
        // re-delivers the unacknowledged batch instead of dropping it.
        replica.sync_with(&mut link, &mut driver)?;
    }
    let stats = driver.stats();
    println!(
        "faults={} retries={} recovered={} redelivered={}",
        link.faults_injected(),
        stats.retries,
        stats.recovered,
        link.master().redeliveries(),
    );
    assert_eq!(replica.entry_count(), 51); // converged despite the loss
    Ok(())
}
