//! The Figure 3 ReSync session, message by message.
//!
//! A replica synchronizes the content of `S = (dept=7)` with its master:
//! an initial poll (null cookie) loads E1–E3, a later poll carries the
//! accumulated changes, and the session is finally upgraded to persist
//! mode, streaming notifications until abandoned.
//!
//! Run with: `cargo run --example resync_session`

use fbdr::dit::{Modification, UpdateOp};
use fbdr::prelude::*;

fn person(cn: &str, dept: &str) -> Entry {
    Entry::new(format!("cn={cn},o=xyz").parse().expect("valid dn"))
        .with("objectclass", "person")
        .with("cn", cn)
        .with("dept", dept)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut master = SyncMaster::new();
    master.dit_mut().add_suffix("o=xyz".parse()?);
    master.dit_mut().add(Entry::new("o=xyz".parse()?))?;
    for cn in ["E1", "E2", "E3"] {
        master.dit_mut().add(person(cn, "7"))?;
    }

    let s = SearchRequest::new("o=xyz".parse()?, Scope::Subtree, Filter::parse("(dept=7)")?);
    let mut replica = ReplicaContent::new();

    // --- S, (poll, null): the whole content, then a cookie ---
    println!("client -> master: S, (poll, null)");
    let resp = master.resync(&s, ReSyncControl::poll(None))?;
    for a in &resp.actions {
        println!("master -> client: {a}");
    }
    let cookie = resp.cookie.expect("poll responses carry a cookie");
    println!("master -> client: {cookie}\n");
    replica.apply_all(&resp.actions);

    // --- Updates at the master while the replica is offline ---
    println!("(master: add E4; delete E1; E2 moves out of content; E3 modified in place)\n");
    master.apply(UpdateOp::Add(person("E4", "7")))?;
    master.apply(UpdateOp::Delete("cn=E1,o=xyz".parse()?))?;
    master.apply(UpdateOp::Modify {
        dn: "cn=E2,o=xyz".parse()?,
        mods: vec![Modification::Replace("dept".into(), vec!["9".into()])],
    })?;
    master.apply(UpdateOp::Modify {
        dn: "cn=E3,o=xyz".parse()?,
        mods: vec![Modification::Replace("mail".into(), vec!["e3@xyz.com".into()])],
    })?;

    // --- S, (poll, cookie): exactly the session's pending changes ---
    println!("client -> master: S, (poll, {cookie})");
    let resp = master.resync(&s, ReSyncControl::poll(Some(cookie)))?;
    for a in &resp.actions {
        println!("master -> client: {a}");
    }
    let cookie1 = resp.cookie.expect("poll responses carry a cookie");
    println!("master -> client: {cookie1} (as cookie1)\n");
    replica.apply_all(&resp.actions);

    // --- S, (persist, cookie1): live notifications ---
    println!("client -> master: S, (persist, cookie1)");
    let (resp, notifications) = master.resync_persist(&s, Some(cookie1))?;
    assert!(resp.actions.is_empty(), "nothing changed since the poll");
    println!("(master: rename E3 -> E5 — a delete for the old DN, an add for the new)");
    master.apply(UpdateOp::ModifyDn {
        dn: "cn=E3,o=xyz".parse()?,
        new_rdn: Rdn::new("cn", "E5"),
        new_superior: None,
    })?;
    for batch in notifications.try_iter() {
        for a in &batch.actions {
            println!("master -> client: {a}");
            replica.apply(a);
        }
    }

    println!("client -> master: abandon\n");
    master.abandon(cookie1);

    println!("replica content at the end of the session:");
    for dn in replica.sorted_dns() {
        println!("  {dn}");
    }
    // The replica converged to the master's current answer for S.
    let master_dns: Vec<String> =
        master.dit().search_dns(&s).iter().map(|d| d.to_string().to_lowercase()).collect();
    assert_eq!(replica.sorted_dns(), master_dns);
    println!("(matches the master's current content for S — converged)");
    Ok(())
}
