//! End-to-end enterprise scenario: generate a synthetic enterprise
//! directory (§7.1 shape), train filter selection on one day of queries,
//! then serve a second day from a remote filter-based replica — with
//! dynamic revolutions adapting the stored filter set.
//!
//! Run with: `cargo run --release --example enterprise_replication`

use fbdr::core::experiment::{replay_filter, ReplayConfig};
use fbdr::prelude::*;
use fbdr::selection::generalize::{Identity, ValuePrefix, WidenToPresence};
use fbdr::workload::UpdateGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down model of the paper's half-million-entry directory:
    // employees flat under skewed countries, serial prefixes correlated
    // with countries, unstructured mail, departments under divisions.
    let dir_cfg = DirectoryConfig { employees: 5_000, ..DirectoryConfig::default() };
    let dir = EnterpriseDirectory::generate(dir_cfg);
    println!(
        "directory: {} entries ({} employees, {} countries, {} departments, {} locations)",
        dir.dit().len(),
        dir.employee_count(),
        dir.countries().len(),
        dir.departments().len(),
        dir.locations().len(),
    );

    // Two days of the Table 1 workload.
    let trace_cfg = TraceConfig { queries: 10_000, ..TraceConfig::default() };
    let gen = TraceGenerator::new(&dir, &trace_cfg);
    let day1 = gen.generate(&dir, &trace_cfg);
    let day2cfg = TraceConfig { seed: trace_cfg.seed + 1, ..trace_cfg.clone() };
    let day2 = gen.generate(&dir, &day2cfg);
    let updates = UpdateGenerator::new(&dir).generate(&UpdateConfig {
        ops: 500,
        ..UpdateConfig::default()
    });

    // A replica with dynamic filter selection: serial-prefix regions,
    // division-level department regions, plus a 100-query cache.
    let selector = FilterSelector::new(
        SelectorConfig {
            revolution_interval: 2_000,
            entry_budget: dir.employee_count() / 10,
            max_candidates: 8192,
        },
        vec![
            Box::new(ValuePrefix::new("serialNumber", vec![5, 4])),
            Box::new(WidenToPresence::new("dept")),
            Box::new(Identity::new()),
        ],
    );
    let mut replicator =
        Replicator::new(SyncMaster::with_dit(dir.dit().clone()), 100).with_selector(selector);
    // The whole (tiny, hot) location tree is replicated statically.
    replicator.install_filter(SearchRequest::from_root(Filter::parse("(location=*)")?))?;

    // Day 1 trains the selector; day 2 is what we report.
    println!("\nreplaying day 1 (training)…");
    let cfg = ReplayConfig { sync_every: 500, update_every: 20 };
    let _ = replay_filter(&mut replicator, &day1, &updates, cfg);
    println!("replaying day 2 (measured)…");
    let out = replay_filter(&mut replicator, &day2, &updates, cfg);

    println!("\nday-2 results at replica size {} entries:", out.replica_entries);
    println!("  overall hit ratio : {:.3}", out.overall.hit_ratio());
    let mut kinds: Vec<(&String, &(u64, u64))> = out.per_kind.iter().collect();
    kinds.sort();
    for (kind, (q, h)) in kinds {
        println!("  {kind:<20} {:>6} queries, hit ratio {:.3}", q, *h as f64 / (*q).max(1) as f64);
    }
    println!(
        "  update traffic    : {} full entries + {} DN-only (resync), {} entries (revolutions)",
        out.resync_traffic.full_entries, out.resync_traffic.dn_only,
        out.revolution_traffic.full_entries,
    );
    println!("  revolutions       : {}", out.revolutions);
    println!(
        "  containment work  : {} checks ({} same-template, {} compiled, {} skipped, {} general)",
        out.engine.total(),
        out.engine.same_template,
        out.engine.compiled,
        out.engine.skipped_never,
        out.engine.general,
    );
    Ok(())
}
