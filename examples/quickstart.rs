//! Quickstart: a master directory, a filter-based replica, query
//! answering by containment, and synchronization via ReSync.
//!
//! Run with: `cargo run --example quickstart`

use fbdr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- A master directory with a handful of people ---
    let mut master = SyncMaster::new();
    master.dit_mut().add_suffix("o=xyz".parse()?);
    master.dit_mut().add(Entry::new("o=xyz".parse()?).with("objectclass", "organization"))?;
    master.dit_mut().add(Entry::new("c=us,o=xyz".parse()?).with("objectclass", "country"))?;
    master.dit_mut().add(Entry::new("c=in,o=xyz".parse()?).with("objectclass", "country"))?;
    for (cn, c, serial, dept) in [
        ("John Doe", "us", "045612", "2406"),
        ("Jane Roe", "us", "045671", "2406"),
        ("Ravi Rao", "in", "045699", "2407"),
        ("Ken Low", "us", "120001", "9900"),
    ] {
        master.dit_mut().add(
            Entry::new(format!("cn={cn},c={c},o=xyz").parse()?)
                .with("objectclass", "inetOrgPerson")
                .with("cn", cn)
                .with("serialNumber", serial)
                .with("departmentNumber", dept),
        )?;
    }

    // --- A remote replica storing one generalized filter ---
    // The unit of replication is an LDAP *query*: here, everyone whose
    // serial number starts 0456 — a region spanning both country subtrees.
    let mut replicator = Replicator::new(master, 50);
    let loaded = replicator
        .install_filter(SearchRequest::from_root(Filter::parse("(serialNumber=0456*)")?))?;
    println!("installed (serialNumber=0456*): {} entries loaded", loaded.full_entries);

    // --- Contained queries are answered locally ---
    for serial in ["045612", "045699", "120001"] {
        let q = SearchRequest::from_root(Filter::parse(&format!("(serialNumber={serial})"))?);
        let (entries, served) = replicator.search(&q);
        println!(
            "(serialNumber={serial}) -> {:?}, {} entr{}",
            served,
            entries.len(),
            if entries.len() == 1 { "y" } else { "ies" }
        );
    }

    // --- Updates at the master flow to the replica on the next poll ---
    replicator.apply_update(UpdateOp::Add(
        Entry::new("cn=New Hire,c=in,o=xyz".parse()?)
            .with("objectclass", "inetOrgPerson")
            .with("serialNumber", "045680"),
    ))?;
    let t = replicator.sync()?;
    println!("sync: {} full entries, {} DN-only PDUs", t.full_entries, t.dn_only);

    let q = SearchRequest::from_root(Filter::parse("(serialNumber=045680)")?);
    let (entries, served) = replicator.search(&q);
    println!("(serialNumber=045680) after sync -> {served:?}, {} entry", entries.len());

    println!(
        "hit ratio so far: {:.2} ({} of {} queries answered locally)",
        replicator.stats().hit_ratio(),
        replicator.stats().hits,
        replicator.stats().queries,
    );
    Ok(())
}
