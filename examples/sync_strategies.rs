//! Filter synchronization strategies side by side (§5 of the paper):
//! ReSync's per-session history against changelog-, tombstone-, retain-
//! and full-reload-based alternatives — including the naive changelog
//! consumer that fails to converge.
//!
//! Run with: `cargo run --release --example sync_strategies`

use fbdr::dit::{Modification, UpdateOp};
use fbdr::prelude::*;
use fbdr::resync::baseline::{
    divergence, ChangelogSync, FullReload, NaiveChangelogSync, RetainSync, Synchronizer,
    TombstoneSync,
};

fn person(cn: &str, dept: &str) -> Entry {
    Entry::new(format!("cn={cn},o=xyz").parse().expect("valid dn"))
        .with("objectclass", "person")
        .with("cn", cn)
        .with("dept", dept)
        .with("mail", &format!("{cn}@xyz.com"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Master with 200 people, half of them in the replicated department.
    let mut master = SyncMaster::new();
    master.dit_mut().add_suffix("o=xyz".parse()?);
    master.dit_mut().add(Entry::new("o=xyz".parse()?))?;
    for i in 0..200 {
        master.dit_mut().add(person(&format!("p{i:03}"), if i % 2 == 0 { "7" } else { "9" }))?;
    }
    let s = SearchRequest::new(
        "o=xyz".parse()?,
        Scope::Subtree,
        Filter::parse("(&(objectclass=person)(dept=7))")?,
    );

    // One replica per strategy, all bootstrapped identically.
    let resp = master.resync(&s, ReSyncControl::poll(None))?;
    let cookie = resp.cookie.expect("cookie");
    let mut resync_content = ReplicaContent::new();
    resync_content.apply_all(&resp.actions);
    let mut resync_traffic = SyncTraffic::default();

    let mut baselines: Vec<(Box<dyn Synchronizer>, ReplicaContent, SyncTraffic)> = vec![
        (Box::new(RetainSync::default()), ReplicaContent::new(), SyncTraffic::default()),
        (Box::new(TombstoneSync::default()), ReplicaContent::new(), SyncTraffic::default()),
        (Box::new(ChangelogSync::default()), ReplicaContent::new(), SyncTraffic::default()),
        (Box::new(FullReload), ReplicaContent::new(), SyncTraffic::default()),
    ];
    for (strategy, content, _) in &mut baselines {
        strategy.sync(master.dit(), &s, content); // bootstrap, not counted
    }
    let mut naive_content = ReplicaContent::new();
    FullReload.sync(master.dit(), &s, &mut naive_content);
    let mut naive = NaiveChangelogSync::starting_at(master.dit().csn());
    let mut naive_traffic = SyncTraffic::default();

    // Three update rounds, each followed by one sync cycle per strategy.
    // Round 2 contains the §5.2 counterexample: p000 is modified *out of*
    // the content (only `dept` appears in the changelog record) and then
    // deleted — the naive log reader cannot establish membership.
    for round in 0..3 {
        for i in 0..20 {
            let id = round * 20 + i;
            master.apply(UpdateOp::Modify {
                dn: format!("cn=p{id:03},o=xyz").parse()?,
                mods: vec![Modification::Replace("mail".into(), vec![format!("r{round}@x").into()])],
            })?;
        }
        if round == 1 {
            master.apply(UpdateOp::Modify {
                dn: "cn=p000,o=xyz".parse()?,
                mods: vec![Modification::Replace("dept".into(), vec!["9".into()])],
            })?;
            master.apply(UpdateOp::Delete("cn=p000,o=xyz".parse()?))?;
        }

        let resp = master.resync(&s, ReSyncControl::poll(Some(cookie)))?;
        resync_traffic.absorb(&resp.traffic());
        resync_content.apply_all(&resp.actions);
        for (strategy, content, traffic) in &mut baselines {
            traffic.absorb(&strategy.sync(master.dit(), &s, content));
        }
        naive_traffic.absorb(&naive.sync(master.dit(), &s, &mut naive_content));
    }

    println!("strategy                      entries   DN-only   bytes     diverged");
    println!("--------------------------------------------------------------------");
    let report = |name: &str, t: &SyncTraffic, content: &ReplicaContent| {
        let ghosts = divergence(master.dit(), &s, content);
        println!(
            "{name:<28} {:>8} {:>9} {:>7} {:>10}",
            t.full_entries,
            t.dn_only,
            t.bytes,
            if ghosts.is_empty() { "no".to_owned() } else { format!("{} DN(s)!", ghosts.len()) }
        );
    };
    report("resync (session history)", &resync_traffic, &resync_content);
    for (strategy, content, traffic) in &baselines {
        report(strategy.name(), traffic, content);
    }
    report("naive-changelog", &naive_traffic, &naive_content);

    println!(
        "\nReSync ships the fewest PDUs and still converges; the naive changelog\n\
         reader skipped the delete of an entry it could not place and kept a ghost."
    );
    Ok(())
}
