//! A tour of the observability layer: one [`Obs`] handle threaded through
//! the selector, the replica, the master and the sync driver; a ring
//! buffer catching structured trace events; and the metrics registry
//! exporting counters and latency histograms for every stage of the
//! replication pipeline — containment checks, local answering, ReSync
//! exchanges (over a lossy link, so retries and redeliveries show up),
//! and a filter-selection revolution.
//!
//! Run with `cargo run --release --example observability`.

use fbdr_faults::{FaultPlan, FaultyLink, SimClock};
use fbdr_ldap::{Entry, Filter, SearchRequest};
use fbdr_obs::{Obs, RingBuffer};
use fbdr_replica::FilterReplica;
use fbdr_resync::{RetryConfig, SyncDriver, SyncMaster};
use fbdr_selection::generalize::ValuePrefix;
use fbdr_selection::{FilterSelector, SelectorConfig};
use std::sync::Arc;
use std::time::Instant;

fn query(serial: &str) -> SearchRequest {
    SearchRequest::from_root(
        Filter::parse(&format!("(serialNumber={serial})")).expect("valid filter"),
    )
}

fn person(i: usize) -> Entry {
    Entry::new(format!("cn=e{i:02},o=xyz").parse().expect("valid dn"))
        .with("objectclass", "person")
        .with("serialNumber", &format!("0456{i:02}"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One deployment-wide handle: metrics always on, plus a ring-buffer
    // subscriber so every component's trace events land in one place.
    let obs = Obs::new();
    let ring = Arc::new(RingBuffer::new(512));
    obs.set_subscriber(ring.clone());

    // Master, replica and selector all record through the same handle.
    let mut master = SyncMaster::new();
    master.set_obs(obs.clone());
    master.dit_mut().add_suffix("o=xyz".parse()?);
    master.dit_mut().add(Entry::new("o=xyz".parse()?))?;
    for i in 0..40 {
        master.dit_mut().add(person(i))?;
    }
    let mut replica = FilterReplica::with_obs(8, obs.clone());
    let mut selector = FilterSelector::new(
        SelectorConfig { revolution_interval: 16, entry_budget: 100, max_candidates: 64 },
        vec![Box::new(ValuePrefix::new("serialNumber", vec![4]))],
    )
    .with_obs(obs.clone());

    // A burst of queries against the 0456xx serial cluster, then a
    // revolution: the selector promotes the generalized (serialNumber=0456*)
    // filter into the replica (spanned as fbdr_selection_revolve_ns).
    for i in 0..16 {
        selector.observe(&query(&format!("0456{:02}", i % 40)));
    }
    let report = selector.maybe_revolve(&mut master, &mut replica)?.expect("revolution due");
    println!(
        "revolution: installed {:?}, evicted {:?}",
        report.installed.iter().map(|r| r.filter().to_string()).collect::<Vec<_>>(),
        report.removed.len(),
    );

    // Faulty sync: 30% of responses are lost in flight. The driver's
    // retries and the master's replay buffer recover each one, emitting
    // driver.retry / resync.redelivery events along the way.
    let clock = SimClock::new();
    let plan = FaultPlan::builder(7).drop_response(0.30).latency_ms(1, 20).build();
    let mut link = FaultyLink::new(master, plan, clock.clone());
    let mut driver = SyncDriver::with_clock(RetryConfig::default(), clock).with_obs(obs.clone());
    for i in 40..80 {
        link.master_mut().apply(fbdr_dit::UpdateOp::Add(person(i)))?;
        replica.sync_with(&mut link, &mut driver)?;
    }

    // Local answering: every query below is inside the stored filter, so
    // the replica answers from its snapshot (timed per query).
    let mut hits = 0;
    for i in 0..80 {
        if replica.try_answer(&query(&format!("0456{i:02}"))).is_some() {
            hits += 1;
        }
    }
    println!(
        "synced 40 updates over a lossy link ({} faults injected), answered {hits}/80 locally",
        link.faults_injected(),
    );

    // What the trace caught: show the recovery and selection events.
    println!("\n--- trace highlights ({} events buffered) ---", ring.len());
    for e in ring.events() {
        if e.target == "selection" || e.name == "redelivery" || e.name == "retry" {
            println!("  {e}");
        }
    }

    // The full registry export: counters and per-stage histograms for
    // containment, replica answering, resync and selection.
    let export = obs.registry().render_prometheus();
    println!("\n--- metrics export ---\n{export}");
    for required in [
        "fbdr_containment_check_ns",
        "fbdr_replica_try_answer_ns",
        "fbdr_resync_exchange_ns",
        "fbdr_selection_revolve_ns",
    ] {
        assert!(export.contains(required), "{required} missing from export");
    }

    // How much the instrumentation costs: compare try_answer with no Obs
    // attached (the branch-cheap disabled path) against active metrics
    // with no subscriber (histograms recorded, events skipped).
    let measure = |r: &FilterReplica| {
        let q = query("045605");
        let start = Instant::now();
        for _ in 0..20_000 {
            std::hint::black_box(r.try_answer(std::hint::black_box(&q)));
        }
        start.elapsed().as_nanos() as f64 / 20_000.0
    };
    let mut m_plain = SyncMaster::new();
    m_plain.dit_mut().add_suffix("o=xyz".parse()?);
    m_plain.dit_mut().add(Entry::new("o=xyz".parse()?))?;
    for i in 0..40 {
        m_plain.dit_mut().add(person(i))?;
    }
    let filt = SearchRequest::from_root(Filter::parse("(serialNumber=0456*)")?);
    let plain = FilterReplica::new(0);
    plain.install_filter(&mut m_plain, filt.clone())?;
    let active = FilterReplica::with_obs(0, Obs::new());
    active.install_filter(&mut m_plain, filt)?;
    let (off_ns, on_ns) = (measure(&plain), measure(&active));
    println!(
        "\ntry_answer: {off_ns:.0} ns disabled vs {on_ns:.0} ns with active metrics \
         ({:+.1}% for histograms; disabled path is one branch, no clock read)",
        (on_ns - off_ns) / off_ns * 100.0,
    );
    Ok(())
}
