//! The paper's running examples, exercised through the public facade.

use fbdr::dit::{DitStore, NamingContext};
use fbdr::net::{Network, Server};
use fbdr::prelude::*;

fn dn(s: &str) -> Dn {
    s.parse().expect("valid dn")
}

/// §3.1.2: semantic locality is not spatial locality — one filter answers
/// department queries whose result sets live in different country
/// subtrees.
#[test]
fn semantic_locality_spans_subtrees() {
    let mut master = SyncMaster::new();
    master.dit_mut().add_suffix(dn("o=xyz"));
    master.dit_mut().add(Entry::new(dn("o=xyz"))).expect("add root");
    for c in ["us", "in"] {
        master.dit_mut().add(Entry::new(dn(&format!("c={c},o=xyz")))).expect("add country");
    }
    for (cn, c, dept) in [("a", "us", "2406"), ("b", "in", "2407"), ("c", "us", "9900")] {
        master
            .dit_mut()
            .add(
                Entry::new(dn(&format!("cn={cn},c={c},o=xyz")))
                    .with("objectclass", "inetOrgPerson")
                    .with("departmentNumber", dept),
            )
            .expect("add person");
    }

    let mut repl = Replicator::new(master, 0);
    repl.install_filter(SearchRequest::from_root(
        Filter::parse("(&(objectclass=inetOrgPerson)(departmentNumber=240*))").expect("static"),
    ))
    .expect("install");

    for dept in ["2406", "2407"] {
        let q = SearchRequest::from_root(
            Filter::parse(&format!("(&(objectclass=inetOrgPerson)(departmentNumber={dept}))"))
                .expect("static"),
        );
        let (entries, served) = repl.search(&q);
        assert_eq!(served, ServedBy::Replica, "dept {dept} should hit");
        assert_eq!(entries.len(), 1);
    }
    let q = SearchRequest::from_root(
        Filter::parse("(&(objectclass=inetOrgPerson)(departmentNumber=9900))").expect("static"),
    );
    assert_eq!(repl.search(&q).1, ServedBy::Master);
}

/// §3.1.1: null-based queries are answerable by a filter replica but never
/// by a subtree replica.
#[test]
fn null_based_queries() {
    let mut dit = DitStore::new();
    dit.add_suffix(dn("o=xyz"));
    dit.add(Entry::new(dn("o=xyz"))).expect("add root");
    dit.add(Entry::new(dn("c=us,o=xyz"))).expect("add country");
    dit.add(
        Entry::new(dn("cn=a,c=us,o=xyz"))
            .with("objectclass", "person")
            .with("uid", "a"),
    )
    .expect("add person");

    // Subtree replica of c=us answers nothing root-based.
    let mut sub = SubtreeReplica::new();
    sub.replicate_context(&dit, NamingContext::new(dn("c=us,o=xyz")));
    let q = SearchRequest::from_root(Filter::parse("(uid=a)").expect("static"));
    assert!(sub.try_answer(&q).is_none());

    // Filter replica replicating a null-based query answers it.
    let mut repl = Replicator::new(SyncMaster::with_dit(dit), 0);
    repl.install_filter(SearchRequest::from_root(Filter::parse("(uid=*)").expect("static")))
        .expect("install");
    assert_eq!(repl.search(&q).1, ServedBy::Replica);
}

/// Figure 2 through the facade: referral chasing costs four round trips.
#[test]
fn figure2_four_round_trips() {
    let mut net = Network::new();
    let mut dit_a = DitStore::new();
    dit_a.add_suffix(dn("o=xyz"));
    dit_a.add(Entry::new(dn("o=xyz"))).expect("add");
    dit_a.add(Entry::new(dn("c=us,o=xyz"))).expect("add");
    dit_a.add(Entry::new(dn("cn=Fred Jones,c=us,o=xyz"))).expect("add");
    net.add_server(Server::new(
        "ldap://hostA",
        dit_a,
        vec![NamingContext::new(dn("o=xyz"))
            .with_referral(dn("ou=research,c=us,o=xyz"), "ldap://hostB")
            .with_referral(dn("c=in,o=xyz"), "ldap://hostC")],
        None,
    ));
    let mut dit_b = DitStore::new();
    dit_b.add_suffix(dn("ou=research,c=us,o=xyz"));
    dit_b.add(Entry::new(dn("ou=research,c=us,o=xyz"))).expect("add");
    net.add_server(Server::new(
        "ldap://hostB",
        dit_b,
        vec![NamingContext::new(dn("ou=research,c=us,o=xyz"))],
        Some("ldap://hostA".into()),
    ));
    let mut dit_c = DitStore::new();
    dit_c.add_suffix(dn("c=in,o=xyz"));
    dit_c.add(Entry::new(dn("c=in,o=xyz"))).expect("add");
    net.add_server(Server::new(
        "ldap://hostC",
        dit_c,
        vec![NamingContext::new(dn("c=in,o=xyz"))],
        Some("ldap://hostA".into()),
    ));

    let mut client = net.client();
    let req = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::match_all());
    let res = client.search("ldap://hostB", &req).expect("resolves");
    assert_eq!(res.stats.round_trips, 4);
}

/// Figure 3 through the facade: poll → poll → persist with exactly the
/// paper's action sequence.
#[test]
fn figure3_session_through_facade() {
    let mut m = SyncMaster::new();
    m.dit_mut().add_suffix(dn("o=xyz"));
    m.dit_mut().add(Entry::new(dn("o=xyz"))).expect("add");
    for cn in ["E1", "E2", "E3"] {
        m.dit_mut()
            .add(Entry::new(dn(&format!("cn={cn},o=xyz"))).with("dept", "7"))
            .expect("add");
    }
    let s = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::parse("(dept=7)").expect("ok"));
    let resp = m.resync(&s, ReSyncControl::poll(None)).expect("initial");
    assert_eq!(resp.actions.len(), 3);
    let cookie = resp.cookie.expect("cookie");

    m.apply(UpdateOp::Delete(dn("cn=E1,o=xyz"))).expect("delete");
    let resp = m.resync(&s, ReSyncControl::poll(Some(cookie))).expect("poll");
    assert_eq!(resp.actions, vec![SyncAction::Delete(dn("cn=E1,o=xyz"))]);

    let (_, rx) = m.resync_persist(&s, Some(cookie)).expect("persist");
    m.apply(UpdateOp::Add(Entry::new(dn("cn=E9,o=xyz")).with("dept", "7"))).expect("add");
    let notes: Vec<SyncAction> = rx.try_iter().flat_map(|b| b.actions).collect();
    assert_eq!(notes.len(), 1);
    assert!(matches!(&notes[0], SyncAction::Add(e) if e.dn() == &dn("cn=E9,o=xyz")));
}
