//! Cross-crate integration: a replica must never serve a *wrong* answer.
//!
//! For every query a synced filter replica answers locally, the result
//! must equal what the master would return — the soundness property that
//! justifies answering from the replica at all.

use fbdr::core::experiment::{replay_filter, ReplayConfig};
use fbdr::prelude::*;
use fbdr::selection::generalize::ValuePrefix;
use fbdr::workload::{TraceGenerator, UpdateGenerator};

fn small_world() -> (EnterpriseDirectory, Vec<fbdr::workload::TracedQuery>) {
    let dir = EnterpriseDirectory::generate(DirectoryConfig::small());
    let cfg = TraceConfig { queries: 1500, ..TraceConfig::default() };
    let trace = TraceGenerator::new(&dir, &cfg).generate(&dir, &cfg);
    (dir, trace)
}

#[test]
fn replica_hits_equal_master_answers() {
    let (dir, trace) = small_world();
    let master_truth = dir.dit().clone();
    let mut repl = Replicator::new(SyncMaster::with_dit(dir.dit().clone()), 0);
    repl.install_filter(SearchRequest::from_root(
        Filter::parse("(serialNumber=1000*)").expect("static"),
    ))
    .expect("install");
    repl.install_filter(SearchRequest::from_root(
        Filter::parse("(serialNumber=1001*)").expect("static"),
    ))
    .expect("install");

    let mut hits = 0;
    for tq in &trace {
        let (entries, served) = repl.search(&tq.request);
        let truth = master_truth.search(&tq.request);
        if served == ServedBy::Replica {
            hits += 1;
            assert_eq!(
                entries.len(),
                truth.len(),
                "replica answered {} with wrong cardinality",
                tq.request
            );
            let got: Vec<String> = entries.iter().map(|e| e.dn().to_string()).collect();
            let want: Vec<String> = truth.iter().map(|e| e.dn().to_string()).collect();
            assert_eq!(got, want, "replica answered {} with wrong entries", tq.request);
        } else {
            assert_eq!(entries.len(), truth.len());
        }
    }
    assert!(hits > 0, "the test should exercise the hit path");
}

#[test]
fn replica_stays_correct_across_updates_and_syncs() {
    let (dir, trace) = small_world();
    let updates = UpdateGenerator::new(&dir).generate(&UpdateConfig {
        ops: 200,
        ..UpdateConfig::default()
    });
    let mut repl = Replicator::new(SyncMaster::with_dit(dir.dit().clone()), 0);
    repl.install_filter(SearchRequest::from_root(
        Filter::parse("(serialNumber=100*)").expect("static"),
    ))
    .expect("install");

    let mut checked = 0;
    for (i, tq) in trace.iter().enumerate() {
        if i % 10 == 0 && i / 10 < updates.len() {
            let _ = repl.apply_update(updates[i / 10].clone());
            repl.sync().expect("sync");
        }
        // After a sync, hits must match the master exactly.
        let (entries, served) = repl.search(&tq.request);
        if served == ServedBy::Replica {
            let want = repl.master().dit().search(&tq.request);
            let got: Vec<String> = entries.iter().map(|e| e.dn().to_string()).collect();
            let want: Vec<String> = want.iter().map(|e| e.dn().to_string()).collect();
            assert_eq!(got, want, "stale/wrong replica answer for {}", tq.request);
            checked += 1;
        }
    }
    assert!(checked > 0, "the test should exercise the hit path");
}

#[test]
fn full_pipeline_smoke() {
    let (dir, trace) = small_world();
    let updates = UpdateGenerator::new(&dir).generate(&UpdateConfig {
        ops: 100,
        ..UpdateConfig::default()
    });
    let selector = FilterSelector::new(
        SelectorConfig { revolution_interval: 300, entry_budget: 200, max_candidates: 2048 },
        vec![Box::new(ValuePrefix::new("serialNumber", vec![5, 4]))],
    );
    let mut repl =
        Replicator::new(SyncMaster::with_dit(dir.dit().clone()), 50).with_selector(selector);
    let out = replay_filter(
        &mut repl,
        &trace,
        &updates,
        ReplayConfig { sync_every: 100, update_every: 15 },
    );
    assert_eq!(out.overall.queries, trace.len() as u64);
    assert!(out.overall.hits > 0, "dynamic selection should produce hits");
    assert!(out.revolutions > 0, "revolutions should fire");
    assert!(out.replica_entries <= 200 + 60, "budget roughly respected");
    assert!(out.updates_applied > 0);
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-time check that the prelude exposes the public API surface.
    let f: Filter = "(a=1)".parse().expect("filter parses");
    let (t, vals) = Template::of(&f);
    assert_eq!(t.id().as_str(), "(a=_)");
    assert_eq!(vals.len(), 1);
    let dn: Dn = "cn=a,o=b".parse().expect("dn parses");
    assert_eq!(dn.depth(), 2);
    assert!(fbdr::containment::filter_contained(&f, &f).is_contained());
}
