//! Several replicas of one master: ReSync sessions are independent, so
//! differently-scoped replicas (e.g. two geographies plus a department
//! replica) converge side by side and each pays only for its own content.

use fbdr::dit::{Modification, UpdateOp};
use fbdr::prelude::*;

fn person(cn: &str, c: &str, serial: &str, dept: &str) -> Entry {
    Entry::new(format!("cn={cn},c={c},o=xyz").parse().expect("valid dn"))
        .with("objectclass", "inetOrgPerson")
        .with("cn", cn)
        .with("serialNumber", serial)
        .with("departmentNumber", dept)
}

fn master() -> SyncMaster {
    let mut m = SyncMaster::new();
    m.dit_mut().add_suffix("o=xyz".parse().expect("dn"));
    m.dit_mut().add(Entry::new("o=xyz".parse().expect("dn"))).expect("add");
    for c in ["us", "in"] {
        m.dit_mut()
            .add(Entry::new(format!("c={c},o=xyz").parse().expect("dn")))
            .expect("add");
    }
    for i in 0..30 {
        let c = if i % 3 == 0 { "in" } else { "us" };
        m.dit_mut()
            .add(person(
                &format!("p{i:02}"),
                c,
                &format!("{:06}", 100_000 + i),
                &format!("{}", 2400 + i % 4),
            ))
            .expect("add");
    }
    m
}

fn root_q(f: &str) -> SearchRequest {
    SearchRequest::from_root(Filter::parse(f).expect("valid filter"))
}

#[test]
fn independent_replicas_converge_independently() {
    let mut m = master();

    // Replica A: a serial region. Replica B: one department.
    let a = FilterReplica::new(0);
    let b = FilterReplica::new(0);
    a.install_filter(&mut m, root_q("(serialNumber=10000*)")).expect("install");
    b.install_filter(&mut m, root_q("(departmentNumber=2401)")).expect("install");
    assert_eq!(m.session_count(), 2);
    let a0 = a.entry_count();
    let b0 = b.entry_count();
    assert!(a0 > 0 && b0 > 0);

    // p05 (dept 2401, serial 100005) gets a mail change: an in-content
    // modify for A's serial region *and* for B's department filter.
    m.apply(UpdateOp::Modify {
        dn: "cn=p05,c=us,o=xyz".parse().expect("dn"),
        mods: vec![Modification::Replace("mail".into(), vec!["p05@x".into()])],
    })
    .expect("apply");
    // p14 (serial 100014, outside A's 10000* region) moves into
    // department 2401: an add for B, invisible to A.
    m.apply(UpdateOp::Modify {
        dn: "cn=p14,c=us,o=xyz".parse().expect("dn"),
        mods: vec![Modification::Replace("departmentNumber".into(), vec!["2401".into()])],
    })
    .expect("apply");

    let ta = a.sync(&mut m).expect("sync a");
    let tb = b.sync(&mut m).expect("sync b");
    assert_eq!(ta.full_entries, 1); // p05 modified
    assert_eq!(tb.full_entries, 2); // p05 modified, p14 arrived
    assert_eq!(tb.dn_only, 0);

    // Each replica answers its own scope, correctly, after sync.
    let hit = a.try_answer(&root_q("(serialNumber=100005)")).expect("a hit");
    assert!(hit[0].has_value(&"mail".into(), &"p05@x".into()));
    let hit = b.try_answer(&root_q("(departmentNumber=2401)")).expect("b hit");
    assert_eq!(hit.len(), b0 + 1);
    // And neither answers the other's queries.
    assert!(b.try_answer(&root_q("(serialNumber=100005)")).is_none());
}

#[test]
fn removing_one_replica_leaves_others_untouched() {
    let mut m = master();
    let a = FilterReplica::new(0);
    let b = FilterReplica::new(0);
    let qa = root_q("(serialNumber=10000*)");
    a.install_filter(&mut m, qa.clone()).expect("install");
    b.install_filter(&mut m, root_q("(departmentNumber=2400)")).expect("install");
    assert_eq!(m.session_count(), 2);

    a.remove_filter(&mut m, &qa);
    assert_eq!(m.session_count(), 1);

    m.apply(UpdateOp::Add(person("new", "us", "100099", "2400"))).expect("apply");
    let tb = b.sync(&mut m).expect("sync b");
    assert_eq!(tb.full_entries, 1);
    assert!(b.try_answer(&root_q("(departmentNumber=2400)")).is_some());
}

#[test]
fn mixed_poll_and_persist_replicas() {
    let mut m = master();
    let polling = FilterReplica::new(0);
    let persistent = FilterReplica::new(0);
    polling.install_filter(&mut m, root_q("(departmentNumber=2402)")).expect("install");
    persistent
        .install_filter_persistent(&mut m, root_q("(departmentNumber=2402)"))
        .expect("install");

    m.apply(UpdateOp::Add(person("x", "in", "100090", "2402"))).expect("apply");

    // The persistent replica already has the change queued; the polling
    // one needs a poll.
    let t = persistent.drain_notifications();
    assert_eq!(t.full_entries, 1);
    let before = polling.try_answer(&root_q("(departmentNumber=2402)")).expect("hit").len();
    let after = persistent.try_answer(&root_q("(departmentNumber=2402)")).expect("hit").len();
    assert_eq!(after, before + 1);
    polling.sync(&mut m).expect("sync");
    let now = polling.try_answer(&root_q("(departmentNumber=2402)")).expect("hit").len();
    assert_eq!(now, after);
}
