//! Mid-trace filter swaps must never serve stale routing decisions.
//!
//! The replica memoizes containment decisions ("query q is answerable by
//! stored filter f" / "by nothing") per content epoch. Online selection
//! installs and evicts filters *between* queries of one trace, so a
//! memoized decision can be invalidated at any moment; these tests pin
//! down that every install/evict publishes a new epoch, the decision
//! cache drops stale entries on its first probe against the new epoch,
//! and answers stay exactly master-correct across swaps.

use fbdr::prelude::*;
use fbdr::selection::generalize::ValuePrefix;
use fbdr::selection::{OnlineConfig, OnlineSelector};

/// Two 20-entry serial regions: `0400xx` and `0500xx`.
fn master() -> SyncMaster {
    let mut m = SyncMaster::new();
    m.dit_mut().add_suffix("o=xyz".parse().unwrap());
    m.dit_mut().add(Entry::new("o=xyz".parse().unwrap())).unwrap();
    for region in [4u32, 5] {
        for i in 0..20u32 {
            m.dit_mut()
                .add(
                    Entry::new(format!("cn=e{region}x{i},o=xyz").parse().unwrap())
                        .with("objectclass", "person")
                        .with("serialNumber", &format!("0{region}00{i:02}")),
                )
                .unwrap();
        }
    }
    m
}

fn q(sn: &str) -> SearchRequest {
    SearchRequest::from_root(Filter::parse(&format!("(serialNumber={sn})")).unwrap())
}

fn prefix(p: &str) -> SearchRequest {
    SearchRequest::from_root(Filter::parse(&format!("(serialNumber={p}*)")).unwrap())
}

#[test]
fn install_invalidates_memoized_miss() {
    let mut m = master();
    let r = FilterReplica::new(0);
    r.install_filter(&mut m, prefix("0400")).unwrap();

    // A query outside the stored filter misses; the second identical
    // probe is answered from the decision cache.
    let probe = q("050007");
    assert!(r.try_answer(&probe).is_none());
    assert!(r.try_answer(&probe).is_none());
    assert!(r.decision_cache_stats().hits >= 1, "miss decision memoized");

    // Installing a covering filter publishes a new epoch…
    let epoch = r.epoch();
    r.install_filter(&mut m, prefix("0500")).unwrap();
    assert!(r.epoch() > epoch, "install must publish a new epoch");

    // …so the memoized "answerable by nothing" decision is dead: the
    // same query now answers locally, with the right content.
    let entries = r.try_answer(&probe).expect("covered after install");
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].dn().to_string(), "cn=e5x7,o=xyz");
}

#[test]
fn evict_invalidates_memoized_hit() {
    let mut m = master();
    let r = FilterReplica::new(0);
    r.install_filter(&mut m, prefix("0400")).unwrap();

    // A covered query hits; the repeat is a memoized routing decision.
    let probe = q("040013");
    assert_eq!(r.try_answer(&probe).expect("covered").len(), 1);
    assert_eq!(r.try_answer(&probe).expect("covered").len(), 1);
    assert!(r.decision_cache_stats().hits >= 1, "hit decision memoized");

    // Evicting the filter publishes a new epoch; the stale "answerable
    // by filter 0" decision must not produce a wrong (empty or partial)
    // local answer — the query has to fall through to a miss.
    let epoch = r.epoch();
    assert!(r.remove_filter(&mut m, &prefix("0400")));
    assert!(r.epoch() > epoch, "evict must publish a new epoch");
    assert!(r.try_answer(&probe).is_none(), "evicted region must miss");
}

#[test]
fn online_swap_keeps_every_answer_master_correct() {
    // An online selector with decay and a budget that fits only one of
    // the two regions: the hot set flips mid-trace, forcing a live
    // evict+install swap. Every single answer — before, during and after
    // the swap — must equal what the master would return.
    let selector = OnlineSelector::new(
        OnlineConfig {
            entry_budget: 25,
            step_every: 10,
            move_budget: 2,
            hysteresis: 0.0,
            decay: 0.5,
            upd_weight: 0.0,
            min_dwell_steps: 0,
            ..OnlineConfig::default()
        },
        vec![Box::new(ValuePrefix::new("serialNumber", vec![4]))],
    );
    let mut r = Replicator::new(master(), 0).with_online_selector(selector);

    let phase_a: Vec<SearchRequest> =
        (0..30).map(|i| q(&format!("0400{:02}", i % 5))).collect();
    let phase_b: Vec<SearchRequest> =
        (0..60).map(|i| q(&format!("0500{:02}", i % 5))).collect();
    for query in phase_a.iter().chain(&phase_b) {
        let expected = r.master().dit().search(query);
        let (got, _) = r.search(query);
        assert_eq!(got, expected, "stale answer for {query}");
    }

    // The swap actually happened: region B is resident, region A is not.
    assert_eq!(r.replica().filter_count(), 1, "budget fits one region");
    let (_, served) = r.search(&q("050003"));
    assert_eq!(served, ServedBy::Replica);
    let (_, served) = r.search(&q("040003"));
    assert_eq!(served, ServedBy::Master);
    let report = r.online_report().expect("online selector attached");
    assert!(report.installs >= 2, "A then B installed");
    assert!(report.evictions >= 1, "A evicted on the flip");
}
