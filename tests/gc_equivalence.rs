//! GC transparency: a master that aggressively collects garbage must be
//! observationally identical to one that never collects, for every live
//! session, at every poll boundary.
//!
//! Causal-stability GC reclaims replay buffers, posting-list slack,
//! reconcile stashes and interned ids strictly *below* the stability
//! watermark — state no live session can ever ask about again. If that
//! invariant holds, the wire protocol cannot tell the two masters apart:
//! same actions, same cookies, same replay on duplicate cookies, same
//! `ReplayExpired` on stale ones. This suite drives twin masters through
//! arbitrary interleavings of updates and polls (including a session
//! that goes silent through the churn and resumes right at the
//! watermark) and asserts byte-for-byte equal responses throughout.

use fbdr_ldap::{Entry, Filter, SearchRequest};
use fbdr_resync::{Cookie, GcConfig, ReSyncControl, SyncMaster};
use proptest::prelude::*;

const ENTRIES: usize = 16;

fn dn(i: usize) -> fbdr_ldap::Dn {
    format!("cn=g{i},o=xyz").parse().unwrap()
}

fn entry(i: usize, serial: &str) -> Entry {
    Entry::new(dn(i)).with("objectclass", "person").with("serialNumber", serial)
}

/// Serial inside the replicated filter region (`04*`) or outside it.
fn serial(in_filter: bool, i: usize) -> String {
    if in_filter {
        format!("04{i:04}")
    } else {
        format!("99{i:04}")
    }
}

fn filter_request() -> SearchRequest {
    SearchRequest::from_root(Filter::parse("(serialNumber=04*)").unwrap())
}

fn build_master() -> SyncMaster {
    let mut m = SyncMaster::new();
    m.dit_mut().add_suffix("o=xyz".parse().unwrap());
    m.dit_mut()
        .add(Entry::new("o=xyz".parse().unwrap()).with("objectclass", "organization"))
        .unwrap();
    for i in 0..ENTRIES {
        m.dit_mut().add(entry(i, &serial(i % 2 == 0, i))).unwrap();
    }
    m
}

/// Twin masters driven in lockstep: every mutation and every poll hits
/// both; every response pair must match.
struct Twins {
    /// Collects after every single op, with a tiny stash cap.
    gc: SyncMaster,
    /// Never collects anything.
    raw: SyncMaster,
    /// Per-session resumption cookies, one slot per scripted session.
    cookies: Vec<Option<Cookie>>,
}

impl Twins {
    fn new(sessions: usize) -> Self {
        let mut gc = build_master();
        gc.set_gc_config(GcConfig {
            session_deadline_ms: None,
            stash_max_items: 8,
            every_ops: Some(1),
        });
        let raw = build_master();
        // `GcConfig::disabled()` is the default for a master nobody
        // configures, but spell it out: this arm must never reclaim.
        let mut raw = raw;
        raw.set_gc_config(GcConfig::disabled());
        Twins { gc, raw, cookies: vec![None; sessions] }
    }

    fn apply(&mut self, op: fbdr_dit::UpdateOp) {
        // Deleting absent entries / re-adding present ones no-ops the
        // same way on both arms.
        let a = self.gc.apply(op.clone());
        let b = self.raw.apply(op);
        assert_eq!(a.is_ok(), b.is_ok());
    }

    /// Polls session `s` on both masters and asserts identical
    /// responses; on success, both cookies advance in lockstep.
    fn poll(&mut self, s: usize, redeliver: bool) -> Result<(), TestCaseError> {
        let req = filter_request();
        let ctl = ReSyncControl::poll(self.cookies[s]);
        let a = self.gc.resync(&req, ctl);
        let b = self.raw.resync(&req, ctl);
        prop_assert_eq!(&a, &b, "poll diverged for session {}", s);
        if redeliver {
            // A duplicate of the *same* cookie must replay the same
            // batch on both arms — the GC'd master may not have
            // compacted the replay buffer out from under the retry.
            let a2 = self.gc.resync(&req, ctl);
            let b2 = self.raw.resync(&req, ctl);
            prop_assert_eq!(&a2, &b2, "redelivery diverged for session {}", s);
        }
        if let Ok(resp) = a {
            self.cookies[s] = resp.cookie.or(self.cookies[s]);
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]
    #[test]
    fn gc_master_is_indistinguishable_from_ungcd_master(
        steps in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..120),
    ) {
        let mut twins = Twins::new(3);

        // All three sessions install up front. Session 2 then goes
        // silent for the whole script: its stable-at pins the
        // watermark, and it resumes only at the end — exactly at the
        // watermark, the oldest state any live session may demand.
        for s in 0..3 {
            twins.poll(s, false)?;
        }

        for (kind, idx, flag) in steps {
            let i = idx as usize % ENTRIES;
            match kind % 8 {
                // Delete-heavy churn: departures are what feed the
                // per-session `departed` lists GC compacts.
                0 | 1 => twins.apply(fbdr_dit::UpdateOp::Delete(dn(i))),
                2 | 3 => twins.apply(fbdr_dit::UpdateOp::Add(entry(i, &serial(flag, i)))),
                4 => twins.apply(fbdr_dit::UpdateOp::Modify {
                    dn: dn(i),
                    mods: vec![fbdr_dit::Modification::Replace(
                        "serialNumber".into(),
                        vec![serial(flag, i).into()],
                    )],
                }),
                5 => twins.poll(0, flag)?,
                6 => twins.poll(1, flag)?,
                // Fresh DNs stress id recycling: slots freed by the
                // deletes above get reused under new generations.
                _ => {
                    twins.apply(fbdr_dit::UpdateOp::Add(entry(
                        ENTRIES + i,
                        &serial(flag, ENTRIES + i),
                    )));
                    if flag {
                        twins.apply(fbdr_dit::UpdateOp::Delete(dn(ENTRIES + i)));
                    }
                }
            }
        }

        // The silent session resumes right at the watermark...
        twins.poll(2, true)?;
        // ...and every session drains to quiescence identically.
        for s in 0..3 {
            twins.poll(s, true)?;
            twins.poll(s, false)?;
        }

        // GC actually did something to earn the name: the raw arm's
        // table still carries every id it ever interned, the collected
        // arm's carries at most that (usually much less).
        let (g, r) = (twins.gc.memory_footprint(), twins.raw.memory_footprint());
        prop_assert!(g.table_capacity <= r.table_capacity);
        prop_assert!(g.table_live <= r.table_live);
    }
}
