//! Thread-safety: one network (master + replica node) serving concurrent
//! clients, lock-free `&self` query answering, epoch consistency under a
//! faulty concurrent writer, and Send/Sync guarantees on the core types
//! (C-SEND-SYNC).

use fbdr::core::deploy::ReplicaNode;
use fbdr::dit::{DitStore, NamingContext};
use fbdr::net::Network;
use fbdr::prelude::*;
use fbdr_faults::{FaultPlan, FaultyLink, SimClock};
use fbdr_resync::{RetryConfig, SyncDriver};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn send_sync_markers() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DitStore>();
    assert_send_sync::<SyncMaster>();
    assert_send_sync::<Network>();
    assert_send_sync::<Entry>();
    assert_send_sync::<Filter>();
    assert_send_sync::<SearchRequest>();
    assert_send_sync::<FilterReplica>();
    assert_send_sync::<SubtreeReplica>();
    assert_send_sync::<fbdr::replica::AtomicReplicaStats>();
    assert_send_sync::<fbdr::containment::ContainmentEngine>();
}

/// Acceptance shape of the read/write split: `try_answer(&self)` is
/// called concurrently from plain shared references — no `Mutex`, no
/// `RwLock`, no cloning — and the atomic statistics come out exact.
#[test]
fn concurrent_try_answer_without_external_lock() {
    let mut dit = DitStore::new();
    dit.add_suffix("o=xyz".parse().expect("dn"));
    dit.add(Entry::new("o=xyz".parse().expect("dn")).with("objectclass", "organization"))
        .expect("add");
    for i in 0..100 {
        dit.add(
            Entry::new(format!("cn=p{i},o=xyz").parse().expect("dn"))
                .with("objectclass", "person")
                .with("serialNumber", &format!("{:06}", 400_000 + i)),
        )
        .expect("add");
    }
    let mut master = SyncMaster::with_dit(dit);
    let replica = FilterReplica::new(0);
    replica
        .install_filter(
            &mut master,
            SearchRequest::from_root(Filter::parse("(serialNumber=4000*)").expect("ok")),
        )
        .expect("install");

    const THREADS: usize = 4;
    const PER_THREAD: usize = 250;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let replica = &replica; // shared &FilterReplica, nothing else
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let serial = 400_000 + (t * 31 + i * 7) % 200; // half in, half out
                    let q = SearchRequest::from_root(
                        Filter::parse(&format!("(serialNumber={serial:06})")).expect("ok"),
                    );
                    let answer = replica.try_answer(&q);
                    if serial < 400_100 {
                        // The 4000xx block (100 serials) is replicated.
                        assert_eq!(answer.expect("contained query hits").len(), 1);
                    } else {
                        assert!(answer.is_none(), "serial {serial} is outside the filter");
                    }
                }
            });
        }
    });

    // Relaxed counters are individually exact once the readers quiesce.
    let stats = replica.stats();
    assert_eq!(stats.queries, (THREADS * PER_THREAD) as u64);
    let expected_hits: u64 = (0..THREADS)
        .flat_map(|t| (0..PER_THREAD).map(move |i| (t * 31 + i * 7) % 200))
        .filter(|&off| off < 100)
        .count() as u64;
    assert_eq!(stats.hits, expected_hits);
    assert_eq!(stats.generalized_hits, expected_hits);
}

/// Readers hammer `try_answer` while a writer runs `sync_with` cycles
/// through a seeded faulty link. Every group's members are updated to a
/// new version *together* and shipped in one sync batch, so a reader must
/// never observe a mixed-version group — that would be a torn read across
/// epochs. After the faults quiesce, the replica must converge with the
/// master.
#[test]
fn readers_see_consistent_epochs_under_faulty_sync() {
    const GROUPS: usize = 5;
    const MEMBERS: usize = 4;
    const ROUNDS: usize = 120;

    let mut master = SyncMaster::new();
    master.dit_mut().add_suffix("o=xyz".parse().expect("dn"));
    master
        .dit_mut()
        .add(Entry::new("o=xyz".parse().expect("dn")).with("objectclass", "organization"))
        .expect("add");
    for g in 0..GROUPS {
        for m in 0..MEMBERS {
            master
                .dit_mut()
                .add(
                    Entry::new(format!("cn=g{g}m{m},o=xyz").parse().expect("dn"))
                        .with("objectclass", "person")
                        .with("grp", &format!("g{g}"))
                        .with("ver", "v0"),
                )
                .expect("add");
        }
    }

    let group_query = |g: usize| {
        SearchRequest::from_root(Filter::parse(&format!("(grp=g{g})")).expect("ok"))
    };

    let replica = FilterReplica::new(0);
    for g in 0..GROUPS {
        replica.install_filter(&mut master, group_query(g)).expect("install");
    }

    // Seeded fault schedule: drops and duplicates, deterministic per run.
    let plan = FaultPlan::builder(0xE70C_5EED)
        .drop_request(0.15)
        .drop_response(0.15)
        .duplicate(0.10)
        .latency_ms(1, 5)
        .build();
    let clock = SimClock::new();
    let mut link = FaultyLink::new(master, plan, clock.clone());
    let mut driver = SyncDriver::with_clock(
        RetryConfig {
            max_retries: 2,
            base_backoff_ms: 10,
            max_backoff_ms: 40,
            jitter_seed: 7,
            ..RetryConfig::default()
        },
        clock,
    );

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Readers: no external lock, just &replica.
        for t in 0..3 {
            let replica = &replica;
            let done = &done;
            s.spawn(move || {
                let mut answered = 0u64;
                let mut i = t; // stagger the group each thread starts on
                while !done.load(Ordering::Relaxed) {
                    let g = i % GROUPS;
                    i += 1;
                    let Some(entries) = replica.try_answer(&group_query(g)) else {
                        continue; // a stale-marked miss is impossible here,
                                  // but don't assert liveness mid-outage
                    };
                    answered += 1;
                    assert_eq!(entries.len(), MEMBERS, "group g{g} must be complete");
                    let vers: Vec<&str> = entries
                        .iter()
                        .map(|e| {
                            e.first_value(&"ver".into())
                                .expect("every member has a ver")
                                .raw()
                        })
                        .collect();
                    assert!(
                        vers.windows(2).all(|w| w[0] == w[1]),
                        "torn read: group g{g} answered with mixed versions {vers:?}"
                    );
                }
                answered
            });
        }

        // Writer: bump every member of every group to v{round}, then one
        // sync cycle — each published epoch holds whole rounds only.
        for round in 1..=ROUNDS {
            for g in 0..GROUPS {
                for m in 0..MEMBERS {
                    link.master_mut()
                        .apply(UpdateOp::Modify {
                            dn: format!("cn=g{g}m{m},o=xyz").parse().expect("dn"),
                            mods: vec![Modification::Replace(
                                "ver".into(),
                                vec![format!("v{round}").into()],
                            )],
                        })
                        .expect("apply");
                }
            }
            replica
                .sync_with(&mut link, &mut driver)
                .expect("only non-transient errors may surface");
        }

        // Faults cease; clean cycles must converge the replica.
        link.quiesce();
        for _ in 0..3 {
            replica.sync_with(&mut link, &mut driver).expect("clean cycle");
        }
        done.store(true, Ordering::Relaxed);
    });

    assert_eq!(replica.stale_filter_count(), 0, "still stale after quiesce");
    for g in 0..GROUPS {
        let mut want = link.master().dit().search(&group_query(g));
        want.sort_by(|a, b| a.dn().cmp(b.dn()));
        let mut got = replica.try_answer(&group_query(g)).expect("stored filter answers");
        got.sort_by(|a, b| a.dn().cmp(b.dn()));
        assert_eq!(got, want, "group g{g} diverged from the master after quiesce");
        let final_ver = format!("v{ROUNDS}");
        assert!(
            got.iter()
                .all(|e| e.first_value(&"ver".into()).map(fbdr::ldap::AttrValue::raw)
                    == Some(final_ver.as_str())),
            "group g{g} missing the final round"
        );
    }
    // The readers actually raced the writer.
    assert!(replica.stats().queries > 0);
}

/// The metrics registry uses `Relaxed` atomics throughout — cheap on the
/// hot path — which is only sound because nothing reads a *relationship*
/// between counters mid-flight. This pins the contract the relaxation
/// relies on: once the writer threads quiesce (joined), every counter and
/// histogram holds the exact total, and a replica's stats snapshot equals
/// the registry's view of the same counters.
#[test]
fn registry_counters_are_exact_after_quiesce() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 10_000;

    // Raw registry: all threads hammer the same counter, gauge and
    // histogram handles.
    let reg = MetricsRegistry::new();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let reg = &reg;
            s.spawn(move || {
                let c = reg.counter("chaos_total");
                let g = reg.gauge("water_level");
                let h = reg.histogram("lap_ns");
                for i in 0..PER_THREAD {
                    c.inc();
                    g.add(1);
                    h.record((t * PER_THREAD + i) as u64);
                }
            });
        }
    });
    assert_eq!(reg.counter("chaos_total").get(), (THREADS * PER_THREAD) as u64);
    assert_eq!(reg.gauge("water_level").get(), (THREADS * PER_THREAD) as i64);
    let lap = reg.snapshot().histograms["lap_ns"].clone();
    assert_eq!(lap.count, (THREADS * PER_THREAD) as u64);
    assert_eq!(lap.max, (THREADS * PER_THREAD - 1) as u64);

    // Through the stack: an obs-bound replica answering from many threads
    // must report the same exact totals via `stats()` (the atomic
    // snapshot) and via the registry export (the same Arc<Counter>s).
    let obs = Obs::new();
    let mut master = SyncMaster::new();
    master.dit_mut().add_suffix("o=xyz".parse().expect("dn"));
    master
        .dit_mut()
        .add(Entry::new("o=xyz".parse().expect("dn")).with("objectclass", "organization"))
        .expect("add");
    master
        .dit_mut()
        .add(
            Entry::new("cn=p,o=xyz".parse().expect("dn"))
                .with("objectclass", "person")
                .with("serialNumber", "400000"),
        )
        .expect("add");
    let replica = FilterReplica::with_obs(0, obs.clone());
    replica
        .install_filter(
            &mut master,
            SearchRequest::from_root(Filter::parse("(serialNumber=4*)").expect("ok")),
        )
        .expect("install");
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let replica = &replica;
            s.spawn(move || {
                let q = SearchRequest::from_root(
                    Filter::parse("(serialNumber=400000)").expect("ok"),
                );
                for _ in 0..PER_THREAD / 10 {
                    assert_eq!(replica.try_answer(&q).expect("contained").len(), 1);
                }
            });
        }
    });
    let queries = (THREADS * (PER_THREAD / 10)) as u64;
    assert_eq!(replica.stats().queries, queries);
    assert_eq!(replica.stats().hits, queries);
    let reg = obs.registry();
    assert_eq!(reg.counter("fbdr_replica_queries_total").get(), queries);
    assert_eq!(reg.counter("fbdr_replica_hits_total").get(), queries);
    assert_eq!(reg.histogram("fbdr_replica_try_answer_ns").count(), queries);
}

#[test]
fn concurrent_clients_share_one_network() {
    // Master with 500 people; replica holding one serial block.
    let mut dit = DitStore::new();
    dit.add_suffix("o=xyz".parse().expect("dn"));
    dit.add(Entry::new("o=xyz".parse().expect("dn")).with("objectclass", "organization"))
        .expect("add");
    for i in 0..500 {
        dit.add(
            Entry::new(format!("cn=e{i},o=xyz").parse().expect("dn"))
                .with("objectclass", "person")
                .with("serialNumber", &format!("{:06}", 100_000 + i)),
        )
        .expect("add");
    }
    let mut master = SyncMaster::with_dit(dit.clone());
    let replica = FilterReplica::new(0);
    replica
        .install_filter(
            &mut master,
            SearchRequest::from_root(Filter::parse("(serialNumber=1000*)").expect("ok")),
        )
        .expect("install");

    let mut net = Network::new();
    net.add_server(fbdr::net::Server::new(
        "ldap://master",
        dit,
        vec![NamingContext::new("o=xyz".parse().expect("dn"))],
        None,
    ));
    net.add_service(Box::new(ReplicaNode::new("ldap://replica", replica, "ldap://master")));
    let net = Arc::new(net);

    let mut handles = Vec::new();
    for t in 0..8 {
        let net = Arc::clone(&net);
        handles.push(std::thread::spawn(move || {
            let mut client = net.client();
            let mut hits = 0u64;
            for i in 0..200 {
                let serial = 100_000 + (t * 37 + i * 13) % 500;
                let q = SearchRequest::from_root(
                    Filter::parse(&format!("(serialNumber={serial:06})")).expect("ok"),
                );
                let res = client.search("ldap://replica", &q).expect("resolves");
                assert_eq!(res.entries.len(), 1, "serial {serial} must resolve");
                if res.stats.round_trips == 1 {
                    hits += 1;
                }
            }
            hits
        }));
    }
    let total_hits: u64 = handles.into_iter().map(|h| h.join().expect("no panics")).sum();
    // The 1000xx block is 100 of 500 serials: roughly 20% one-round-trip
    // hits across all threads.
    assert!(total_hits > 0, "replica should serve some queries");
    let total = 8 * 200;
    let ratio = total_hits as f64 / total as f64;
    assert!((0.1..0.4).contains(&ratio), "hit ratio {ratio} out of expected band");
}
