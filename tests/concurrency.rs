//! Thread-safety: one network (master + replica node) serving concurrent
//! clients, and Send/Sync guarantees on the core types (C-SEND-SYNC).

use fbdr::core::deploy::ReplicaNode;
use fbdr::dit::{DitStore, NamingContext};
use fbdr::net::Network;
use fbdr::prelude::*;
use std::sync::Arc;

#[test]
fn send_sync_markers() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DitStore>();
    assert_send_sync::<SyncMaster>();
    assert_send_sync::<Network>();
    assert_send_sync::<Entry>();
    assert_send_sync::<Filter>();
    assert_send_sync::<SearchRequest>();
    assert_send_sync::<SubtreeReplica>();
    assert_send_sync::<fbdr::containment::ContainmentEngine>();
}

#[test]
fn concurrent_clients_share_one_network() {
    // Master with 500 people; replica holding one serial block.
    let mut dit = DitStore::new();
    dit.add_suffix("o=xyz".parse().expect("dn"));
    dit.add(Entry::new("o=xyz".parse().expect("dn")).with("objectclass", "organization"))
        .expect("add");
    for i in 0..500 {
        dit.add(
            Entry::new(format!("cn=e{i},o=xyz").parse().expect("dn"))
                .with("objectclass", "person")
                .with("serialNumber", &format!("{:06}", 100_000 + i)),
        )
        .expect("add");
    }
    let mut master = SyncMaster::with_dit(dit.clone());
    let mut replica = FilterReplica::new(0);
    replica
        .install_filter(
            &mut master,
            SearchRequest::from_root(Filter::parse("(serialNumber=1000*)").expect("ok")),
        )
        .expect("install");

    let mut net = Network::new();
    net.add_server(fbdr::net::Server::new(
        "ldap://master",
        dit,
        vec![NamingContext::new("o=xyz".parse().expect("dn"))],
        None,
    ));
    net.add_service(Box::new(ReplicaNode::new("ldap://replica", replica, "ldap://master")));
    let net = Arc::new(net);

    let mut handles = Vec::new();
    for t in 0..8 {
        let net = Arc::clone(&net);
        handles.push(std::thread::spawn(move || {
            let mut client = net.client();
            let mut hits = 0u64;
            for i in 0..200 {
                let serial = 100_000 + (t * 37 + i * 13) % 500;
                let q = SearchRequest::from_root(
                    Filter::parse(&format!("(serialNumber={serial:06})")).expect("ok"),
                );
                let res = client.search("ldap://replica", &q).expect("resolves");
                assert_eq!(res.entries.len(), 1, "serial {serial} must resolve");
                if res.stats.round_trips == 1 {
                    hits += 1;
                }
            }
            hits
        }));
    }
    let total_hits: u64 = handles.into_iter().map(|h| h.join().expect("no panics")).sum();
    // The 1000xx block is 100 of 500 serials: roughly 20% one-round-trip
    // hits across all threads.
    assert!(total_hits > 0, "replica should serve some queries");
    let total = 8 * 200;
    let ratio = total_hits as f64 / total as f64;
    assert!((0.1..0.4).contains(&ratio), "hit ratio {ratio} out of expected band");
}
