//! Chaos suite: seeded fault schedules against the full sync stack.
//!
//! Each run wires a [`FilterReplica`] to a [`SyncMaster`] through a
//! [`FaultyLink`] (dropped requests/responses, duplicates, crashes,
//! persist disconnects, latency) and a retrying [`SyncDriver`] on
//! simulated time, applies a seed-derived update workload, then lets the
//! faults quiesce and checks the replica **converged**: its content
//! equals the master's evaluation of the stored filter, and no deletion
//! was lost. The same seed always produces the same schedule, so any
//! failure here is replayable with `chaos_run(seed)`.

use fbdr_faults::{FaultKind, FaultPlan, FaultyLink, SimClock};
use fbdr_ldap::{Entry, Filter, SearchRequest};
use fbdr_replica::FilterReplica;
use fbdr_resync::{ReconcileConfig, RetryConfig, SyncDriver, SyncMaster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

const ENTRIES: usize = 24;
const UPDATES: usize = 40;

fn dn(i: usize) -> fbdr_ldap::Dn {
    format!("cn=e{i},o=xyz").parse().unwrap()
}

fn entry(i: usize, serial: &str) -> Entry {
    Entry::new(dn(i)).with("objectclass", "person").with("serialNumber", serial)
}

/// Serial inside the replicated filter region (`04*`) or outside it.
fn serial(in_filter: bool, i: usize) -> String {
    if in_filter {
        format!("04{i:04}")
    } else {
        format!("99{i:04}")
    }
}

fn filter_request() -> SearchRequest {
    SearchRequest::from_root(Filter::parse("(serialNumber=04*)").unwrap())
}

fn build_master() -> SyncMaster {
    let mut m = SyncMaster::new();
    m.dit_mut().add_suffix("o=xyz".parse().unwrap());
    m.dit_mut()
        .add(Entry::new("o=xyz".parse().unwrap()).with("objectclass", "organization"))
        .unwrap();
    for i in 0..ENTRIES {
        m.dit_mut().add(entry(i, &serial(i % 2 == 0, i))).unwrap();
    }
    m
}

/// What one chaos run did, for aggregate assertions over the suite.
#[derive(Debug, Default)]
struct RunReport {
    faults_injected: u64,
    redeliveries: u64,
    recovered: u64,
    reconciliations: u64,
    reinstalls: u64,
    exhausted: u64,
    poll_fallbacks: u64,
}

/// Drives one full fault schedule; panics if the replica fails to
/// converge after the faults cease.
fn chaos_run(seed: u64) -> RunReport {
    let mut plan = FaultPlan::builder(seed)
        .drop_request(0.12)
        .drop_response(0.12)
        .duplicate(0.08)
        .crash_restart(0.04)
        .disconnect_persist(0.05)
        .latency_ms(1, 10);
    if seed % 5 == 0 {
        // A scripted outage long enough to exhaust one exchange's whole
        // retry budget (1 try + 2 retries), forcing a stale cycle.
        for op in 6..9 {
            plan = plan.at(op, FaultKind::DropRequest);
        }
    }
    let clock = SimClock::new();
    let mut master = build_master();
    if seed % 3 == 0 {
        // Aggressive replay expiry: a batch missed across a cycle
        // boundary is gone and the filter must recover — by digest
        // reconciliation normally, or by reinstall on the seeds whose
        // divergence budget is zero (below).
        master.set_replay_expiry_ops(0);
    }

    let replica = FilterReplica::new(0);
    let persist = seed % 4 == 0;
    if persist {
        replica.install_filter_persistent(&mut master, filter_request()).unwrap();
    } else {
        replica.install_filter(&mut master, filter_request()).unwrap();
    }

    let mut link = FaultyLink::new(master, plan.build(), clock.clone());
    let mut driver = SyncDriver::with_clock(
        RetryConfig {
            max_retries: 2,
            base_backoff_ms: 10,
            max_backoff_ms: 40,
            timeout_budget_ms: 10_000,
            jitter_seed: seed,
        },
        clock,
    );
    if seed % 6 == 0 {
        // A sixth of the schedules forbid reconciliation outright, so the
        // suite keeps exercising the reinstall rung of the ladder too.
        driver =
            driver.with_reconcile(ReconcileConfig { divergence_budget: 0, ..Default::default() });
    }

    // Seed-derived workload: toggle entries across the filter boundary,
    // delete and re-add them, syncing every `cadence` updates.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD_EF01);
    let mut present: Vec<bool> = vec![true; ENTRIES];
    let mut in_filter: Vec<bool> = (0..ENTRIES).map(|i| i % 2 == 0).collect();
    let mut deleted: BTreeSet<usize> = BTreeSet::new();
    let cadence = 1 + (seed as usize % 3);
    for step in 0..UPDATES {
        let i = rng.gen_range(0..ENTRIES);
        let roll: f64 = rng.gen();
        let op = if !present[i] {
            in_filter[i] = roll < 0.5;
            fbdr_dit::UpdateOp::Add(entry(i, &serial(in_filter[i], i)))
        } else if roll < 0.25 {
            fbdr_dit::UpdateOp::Delete(dn(i))
        } else {
            in_filter[i] = !in_filter[i];
            fbdr_dit::UpdateOp::Modify {
                dn: dn(i),
                mods: vec![fbdr_dit::Modification::Replace(
                    "serialNumber".into(),
                    vec![serial(in_filter[i], i).into()],
                )],
            }
        };
        match &op {
            fbdr_dit::UpdateOp::Delete(_) => {
                present[i] = false;
                deleted.insert(i);
            }
            fbdr_dit::UpdateOp::Add(_) => {
                present[i] = true;
                deleted.remove(&i);
            }
            _ => {}
        }
        link.master_mut().apply(op).unwrap();
        if step % cadence == 0 {
            replica.drain_notifications();
            replica
                .sync_with(&mut link, &mut driver)
                .expect("only non-transient errors may surface");
        }
    }

    // Faults cease; a few clean cycles must fully converge the replica.
    link.quiesce();
    for _ in 0..3 {
        replica.drain_notifications();
        replica.sync_with(&mut link, &mut driver).expect("clean cycle");
    }
    assert_eq!(replica.stale_filter_count(), 0, "seed {seed}: still stale after quiesce");

    // Convergence: the replica's answer equals the master's evaluation.
    let request = filter_request();
    let mut want = link.master().dit().search(&request);
    want.sort_by(|a, b| a.dn().cmp(b.dn()));
    let mut got = replica.try_answer(&request).expect("stored filter answers its own query");
    got.sort_by(|a, b| a.dn().cmp(b.dn()));
    assert_eq!(got, want, "seed {seed}: replica diverged from master");

    // Zero lost deletions: nothing deleted at the master survives in the
    // replica's content.
    for &i in &deleted {
        assert!(
            !got.iter().any(|e| e.dn() == &dn(i)),
            "seed {seed}: deleted entry e{i} still served by the replica"
        );
    }

    let d = driver.stats();
    RunReport {
        faults_injected: link.faults_injected(),
        redeliveries: link.master().redeliveries(),
        recovered: d.recovered,
        reconciliations: d.reconciliations,
        reinstalls: d.reinstalls,
        exhausted: d.exhausted,
        poll_fallbacks: replica.stats().poll_fallbacks,
    }
}

#[test]
fn hundred_seeded_fault_schedules_converge() {
    let mut total = RunReport::default();
    for seed in 0..100 {
        let r = chaos_run(seed);
        total.faults_injected += r.faults_injected;
        total.redeliveries += r.redeliveries;
        total.recovered += r.recovered;
        total.reconciliations += r.reconciliations;
        total.reinstalls += r.reinstalls;
        total.exhausted += r.exhausted;
        total.poll_fallbacks += r.poll_fallbacks;
    }
    // The suite must actually exercise the machinery it verifies —
    // every recovery path fires somewhere across the hundred schedules.
    assert!(total.faults_injected > 100, "faults were injected: {total:?}");
    assert!(total.redeliveries > 0, "replay buffer was used: {total:?}");
    assert!(total.recovered > 0, "driver retries recovered exchanges: {total:?}");
    assert!(total.exhausted > 0, "some exchanges exhausted their budget: {total:?}");
    assert!(total.reconciliations > 0, "expired sessions were reconciled: {total:?}");
    assert!(total.reinstalls > 0, "zero-budget seeds fell back to reinstall: {total:?}");
    assert!(total.poll_fallbacks > 0, "persist filters fell back to polling: {total:?}");
}

/// The divergence the replay buffer exists to prevent: with replay
/// disabled (the pre-fix fire-and-forget semantics) the same fault
/// schedules lose unacknowledged batches for good, and some replica ends
/// up serving entries the master has deleted or moved out of the filter.
#[test]
fn legacy_fire_and_forget_diverges_where_fixed_mode_converges() {
    let mut divergent = 0;
    for seed in 0..20 {
        let plan = FaultPlan::builder(seed).drop_response(0.35).build();
        let clock = SimClock::new();
        let mut master = build_master();
        master.disable_replay();
        let replica = FilterReplica::new(0);
        replica.install_filter(&mut master, filter_request()).unwrap();
        let mut link = FaultyLink::new(master, plan, clock.clone());
        let mut driver = SyncDriver::with_clock(
            RetryConfig { max_retries: 2, base_backoff_ms: 10, jitter_seed: seed, ..RetryConfig::default() },
            clock,
        );

        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD_EF01);
        for step in 0..UPDATES {
            let i = rng.gen_range(0..ENTRIES);
            let roll: f64 = rng.gen();
            // Deletions and boundary moves only — the updates a lost
            // batch can never make up for without replay.
            let op = if roll < 0.5 {
                fbdr_dit::UpdateOp::Delete(dn(i))
            } else {
                fbdr_dit::UpdateOp::Modify {
                    dn: dn(i),
                    mods: vec![fbdr_dit::Modification::Replace(
                        "serialNumber".into(),
                        vec![serial(false, i).into()],
                    )],
                }
            };
            // Entries may already be gone; ignore no-op failures.
            let _ = link.master_mut().apply(op);
            if step % 2 == 0 {
                let _ = replica.sync_with(&mut link, &mut driver);
            }
        }
        link.quiesce();
        for _ in 0..3 {
            replica.sync_with(&mut link, &mut driver).expect("clean cycle");
        }

        let request = filter_request();
        let mut want = link.master().dit().search(&request);
        want.sort_by(|a, b| a.dn().cmp(b.dn()));
        let mut got = replica.try_answer(&request).unwrap_or_default();
        got.sort_by(|a, b| a.dn().cmp(b.dn()));
        if got != want {
            divergent += 1;
        }
    }
    assert!(
        divergent > 0,
        "fire-and-forget must lose batches under a 35% response-loss schedule"
    );
}

/// The observability layer sees the same chaos three ways: the master's
/// own redelivery count, the `fbdr_resync_*` registry counters, and the
/// `resync.redelivery` / `driver.retry` events caught by a ring-buffer
/// subscriber must all agree on a seeded drop schedule.
#[test]
fn trace_events_and_counters_agree_under_response_loss() {
    use fbdr_obs::{Obs, RingBuffer};
    use std::sync::Arc;

    let obs = Obs::new();
    let ring = Arc::new(RingBuffer::new(16_384));
    obs.set_subscriber(ring.clone());

    let clock = SimClock::new();
    let mut master = build_master();
    master.set_obs(obs.clone());
    let replica = FilterReplica::with_obs(0, obs.clone());
    replica.install_filter(&mut master, filter_request()).unwrap();
    // Installation performs one fresh exchange directly against the
    // master; count driver-era requests from here.
    let requests_at_install = obs.registry().counter("fbdr_resync_requests_total").get();

    let plan = FaultPlan::builder(42).drop_response(0.35).build();
    let mut link = FaultyLink::new(master, plan, clock.clone());
    let mut driver = SyncDriver::with_clock(
        RetryConfig { max_retries: 3, base_backoff_ms: 10, jitter_seed: 42, ..RetryConfig::default() },
        clock,
    )
    .with_obs(obs.clone());

    let mut rng = StdRng::seed_from_u64(42);
    for step in 0..UPDATES {
        let i = rng.gen_range(0..ENTRIES);
        let _ = link.master_mut().apply(fbdr_dit::UpdateOp::Modify {
            dn: dn(i),
            mods: vec![fbdr_dit::Modification::Replace(
                "serialNumber".into(),
                vec![serial(rng.gen::<bool>(), i).into()],
            )],
        });
        if step % 2 == 0 {
            replica.sync_with(&mut link, &mut driver).expect("retries absorb the loss");
        }
    }
    link.quiesce();
    replica.sync_with(&mut link, &mut driver).expect("clean cycle");

    // Redeliveries: master bookkeeping == registry counter == trace events.
    let redeliveries = link.master().redeliveries();
    assert!(redeliveries > 0, "the schedule must exercise the replay buffer");
    let reg = obs.registry();
    assert_eq!(reg.counter("fbdr_resync_redeliveries_total").get(), redeliveries);
    assert_eq!(ring.count("resync", "redelivery") as u64, redeliveries);

    // Retries: driver stats == registry counter == trace events.
    let retries = driver.stats().retries;
    assert!(retries > 0);
    assert_eq!(reg.counter("fbdr_resync_retries_total").get(), retries);
    assert_eq!(ring.count("driver", "retry") as u64, retries);

    // Every redelivery event carries the replayed batch's cookie seq.
    for e in ring.named("resync", "redelivery") {
        assert!(e.u64_field("seq").is_some(), "redelivery without a seq: {e}");
    }

    // The exchange histogram times each driver-level exchange once,
    // however many attempts it took; and since only responses are
    // dropped, every attempt reached the master as a request.
    let d = driver.stats();
    assert_eq!(reg.histogram("fbdr_resync_exchange_ns").count(), d.attempts - d.retries);
    assert_eq!(reg.counter("fbdr_resync_requests_total").get() - requests_at_install, d.attempts);
}

/// A scripted replay-eviction schedule: with zero replay retention and no
/// retries, every dropped response strands the replica one batch behind,
/// the batch is evicted before the next poll, and the cookie comes back
/// `ReplayExpired`. Every such loss must be repaired by the reconcile
/// rung — under the default (unlimited) divergence budget the reinstall
/// counter stays at zero, and no deletion carried by a lost batch
/// survives in the replica.
#[test]
fn replay_eviction_recovers_by_reconciliation_without_reinstall() {
    let clock = SimClock::new();
    let mut master = build_master();
    master.set_replay_expiry_ops(0);
    let replica = FilterReplica::new(0);
    replica.install_filter(&mut master, filter_request()).unwrap();

    let mut plan = FaultPlan::builder(7);
    for op in [0, 3, 6, 9, 12] {
        plan = plan.at(op, FaultKind::DropResponse);
    }
    let mut link = FaultyLink::new(master, plan.build(), clock.clone());
    let mut driver = SyncDriver::with_clock(
        RetryConfig { max_retries: 0, base_backoff_ms: 1, jitter_seed: 7, ..RetryConfig::default() },
        clock,
    );

    // Touch a distinct even-indexed (in-filter) entry each step; every
    // fourth step deletes it, the rest modify it across the boundary.
    let mut lost_deletes = Vec::new();
    for step in 0..12usize {
        let i = (2 * step) % ENTRIES;
        let op = if step % 4 == 3 {
            lost_deletes.push(i);
            fbdr_dit::UpdateOp::Delete(dn(i))
        } else {
            fbdr_dit::UpdateOp::Modify {
                dn: dn(i),
                mods: vec![fbdr_dit::Modification::Replace(
                    "serialNumber".into(),
                    vec![serial(step % 2 == 0, i).into()],
                )],
            }
        };
        link.master_mut().apply(op).unwrap();
        let _ = replica.sync_with(&mut link, &mut driver);
    }
    link.quiesce();
    for _ in 0..2 {
        replica.sync_with(&mut link, &mut driver).expect("clean cycle");
    }

    let d = driver.stats();
    assert!(d.reconciliations > 0, "evicted batches forced reconciliation: {d:?}");
    assert_eq!(d.reinstalls, 0, "nothing exceeded the unlimited budget: {d:?}");
    assert_eq!(replica.stale_filter_count(), 0);

    let request = filter_request();
    let mut want = link.master().dit().search(&request);
    want.sort_by(|a, b| a.dn().cmp(b.dn()));
    let mut got = replica.try_answer(&request).expect("stored filter answers its own query");
    got.sort_by(|a, b| a.dn().cmp(b.dn()));
    assert_eq!(got, want, "replica diverged from master");
    for &i in &lost_deletes {
        assert!(
            !got.iter().any(|e| e.dn() == &dn(i)),
            "deleted entry e{i} still served after reconciliation"
        );
    }
}

/// Soak: ten times the suite's churn through a GC'd master, with a
/// rolling window of *fresh* DNs (each added in-filter, then deleted a
/// few steps later) so the garbage actually accumulates somewhere —
/// departed posting lists, replay buffers, retired interner slots. The
/// causal-stability collector must hold the deterministic memory
/// footprint flat after warmup, and the usual convergence and
/// zero-lost-deletion checks must still pass under the same faults.
#[test]
fn soak_memory_high_water_stays_flat_over_ten_x_churn() {
    const SOAK_UPDATES: usize = UPDATES * 10;
    const SEGMENTS: usize = 10;
    /// Fresh churn DNs alive at once before deletion catches up.
    const WINDOW: usize = 8;

    let seed = 7u64;
    let plan = FaultPlan::builder(seed)
        .drop_request(0.05)
        .drop_response(0.05)
        .duplicate(0.05)
        .latency_ms(1, 5)
        .build();
    let clock = SimClock::new();
    let mut master = build_master();
    master.set_gc_config(fbdr_resync::GcConfig {
        session_deadline_ms: None,
        stash_max_items: 1 << 16,
        every_ops: Some(16),
    });
    let replica = FilterReplica::new(0);
    replica.install_filter(&mut master, filter_request()).unwrap();
    let mut link = FaultyLink::new(master, plan, clock.clone());
    let mut driver = SyncDriver::with_clock(
        RetryConfig {
            max_retries: 2,
            base_backoff_ms: 10,
            max_backoff_ms: 40,
            timeout_budget_ms: 10_000,
            jitter_seed: seed,
        },
        clock,
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD_EF01);
    let mut present: Vec<bool> = vec![true; ENTRIES];
    let mut in_filter: Vec<bool> = (0..ENTRIES).map(|i| i % 2 == 0).collect();
    let mut deleted: BTreeSet<usize> = BTreeSet::new();
    let mut high_water = [0usize; SEGMENTS];
    // Churn DNs get indices far above the base set so they never
    // collide with it; each lives for WINDOW steps.
    let churn_dn = |k: usize| ENTRIES + 1000 + k;

    for step in 0..SOAK_UPDATES {
        // The suite's usual boundary-toggling workload on the base set.
        let i = rng.gen_range(0..ENTRIES);
        let roll: f64 = rng.gen();
        let op = if !present[i] {
            in_filter[i] = roll < 0.5;
            fbdr_dit::UpdateOp::Add(entry(i, &serial(in_filter[i], i)))
        } else if roll < 0.25 {
            fbdr_dit::UpdateOp::Delete(dn(i))
        } else {
            in_filter[i] = !in_filter[i];
            fbdr_dit::UpdateOp::Modify {
                dn: dn(i),
                mods: vec![fbdr_dit::Modification::Replace(
                    "serialNumber".into(),
                    vec![serial(in_filter[i], i).into()],
                )],
            }
        };
        match &op {
            fbdr_dit::UpdateOp::Delete(_) => {
                present[i] = false;
                deleted.insert(i);
            }
            fbdr_dit::UpdateOp::Add(_) => {
                present[i] = true;
                deleted.remove(&i);
            }
            _ => {}
        }
        link.master_mut().apply(op).unwrap();

        // Fresh-DN turnover: one new in-filter entry per step, one
        // deletion of the entry from WINDOW steps back. Un-collected,
        // this grows the interner and every departed list forever.
        let k = churn_dn(step);
        link.master_mut()
            .apply(fbdr_dit::UpdateOp::Add(entry(k, &serial(true, k))))
            .unwrap();
        if step >= WINDOW {
            link.master_mut()
                .apply(fbdr_dit::UpdateOp::Delete(dn(churn_dn(step - WINDOW))))
                .unwrap();
        }

        if step % 4 == 0 {
            replica.drain_notifications();
            replica
                .sync_with(&mut link, &mut driver)
                .expect("only non-transient errors may surface");
        }
        let seg = step * SEGMENTS / SOAK_UPDATES;
        high_water[seg] =
            high_water[seg].max(link.master().memory_footprint().total_bytes());
    }

    link.quiesce();
    for _ in 0..3 {
        replica.drain_notifications();
        replica.sync_with(&mut link, &mut driver).expect("clean cycle");
    }
    assert_eq!(replica.stale_filter_count(), 0, "soak: still stale after quiesce");

    // Convergence under churn, exactly as the per-seed runs check it.
    let request = filter_request();
    let mut want = link.master().dit().search(&request);
    want.sort_by(|a, b| a.dn().cmp(b.dn()));
    let mut got = replica.try_answer(&request).expect("stored filter answers its own query");
    got.sort_by(|a, b| a.dn().cmp(b.dn()));
    assert_eq!(got, want, "soak: replica diverged from master");

    // Zero lost deletions — on the base set and on every churn DN whose
    // deletion has already been applied.
    for &i in &deleted {
        assert!(
            !got.iter().any(|e| e.dn() == &dn(i)),
            "soak: deleted entry e{i} still served by the replica"
        );
    }
    for k in (0..SOAK_UPDATES.saturating_sub(WINDOW)).map(churn_dn) {
        assert!(
            !got.iter().any(|e| e.dn() == &dn(k)),
            "soak: deleted churn entry e{k} still served by the replica"
        );
    }

    // Memory flatness: after the first segment warms the buffers up,
    // the high-water mark must not creep. 10% headroom covers posting
    // lists caught mid-window and replay batches of uneven size.
    let baseline = high_water[1];
    assert!(baseline > 0, "footprint accounting returned zeros: {high_water:?}");
    for (seg, &hw) in high_water.iter().enumerate().skip(2) {
        assert!(
            hw as f64 <= baseline as f64 * 1.10,
            "soak: segment {seg} high-water {hw} exceeds 1.1x baseline {baseline}: {high_water:?}"
        );
    }
}

mod recovery_equivalence {
    //! Property: recovering a lost session by reconciliation yields
    //! byte-for-byte the same replica content as a full reinstall, for
    //! arbitrary divergence histories — including delete-heavy ones where
    //! most of the lost updates are removals the digest cannot list
    //! directly.

    use super::*;
    use proptest::prelude::*;

    /// One divergence step applied to the master while the replica's
    /// session is detached. `kind` picks delete/add/modify; the
    /// distribution is delete-heavy on purpose.
    type HistoryOp = (u8, u8, bool);

    fn apply_history(master: &mut SyncMaster, ops: &[HistoryOp]) {
        for (idx, kind, toggle) in ops {
            let i = *idx as usize % ENTRIES;
            let op = match kind % 5 {
                // Two arms out of five delete: delete-heavy histories.
                0 | 1 => fbdr_dit::UpdateOp::Delete(dn(i)),
                2 => fbdr_dit::UpdateOp::Add(entry(i, &serial(*toggle, i))),
                _ => fbdr_dit::UpdateOp::Modify {
                    dn: dn(i),
                    mods: vec![fbdr_dit::Modification::Replace(
                        "serialNumber".into(),
                        vec![serial(*toggle, i).into()],
                    )],
                },
            };
            // Deleting absent entries / re-adding present ones no-ops.
            let _ = master.apply(op);
        }
    }

    fn sorted_answer(replica: &FilterReplica) -> Vec<Entry> {
        let mut v = replica.try_answer(&filter_request()).expect("filter answers its query");
        v.sort_by(|a, b| a.dn().cmp(b.dn()));
        v
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn reconcile_recovery_equals_reinstall_recovery(
            ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..60),
        ) {
            let mut master = build_master();
            let replica = FilterReplica::new(0);
            replica.install_filter(&mut master, filter_request()).unwrap();

            // Divergence accrues while the session is detached, then the
            // master forgets the session entirely. The out-of-filter
            // sentinel add guarantees at least one op lands after the
            // install, so `expire_idle(0)` sees the session as idle even
            // for an empty history.
            apply_history(&mut master, &ops);
            master.apply(fbdr_dit::UpdateOp::Add(entry(ENTRIES, &serial(false, ENTRIES)))).unwrap();
            prop_assert_eq!(master.expire_idle(0), 1, "the detached session expired");

            // One replica recovers through the reconcile rung...
            let clock = SimClock::new();
            let mut driver = SyncDriver::with_clock(
                RetryConfig { max_retries: 0, jitter_seed: 1, ..RetryConfig::default() },
                clock,
            );
            replica.sync_with(&mut master, &mut driver).expect("reconcile recovery");
            let d = driver.stats();
            prop_assert_eq!(d.reconciliations, 1, "recovery went through reconcile: {:?}", d);
            prop_assert_eq!(d.reinstalls, 0);

            // ...while a fresh replica installs the same filter from
            // scratch — the reinstall rung's exact content.
            let fresh = FilterReplica::new(1);
            fresh.install_filter(&mut master, filter_request()).unwrap();

            prop_assert_eq!(sorted_answer(&replica), sorted_answer(&fresh));
        }
    }
}

